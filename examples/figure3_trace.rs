//! Figure 3 reproduced: the step-by-step choreography of a cross-match
//! query between Client, Portal, and SkyNodes — including the count-star
//! performance queries, the plan, the daisy chain, and the per-node
//! statistics flowing back.
//!
//! ```text
//! cargo run --example figure3_trace
//! ```

use skyquery_core::{FederationConfig, OrderingStrategy};
use skyquery_sim::{paper_query, FederationBuilder};

fn main() {
    // Sequential performance queries make the trace read exactly like the
    // figure: one numbered step per message.
    let fed = FederationBuilder::paper_triple(1500)
        .config(FederationConfig {
            parallel_performance_queries: false,
            ordering: OrderingStrategy::CountStarDescending,
            ..FederationConfig::default()
        })
        .build();

    let sql = paper_query();
    println!("Figure 3 — the order in which the sample query gets executed\n");
    println!("User query:\n  {sql}\n");

    let client = fed.client("web-client");
    let (result, trace) = client.query(&sql).expect("query succeeds");

    println!("{}", trace.render());

    println!(
        "Final result relayed to the Client: {} matched tuples",
        result.row_count()
    );

    // The same run, seen from the network: every SOAP message between
    // the components, hop by hop.
    println!("\nSOAP traffic (simulated HTTP):");
    for ((from, to), stats) in fed.net.metrics().links() {
        println!(
            "  {from:<24} -> {to:<24} {:>3} messages {:>9} bytes",
            stats.messages, stats.bytes
        );
    }
}
