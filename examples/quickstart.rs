//! Quickstart: build a three-archive federation, register the archives
//! with the Portal, and run the paper's §5.2 sample cross-match query.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use skyquery_sim::{paper_query, FederationBuilder};

fn main() {
    // A shared sky of 2 000 bodies observed by SDSS/2MASS/FIRST-like
    // synthetic surveys, each wrapped by a SkyNode, all registered with
    // the Portal over SOAP.
    println!("Building the federation (3 archives, 2000 bodies)...\n");
    let fed = FederationBuilder::paper_triple(2000).build();

    for node in &fed.nodes {
        let info = node.info();
        let count = node.with_db(|db| db.row_count(&info.primary_table).unwrap());
        println!(
            "  {:<8} σ = {:>4.2}\"  {:>5} objects in {}",
            info.name, info.sigma_arcsec, count, info.primary_table
        );
    }

    // A client submits the paper's sample query to the Portal's SkyQuery
    // service (everything below travels as SOAP over the simulated HTTP
    // network).
    let sql = paper_query();
    println!("\nSubmitting:\n  {sql}\n");
    let client = fed.client("astronomer.example.edu");
    let (result, trace) = client.query(&sql).expect("query succeeds");

    println!("Execution trace (the Figure 3 choreography):");
    print!("{}", trace.render());

    println!("\nCross matches found: {}", result.row_count());
    let preview: usize = result.row_count().min(10);
    if preview > 0 {
        let mut head = skyquery_core::ResultSet::new(result.columns.clone());
        for row in result.rows.iter().take(preview) {
            head.push_row(row.clone()).unwrap();
        }
        println!("\nFirst {preview} rows:\n{}", head.to_ascii());
    }

    // Transmission accounting: the quantity the count-star ordering
    // minimizes.
    let m = fed.net.metrics();
    println!(
        "Network totals: {} messages, {} bytes",
        m.total().messages,
        m.total().bytes
    );
    for ((from, to), stats) in m.links() {
        println!(
            "  {from:<26} -> {to:<26} {:>6} msgs {:>10} bytes",
            stats.messages, stats.bytes
        );
    }
}
