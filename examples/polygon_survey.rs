//! The §6 polygon extension in action: "queries on spatial objects …
//! The AREA clause can also be extended to specify arbitrary polygons
//! rather than just simple circles."
//!
//! Cross-matches two surveys inside a survey-stripe polygon and compares
//! against the circumscribing circle.
//!
//! ```text
//! cargo run --example polygon_survey
//! ```

use skyquery_sim::{FederationBuilder, QuerySpec};

fn main() {
    let fed = FederationBuilder::paper_triple(3000).build();

    // A thin observation stripe: 1.6° wide, 0.3° tall — the shape real
    // drift-scan surveys produce, poorly served by circles.
    let stripe = vec![
        (184.2, -0.65),
        (185.8, -0.65),
        (185.8, -0.35),
        (184.2, -0.35),
    ];
    let polygon_sql = QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
        ],
        threshold: 3.5,
        area: None,
        polygon: Some(stripe.clone()),
        predicates: vec![],
        select: vec!["O.object_id".into(), "T.object_id".into()],
    }
    .to_sql();

    // The smallest circle covering the stripe (radius ≈ 0.82°).
    let circle_sql = QuerySpec {
        archives: vec![
            ("SDSS".into(), "Photo_Object".into(), "O".into(), false),
            ("TWOMASS".into(), "Photo_Primary".into(), "T".into(), false),
        ],
        threshold: 3.5,
        area: Some((185.0, -0.5, 50.0)),
        polygon: None,
        predicates: vec![],
        select: vec!["O.object_id".into(), "T.object_id".into()],
    }
    .to_sql();

    println!("Stripe polygon: {stripe:?}\n");

    fed.net.reset_metrics();
    let (poly_result, _) = fed.portal.submit(&polygon_sql).expect("polygon query");
    let poly_bytes = fed.net.metrics().total().bytes;

    fed.net.reset_metrics();
    let (circle_result, _) = fed.portal.submit(&circle_sql).expect("circle query");
    let circle_bytes = fed.net.metrics().total().bytes;

    println!("{:<28} {:>10} {:>14}", "region", "matches", "bytes moved");
    println!(
        "{:<28} {:>10} {:>14}",
        "stripe POLYGON",
        poly_result.row_count(),
        poly_bytes
    );
    println!(
        "{:<28} {:>10} {:>14}",
        "circumscribing AREA circle",
        circle_result.row_count(),
        circle_bytes
    );
    println!(
        "\nThe polygon retrieves {:.0}% of the circle's matches while moving {:.0}% of the bytes —",
        100.0 * poly_result.row_count() as f64 / circle_result.row_count().max(1) as f64,
        100.0 * poly_bytes as f64 / circle_bytes.max(1) as f64,
    );
    println!("exactly why the paper wanted polygons: the circle over-fetches everything");
    println!("outside the stripe, and every extra row is XML on the wire.");
}
