//! The §5.3 optimization claim, live: "the order based on the count star
//! values will often decrease the network transmission costs."
//!
//! Runs the same cross-match under four plan orderings and under the
//! pull-to-portal strategy, reporting bytes moved and simulated transfer
//! time for each.
//!
//! ```text
//! cargo run --example ordering_experiment
//! ```

use skyquery_core::{FederationConfig, OrderingStrategy};
use skyquery_net::CostModel;
use skyquery_sim::{xmatch_query, FederationBuilder};

fn main() {
    let fed = FederationBuilder::paper_triple(3000)
        .cost_model(CostModel::internet_2002())
        .build();
    let sql = xmatch_query(
        &[
            ("SDSS", "Photo_Object", "O"),
            ("TWOMASS", "Photo_Primary", "T"),
            ("FIRST", "Primary_Object", "P"),
        ],
        3.5,
        None,
    );
    println!("Query: {sql}\n");
    println!(
        "{:<26} {:>10} {:>12} {:>12} {:>8}",
        "strategy", "messages", "bytes", "sim time", "matches"
    );

    let strategies: [(&str, OrderingStrategy); 4] = [
        (
            "count-star descending*",
            OrderingStrategy::CountStarDescending,
        ),
        ("count-star ascending", OrderingStrategy::CountStarAscending),
        ("declaration order", OrderingStrategy::DeclarationOrder),
        ("random (seed 3)", OrderingStrategy::Random(3)),
    ];
    for (name, ordering) in strategies {
        fed.portal.set_config(FederationConfig {
            ordering,
            ..FederationConfig::default()
        });
        fed.net.reset_metrics();
        let (result, _) = fed.portal.submit(&sql).expect("query succeeds");
        let m = fed.net.metrics().total();
        println!(
            "{:<26} {:>10} {:>12} {:>10.2}s {:>8}",
            name,
            m.messages,
            m.bytes,
            m.sim_seconds,
            result.row_count()
        );
    }

    // The architectural baseline: pull every archive's rows to the Portal
    // and join centrally (what the paper says most mediators do).
    fed.portal.set_config(FederationConfig::default());
    fed.net.reset_metrics();
    let pulled = fed
        .portal
        .submit_pull_to_portal(&sql)
        .expect("baseline succeeds");
    let m = fed.net.metrics().total();
    println!(
        "{:<26} {:>10} {:>12} {:>10.2}s {:>8}",
        "pull-to-portal baseline",
        m.messages,
        m.bytes,
        m.sim_seconds,
        pulled.row_count()
    );
    println!("\n* the strategy the paper deploys (drop-outs head the list,");
    println!("  mandatory archives in decreasing count-star order).");
}
