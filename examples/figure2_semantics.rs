//! Figure 2 reproduced as a runnable scenario: two bodies, three
//! archives, and the two XMATCH selections the figure illustrates.
//!
//! Body **a** is observed by archives O, T, and P, all within 3.5
//! standard deviations of their mean position. Body **b** is observed by
//! O and T, but its P observation lies far outside the bound. So:
//!
//! * `XMATCH(O, T, P)  < 3.5` selects `{a_O, a_T, a_P}`;
//! * `XMATCH(O, T, !P) < 3.5` selects `{b_O, b_T}` (P is a *drop-out*).
//!
//! ```text
//! cargo run --example figure2_semantics
//! ```

use skyquery_core::{ArchiveInfo, FederationConfig, Portal, SkyNodeBuilder};
use skyquery_net::{SimNetwork, Url};
use skyquery_storage::{Database, Value};

const ARCSEC: f64 = 1.0 / 3600.0;

fn archive(
    net: &SimNetwork,
    portal: &Portal,
    name: &str,
    sigma_arcsec: f64,
    objects: &[(u64, &str, f64, f64)],
) {
    let mut db = Database::new(name);
    db.create_table(skyquery_sim::survey::primary_schema("objects", 14))
        .unwrap();
    for &(id, label, ra, dec) in objects {
        println!("  {name}: object {id} = {label} at ({ra:.6}, {dec:.6})");
        db.insert(
            "objects",
            vec![
                Value::Id(id),
                Value::Float(ra),
                Value::Float(dec),
                Value::Text("GALAXY".into()),
                Value::Float(1.0),
            ],
        )
        .unwrap();
    }
    let host = format!("{}.sky", name.to_lowercase());
    SkyNodeBuilder::new(
        ArchiveInfo {
            name: name.into(),
            sigma_arcsec,
            primary_table: "objects".into(),
            htm_depth: 14,
            extent: None,
        },
        db,
    )
    .start(net, host.clone());
    portal.register_node(&Url::new(host, "/soap")).unwrap();
}

fn main() {
    let net = SimNetwork::new();
    let portal = Portal::start(&net, "portal", FederationConfig::default());

    println!("Populating the Figure 2 sky (σ = 0.2\" everywhere):\n");
    // Observations of body a cluster around (185.0, -0.5); observations
    // of body b around (185.01, -0.49) except b_P, which is 20σ off.
    archive(
        &net,
        &portal,
        "O",
        0.2,
        &[(1, "a_O", 185.0, -0.5), (2, "b_O", 185.01, -0.49)],
    );
    archive(
        &net,
        &portal,
        "T",
        0.2,
        &[
            (11, "a_T", 185.0 + 0.1 * ARCSEC, -0.5),
            (12, "b_T", 185.01, -0.49 + 0.15 * ARCSEC),
        ],
    );
    archive(
        &net,
        &portal,
        "P",
        0.2,
        &[
            (21, "a_P", 185.0, -0.5 - 0.12 * ARCSEC),
            (22, "b_P (out of range)", 185.01, -0.49 + 20.0 * ARCSEC),
        ],
    );

    let all = "SELECT O.object_id, T.object_id, P.object_id \
               FROM O:objects O, T:objects T, P:objects P \
               WHERE XMATCH(O, T, P) < 3.5";
    println!("\nXMATCH(O, T, P) < 3.5   — all three archives mandatory:");
    let (result, _) = portal.submit(all).unwrap();
    println!("{}", result.to_ascii());
    println!("→ the set {{a_O, a_T, a_P}} is the only cross match (body a).\n");

    let dropout = "SELECT O.object_id, T.object_id \
                   FROM O:objects O, T:objects T, P:objects P \
                   WHERE XMATCH(O, T, !P) < 3.5";
    println!("XMATCH(O, T, !P) < 3.5  — P is a drop-out (exclusive outer join):");
    let (result, _) = portal.submit(dropout).unwrap();
    println!("{}", result.to_ascii());
    println!("→ body a is excluded (it HAS a P counterpart); body b survives.");
}
