//! The §6 transaction extension in action: "implement transaction
//! processing for exchange of data between astronomy archives, and see
//! how the stateless SOAP handles such complex requirements."
//!
//! Atomically copies a selection of SDSS galaxies into the TWOMASS
//! archive with two-phase commit over SOAP, then shows the failure paths
//! staying atomic.
//!
//! ```text
//! cargo run --example data_exchange
//! ```

use skyquery_sim::FederationBuilder;

fn main() {
    let fed = FederationBuilder::paper_triple(2000).build();

    println!("== Successful transfer (prepare → commit) ==");
    let report = fed
        .portal
        .transfer_table(
            "SDSS",
            "SELECT O.object_id, O.ra, O.dec, O.i_flux FROM SDSS:Photo_Object O \
             WHERE O.type = GALAXY AND O.i_flux > 300",
            "TWOMASS",
            "sdss_bright_galaxies",
        )
        .expect("transfer succeeds");
    println!(
        "txn {}: copied {} rows {} -> {} (table {})",
        report.txn_id, report.rows_copied, report.source, report.destination, report.dest_table
    );
    let visible = fed
        .node("TWOMASS")
        .unwrap()
        .with_db(|db| db.row_count("sdss_bright_galaxies").unwrap());
    println!("rows visible at destination: {visible}");

    println!("\n== No-vote path: incompatible destination schema ==");
    fed.node("TWOMASS").unwrap().with_db(|db| {
        db.create_table(skyquery_storage::TableSchema::new(
            "conflicted",
            vec![skyquery_storage::ColumnDef::new(
                "something_else",
                skyquery_storage::DataType::Text,
            )],
        ))
        .unwrap();
    });
    let err = fed
        .portal
        .transfer_table(
            "SDSS",
            "SELECT O.object_id FROM SDSS:Photo_Object O",
            "TWOMASS",
            "conflicted",
        )
        .unwrap_err();
    println!("prepare voted NO: {err}");
    let rows = fed
        .node("TWOMASS")
        .unwrap()
        .with_db(|db| db.row_count("conflicted").unwrap());
    println!("destination table untouched: {rows} rows (atomicity held)");

    println!("\n== Crash path: destination offline ==");
    fed.net.unbind("first.skyquery.net");
    let err = fed
        .portal
        .transfer_table(
            "SDSS",
            "SELECT O.object_id FROM SDSS:Photo_Object O",
            "FIRST",
            "copy",
        )
        .unwrap_err();
    println!("coordinator aborted: {err}");

    println!("\nSOAP traffic for the session:");
    for ((from, to), stats) in fed.net.metrics().links() {
        println!(
            "  {from:<24} -> {to:<24} {:>3} messages {:>9} bytes",
            stats.messages, stats.bytes
        );
    }
}
