#![warn(missing_docs)]
//! # skyquery-cli — the interactive federation driver
//!
//! A command-line front end over a synthetic SkyQuery federation: build a
//! federation of SDSS/2MASS/FIRST-like archives, submit cross-match
//! queries, inspect execution traces and transmission metrics, switch
//! plan orderings, and run transactional table transfers — everything a
//! Virtual Observatory operator would poke at.
//!
//! ```text
//! skyquery demo                 # build a federation, run the paper's query
//! skyquery run "SELECT …"       # one-shot query against a fresh federation
//! skyquery repl                 # interactive session
//! ```

pub mod args;
pub mod session;

pub use args::{parse_args, Command, Options};
pub use session::Session;
