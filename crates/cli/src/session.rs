//! An interactive session over one federation: query execution plus the
//! meta-commands of the REPL. All output goes through a `Write` sink so
//! tests can drive the whole session headlessly.

use std::io::Write;
use std::sync::Arc;

use skyquery_core::{ChainMode, FederationConfig, HostState, OrderingStrategy};
use skyquery_jobs::{JobClient, JobService, JobServiceConfig};
use skyquery_net::FaultPlan;
use skyquery_sim::{CatalogParams, FederationBuilder, TestFederation};

use crate::args::Options;

/// The session's job service plus the client it submits through.
struct JobsHandle {
    svc: Arc<JobService>,
    cli: JobClient,
}

/// A live session: federation + display settings.
pub struct Session {
    fed: TestFederation,
    show_trace: bool,
    max_rows: usize,
    /// The accumulated fault plan; `\faults` commands extend it and
    /// re-arm the network with a fresh copy.
    faults: FaultPlan,
    /// The async job service, started by `--jobs` or lazily on the first
    /// `\submit`.
    jobs: Option<JobsHandle>,
}

impl Session {
    /// Builds the standard three-archive federation per the options.
    pub fn new(opts: &Options) -> Session {
        let fed = FederationBuilder::new()
            .catalog(CatalogParams {
                count: opts.bodies,
                seed: opts.seed,
                ..CatalogParams::default()
            })
            .config(FederationConfig {
                xmatch_workers: opts.workers,
                zone_height_deg: opts.zone_height_deg,
                zone_chunking: opts.zone_chunking,
                kernel: opts.kernel,
                retry: opts.retry_policy(),
                chain_mode: opts.chain_mode,
                ..FederationConfig::default()
            })
            .survey(skyquery_sim::SurveyParams::sdss_like())
            .survey(skyquery_sim::SurveyParams::twomass_like())
            .survey(skyquery_sim::SurveyParams::first_like())
            .shards(opts.shards)
            .replicas(opts.replicas)
            .build();
        let mut session = Session {
            fed,
            show_trace: false,
            max_rows: 20,
            faults: FaultPlan::new(),
            jobs: None,
        };
        if opts.jobs {
            session.ensure_jobs();
        }
        session
    }

    /// Starts the job service on first use; answers the live handle.
    fn ensure_jobs(&mut self) -> &JobsHandle {
        if self.jobs.is_none() {
            let svc = JobService::start(
                &self.fed.net,
                "jobs.skyquery.net",
                self.fed.portal.clone(),
                JobServiceConfig::default(),
            );
            let cli = JobClient::new(&self.fed.net, "repl-client", svc.url());
            self.jobs = Some(JobsHandle { svc, cli });
        }
        self.jobs.as_ref().expect("just initialized")
    }

    /// Resolves an archive name (or raw host) to a network host.
    fn resolve_host(&self, name: &str) -> String {
        self.fed
            .node(name)
            .map(|n| n.url().host.clone())
            .unwrap_or_else(|| name.to_string())
    }

    /// The underlying federation (for inspection in tests).
    pub fn federation(&self) -> &TestFederation {
        &self.fed
    }

    /// Handles one input line (query or `\`-meta-command); writes human
    /// output to `out`. Returns `false` when the session should end.
    pub fn handle_line(&mut self, line: &str, out: &mut dyn Write) -> std::io::Result<bool> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(true);
        }
        if let Some(meta) = line.strip_prefix('\\') {
            return self.handle_meta(meta, out);
        }
        self.run_query(line, out)?;
        Ok(true)
    }

    /// Runs one query and reports whether it succeeded — the one-shot
    /// `skyquery run` entry point, where failures must exit nonzero.
    pub fn run_once(&mut self, sql: &str, out: &mut dyn Write) -> std::io::Result<bool> {
        self.run_query(sql, out)
    }

    fn run_query(&mut self, sql: &str, out: &mut dyn Write) -> std::io::Result<bool> {
        self.fed.net.reset_metrics();
        match self.fed.portal.submit(sql) {
            Ok((result, trace)) => {
                if self.show_trace {
                    writeln!(out, "{}", trace.render())?;
                }
                self.print_result(&result, out)?;
                if result.degraded {
                    writeln!(
                        out,
                        "partial result — dropped: {}",
                        result.dropped_archives.join(", ")
                    )?;
                }
                let m = self.fed.net.metrics().total();
                writeln!(
                    out,
                    "{} rows · {} SOAP messages · {} bytes on the wire",
                    result.row_count(),
                    m.messages,
                    m.bytes
                )?;
            }
            Err(e) => {
                writeln!(out, "error: {e}")?;
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Renders a result table truncated to the session's row limit.
    fn print_result(
        &self,
        result: &skyquery_core::ResultSet,
        out: &mut dyn Write,
    ) -> std::io::Result<()> {
        let shown = result.row_count().min(self.max_rows);
        let mut head = skyquery_core::ResultSet::new(result.columns.clone());
        for row in result.rows.iter().take(shown) {
            head.push_row(row.clone()).expect("same columns");
        }
        write!(out, "{}", head.to_ascii())?;
        if shown < result.row_count() {
            writeln!(out, "… ({} more rows)", result.row_count() - shown)?;
        }
        Ok(())
    }

    fn handle_meta(&mut self, meta: &str, out: &mut dyn Write) -> std::io::Result<bool> {
        let mut parts = meta.split_whitespace();
        match parts.next() {
            Some("q") | Some("quit") | Some("exit") => return Ok(false),
            Some("help") => writeln!(out, "{}", meta_help())?,
            Some("archives") => {
                for node in &self.fed.nodes {
                    let info = node.info();
                    let rows = node.with_db(|db| db.row_count(&info.primary_table).unwrap());
                    writeln!(
                        out,
                        "{:<10} σ={:>5.2}\"  {:>6} objects  table {}",
                        info.name, info.sigma_arcsec, rows, info.primary_table
                    )?;
                }
            }
            Some("trace") => {
                self.show_trace = !self.show_trace;
                writeln!(out, "trace {}", if self.show_trace { "on" } else { "off" })?;
            }
            Some("rows") => match parts.next().and_then(|v| v.parse().ok()) {
                Some(n) => {
                    self.max_rows = n;
                    writeln!(out, "showing up to {n} rows")?;
                }
                None => writeln!(out, "usage: \\rows <n>")?,
            },
            Some("explain") => {
                let sql: String = parts.collect::<Vec<_>>().join(" ");
                if sql.trim().is_empty() {
                    writeln!(out, "usage: \\explain <cross-match sql>")?;
                } else {
                    match self.fed.portal.explain(&sql) {
                        Ok(text) => write!(out, "{text}")?,
                        Err(e) => writeln!(out, "error: {e}")?,
                    }
                }
            }
            Some("metrics") => {
                for ((from, to), stats) in self.fed.net.metrics().links() {
                    writeln!(
                        out,
                        "{from:<26} -> {to:<26} {:>4} msgs {:>10} bytes",
                        stats.messages, stats.bytes
                    )?;
                }
            }
            Some("ordering") => {
                let strategy = match parts.next() {
                    Some("desc") => Some(OrderingStrategy::CountStarDescending),
                    Some("asc") => Some(OrderingStrategy::CountStarAscending),
                    Some("decl") => Some(OrderingStrategy::DeclarationOrder),
                    Some("random") => Some(OrderingStrategy::Random(
                        parts.next().and_then(|s| s.parse().ok()).unwrap_or(1),
                    )),
                    _ => None,
                };
                match strategy {
                    Some(s) => {
                        self.fed.portal.set_config(FederationConfig {
                            ordering: s,
                            ..self.fed.portal.config()
                        });
                        writeln!(out, "plan ordering set to {s:?}")?;
                    }
                    None => writeln!(out, "usage: \\ordering desc|asc|decl|random [seed]")?,
                }
            }
            Some("limit") => match parts.next().and_then(|v| v.parse().ok()) {
                Some(bytes) => {
                    self.fed.portal.set_config(FederationConfig {
                        max_message_bytes: bytes,
                        ..self.fed.portal.config()
                    });
                    writeln!(out, "SOAP parser limit set to {bytes} bytes")?;
                }
                None => writeln!(out, "usage: \\limit <bytes>")?,
            },
            Some("cache") => match parts.next() {
                Some(word) => match word.parse::<usize>() {
                    Ok(capacity) => {
                        self.fed.portal.set_config(FederationConfig {
                            result_cache_capacity: capacity,
                            ..self.fed.portal.config()
                        });
                        if capacity == 0 {
                            writeln!(out, "result cache off")?;
                        } else {
                            writeln!(out, "result cache capacity set to {capacity} entries")?;
                        }
                    }
                    Err(_) => writeln!(out, "usage: \\cache [<capacity>]")?,
                },
                None => {
                    let config = self.fed.portal.config();
                    let (c, live) = self.fed.portal.cache_report();
                    writeln!(
                        out,
                        "result cache: capacity {} entries, ttl {:.0}s, {} live",
                        config.result_cache_capacity, config.result_cache_ttl_s, live
                    )?;
                    writeln!(
                        out,
                        "  hits {}  misses {}  repairs {}  evictions {}",
                        c.hits, c.misses, c.repairs, c.evictions
                    )?;
                }
            },
            Some("chunking") => match parts.next() {
                Some(word @ ("on" | "off")) => {
                    let enabled = word == "on";
                    self.fed.portal.set_config(FederationConfig {
                        chunking: enabled,
                        ..self.fed.portal.config()
                    });
                    writeln!(out, "chunking {word}")?;
                }
                _ => writeln!(out, "usage: \\chunking on|off")?,
            },
            Some("zonechunking") => match parts.next() {
                Some(word @ ("on" | "off")) => {
                    let enabled = word == "on";
                    self.fed.portal.set_config(FederationConfig {
                        zone_chunking: enabled,
                        ..self.fed.portal.config()
                    });
                    writeln!(out, "zone-aware chunking {word}")?;
                }
                _ => writeln!(out, "usage: \\zonechunking on|off")?,
            },
            Some("kernel") => match parts.next().and_then(skyquery_core::MatchKernel::parse) {
                Some(k) => {
                    self.fed.portal.set_config(FederationConfig {
                        kernel: k,
                        ..self.fed.portal.config()
                    });
                    writeln!(out, "cross-match kernel set to {k}")?;
                }
                None => writeln!(out, "usage: \\kernel columnar|htm|batch")?,
            },
            Some("faults") => {
                let usage =
                    "usage: \\faults [down|step|500|truncate|garbage <archive> <n> | latency <archive> <s> | clear]";
                match parts.next() {
                    None => {
                        let m = self.fed.net.metrics();
                        writeln!(
                            out,
                            "fault injection {}",
                            if self.fed.net.has_faults() {
                                "armed"
                            } else {
                                "idle"
                            }
                        )?;
                        for ((from, to, kind), n) in m.faults() {
                            writeln!(out, "{from:<26} -> {to:<26} {kind:<16} x{n}")?;
                        }
                        let r = m.retry_total();
                        writeln!(
                            out,
                            "{} retries, {:.3}s simulated backoff",
                            r.retries, r.backoff_seconds
                        )?;
                        let unhealthy = self.fed.portal.unhealthy_hosts();
                        if !unhealthy.is_empty() {
                            writeln!(out, "unhealthy: {}", unhealthy.join(", "))?;
                        }
                    }
                    Some("clear") => {
                        self.faults = FaultPlan::new();
                        self.fed.net.clear_faults();
                        writeln!(out, "fault plan cleared")?;
                    }
                    Some(kind @ ("down" | "step" | "500" | "truncate" | "garbage" | "latency")) => {
                        let target = parts.next().map(|a| self.resolve_host(a));
                        let amount = parts.next().and_then(|v| v.parse::<f64>().ok());
                        match (target, amount) {
                            (Some(host), Some(x)) if x.is_finite() && x >= 0.0 => {
                                let plan = std::mem::take(&mut self.faults);
                                self.faults = match kind {
                                    "down" => plan.host_down_for(&host, x as u32),
                                    // Outage scoped to chain steps only: performance
                                    // queries and checkpoint fetches stay clean, so the
                                    // checkpointed driver's re-plan path is reachable.
                                    "step" => plan.rule(
                                        skyquery_net::FaultRule::new(
                                            skyquery_net::FaultKind::HostDown,
                                        )
                                        .host(&host)
                                        .action("ExecuteStep")
                                        .times(x as u32),
                                    ),
                                    "500" => plan.server_errors(&host, x as u32),
                                    "truncate" => plan.truncated_bodies(&host, x as u32),
                                    "garbage" => plan.garbage_bodies(&host, x as u32),
                                    _ => plan.added_latency(&host, x),
                                };
                                // Re-arming restarts every bounded rule's budget.
                                self.fed.net.install_faults(self.faults.clone());
                                writeln!(out, "armed: {kind} on {host}")?;
                            }
                            _ => writeln!(out, "{usage}")?,
                        }
                    }
                    Some(_) => writeln!(out, "{usage}")?,
                }
            }
            Some("chain") => match parts.next() {
                Some(word @ ("recursive" | "checkpointed")) => {
                    let mode = if word == "checkpointed" {
                        ChainMode::Checkpointed
                    } else {
                        ChainMode::Recursive
                    };
                    self.fed.portal.set_config(FederationConfig {
                        chain_mode: mode,
                        ..self.fed.portal.config()
                    });
                    writeln!(out, "chain driver: {word}")?;
                }
                _ => writeln!(out, "usage: \\chain recursive|checkpointed")?,
            },
            Some("health") => {
                if let Some("probe") = parts.next() {
                    let probed = self.fed.portal.probe_unhealthy_hosts();
                    if probed.is_empty() {
                        writeln!(out, "no unhealthy hosts to probe")?;
                    }
                    for (host, ok) in probed {
                        writeln!(
                            out,
                            "probe {host}: {}",
                            if ok { "ok -> probation" } else { "failed" }
                        )?;
                    }
                }
                let report = self.fed.portal.health_report();
                if report.is_empty() {
                    writeln!(out, "all hosts healthy")?;
                }
                for (host, h) in report {
                    let state = match h.state {
                        HostState::Unhealthy => "unhealthy",
                        HostState::Probation => "probation",
                    };
                    writeln!(out, "{host:<26} {state:<10} {} strikes", h.strikes)?;
                }
                // Replica roles: within each archive's shard group,
                // `shards_of` orders (extent, host) — the first member of
                // each extent run is the primary, the rest are replicas.
                let mut roles = std::collections::HashMap::new();
                for archive in self.fed.portal.archives() {
                    let mut prev: Option<skyquery_core::ZoneExtent> = None;
                    for shard in self.fed.portal.shards_of(&archive) {
                        let extent = shard.extent();
                        let role = if prev.as_ref() == Some(&extent) {
                            "replica"
                        } else {
                            "primary"
                        };
                        prev = Some(extent);
                        roles.insert(shard.url.host.clone(), role);
                    }
                }
                for node in &self.fed.nodes {
                    writeln!(
                        out,
                        "{:<26} {:<8} {} leases ({} transfers, {} checkpoints, {} txns) · {} steps executed",
                        node.url().host,
                        roles.get(&node.url().host).copied().unwrap_or("primary"),
                        node.active_leases(),
                        node.open_transfers().len(),
                        node.checkpoints().len(),
                        node.pending_exchange_txns().len(),
                        node.executed_steps()
                    )?;
                }
                let m = self.fed.net.metrics();
                writeln!(
                    out,
                    "{} replans · {} resumes · {} degraded continuations",
                    m.node_event_total("replan"),
                    m.node_event_total("resume"),
                    m.node_event_total("degraded")
                )?;
                writeln!(
                    out,
                    "{} failovers · {} hedged probes",
                    m.node_event_total("failover"),
                    m.node_event_total("hedge")
                )?;
            }
            Some("retry") => {
                let attempts = parts.next().and_then(|v| v.parse::<u32>().ok());
                let backoff = parts.next().and_then(|v| v.parse::<f64>().ok());
                match attempts {
                    Some(n) if n >= 1 => {
                        let mut cfg = self.fed.portal.config();
                        cfg.retry.max_attempts = n;
                        if let Some(b) = backoff {
                            if b.is_finite() && b >= 0.0 {
                                cfg.retry.backoff_base_s = b;
                            }
                        }
                        self.fed.portal.set_config(cfg);
                        writeln!(
                            out,
                            "retry policy: {} attempts, {}s base backoff",
                            cfg.retry.max_attempts, cfg.retry.backoff_base_s
                        )?;
                    }
                    _ => writeln!(out, "usage: \\retry <attempts> [backoff-seconds]")?,
                }
            }
            Some("transfer") => {
                // \transfer SRC DEST TABLE SELECT …
                let src = parts.next();
                let dest = parts.next();
                let table = parts.next();
                let sql: String = parts.collect::<Vec<_>>().join(" ");
                match (src, dest, table, sql.is_empty()) {
                    (Some(src), Some(dest), Some(table), false) => {
                        match self.fed.portal.transfer_table(src, &sql, dest, table) {
                            Ok(r) => writeln!(
                                out,
                                "txn {}: {} rows {} -> {} ({})",
                                r.txn_id, r.rows_copied, r.source, r.destination, r.dest_table
                            )?,
                            Err(e) => writeln!(out, "transfer failed: {e}")?,
                        }
                    }
                    _ => writeln!(out, "usage: \\transfer <src> <dest> <table> <select sql>")?,
                }
            }
            Some("submit") => {
                let sql: String = parts.collect::<Vec<_>>().join(" ");
                if sql.trim().is_empty() {
                    writeln!(out, "usage: \\submit <cross-match sql>")?;
                } else {
                    self.ensure_jobs();
                    let h = self.jobs.as_ref().expect("ensured");
                    match h.cli.submit("repl", &sql) {
                        Ok(id) => writeln!(
                            out,
                            "job {id} queued — \\jobs to list, \\jobs run to drive, \
                             \\jobs fetch {id} for rows"
                        )?,
                        Err(e) => writeln!(out, "error: {e}")?,
                    }
                }
            }
            Some("jobs") => {
                let usage = "usage: \\jobs [run | fetch <id> | cancel <id>]";
                self.ensure_jobs();
                match parts.next() {
                    None => {
                        let h = self.jobs.as_ref().expect("ensured");
                        let states = h.svc.job_states();
                        if states.is_empty() {
                            writeln!(out, "no jobs")?;
                        }
                        for (id, _) in &states {
                            match h.svc.poll(*id) {
                                Ok(st) => writeln!(
                                    out,
                                    "job {id:>4}  {:<10} wait {:>7.2}s  run {:>6.2}s{}{}",
                                    st.state.to_string(),
                                    st.wait_s,
                                    st.run_s,
                                    st.result_rows
                                        .map(|r| format!("  {r} rows"))
                                        .unwrap_or_default(),
                                    st.error.map(|e| format!("  {e}")).unwrap_or_default()
                                )?,
                                Err(e) => writeln!(out, "job {id:>4}  {e}")?,
                            }
                        }
                        writeln!(
                            out,
                            "{} queued · {} running",
                            h.svc.queued().len(),
                            h.svc.running().len()
                        )?;
                        let t = self.fed.net.metrics().job_total();
                        writeln!(
                            out,
                            "totals: {} submitted, {} rejected, {} succeeded, {} failed, \
                             {} cancelled, {} expired",
                            t.submitted, t.rejected, t.succeeded, t.failed, t.cancelled, t.expired
                        )?;
                    }
                    Some("run") => {
                        let h = self.jobs.as_ref().expect("ensured");
                        let quanta = h.svc.run_until_idle(1_000_000);
                        writeln!(
                            out,
                            "drove {quanta} scheduler quanta; {} jobs still queued",
                            h.svc.queued().len()
                        )?;
                    }
                    Some("fetch") => match parts.next().and_then(|v| v.parse::<u64>().ok()) {
                        Some(id) => {
                            let fetched = self.jobs.as_ref().expect("ensured").cli.fetch(id);
                            match fetched {
                                Ok(result) => {
                                    self.print_result(&result, out)?;
                                    writeln!(out, "{} rows", result.row_count())?;
                                    if result.degraded {
                                        writeln!(
                                            out,
                                            "partial result — dropped: {}",
                                            result.dropped_archives.join(", ")
                                        )?;
                                    }
                                }
                                Err(e) => writeln!(out, "error: {e}")?,
                            }
                        }
                        None => writeln!(out, "{usage}")?,
                    },
                    Some("cancel") => match parts.next().and_then(|v| v.parse::<u64>().ok()) {
                        Some(id) => {
                            let h = self.jobs.as_ref().expect("ensured");
                            match h.cli.cancel(id) {
                                Ok(true) => writeln!(out, "job {id} cancelled")?,
                                Ok(false) => writeln!(
                                    out,
                                    "job {id} was already finished (held resources freed)"
                                )?,
                                Err(e) => writeln!(out, "error: {e}")?,
                            }
                        }
                        None => writeln!(out, "{usage}")?,
                    },
                    Some(_) => writeln!(out, "{usage}")?,
                }
            }
            Some(other) => writeln!(out, "unknown meta-command \\{other} (try \\help)")?,
            None => {}
        }
        Ok(true)
    }
}

/// Meta-command reference shown by `\help`.
pub fn meta_help() -> &'static str {
    "meta-commands:
  \\archives                         list registered archives
  \\trace                            toggle execution-trace output
  \\rows <n>                         limit displayed rows
  \\explain <sql>                    show the federated plan without running it
  \\metrics                          per-link transmission of the last query
  \\ordering desc|asc|decl|random    plan ordering strategy
  \\limit <bytes>                    SOAP parser message limit
  \\cache [<capacity>]               result-cache counters / set capacity (0 = off)
  \\chunking on|off                  §6 chunked-transfer workaround
  \\zonechunking on|off              zone-aware pipelined transfer chunks
  \\kernel columnar|htm|batch        cross-match probe kernel (byte-identical)
  \\faults [<kind> <archive> <n>]    inject network faults / show fault+retry tallies
                                    (kinds: down step 500 truncate garbage latency)
  \\retry <attempts> [backoff]       RPC retry policy (attempts, base backoff seconds)
  \\chain recursive|checkpointed     chain driver (daisy chain vs survivable resume)
  \\health [probe]                   host health, leases, replan/resume counters
  \\transfer <src> <dst> <tbl> <sql> transactional table copy (2PC)
  \\submit <sql>                     queue the query as an async job
  \\jobs [run|fetch <id>|cancel <id>] list jobs / drive the queue / get results
  \\help                             this text
  \\quit                             leave"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::new(&Options {
            bodies: 200,
            seed: 5,
            ..Options::default()
        })
    }

    fn drive(s: &mut Session, line: &str) -> (bool, String) {
        let mut buf = Vec::new();
        let more = s.handle_line(line, &mut buf).unwrap();
        (more, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn query_produces_table_and_stats() {
        let mut s = session();
        let (more, out) = drive(
            &mut s,
            "SELECT O.object_id, T.object_id FROM SDSS:Photo_Object O, \
             TWOMASS:Photo_Primary T WHERE XMATCH(O, T) < 3.5",
        );
        assert!(more);
        assert!(out.contains("O.object_id"));
        assert!(out.contains("bytes on the wire"));
    }

    #[test]
    fn bad_query_reports_error_not_panic() {
        let mut s = session();
        let (more, out) = drive(&mut s, "SELECT nonsense");
        assert!(more);
        assert!(out.starts_with("error:"));
    }

    #[test]
    fn meta_commands() {
        let mut s = session();
        let (_, out) = drive(&mut s, "\\archives");
        assert!(out.contains("SDSS") && out.contains("FIRST"));
        let (_, out) = drive(&mut s, "\\trace");
        assert!(out.contains("trace on"));
        let (_, out) = drive(&mut s, "\\rows 3");
        assert!(out.contains("up to 3"));
        let (_, out) = drive(&mut s, "\\ordering asc");
        assert!(out.contains("CountStarAscending"));
        let (_, out) = drive(&mut s, "\\limit 50000");
        assert!(out.contains("50000"));
        let (_, out) = drive(&mut s, "\\chunking off");
        assert!(out.contains("chunking off"));
        let (_, out) = drive(&mut s, "\\zonechunking off");
        assert!(out.contains("zone-aware chunking off"));
        assert!(!s.fed.portal.config().zone_chunking);
        let (_, out) = drive(&mut s, "\\kernel htm");
        assert!(out.contains("kernel set to htm"));
        assert_eq!(
            s.fed.portal.config().kernel,
            skyquery_core::MatchKernel::Htm
        );
        let (_, out) = drive(&mut s, "\\kernel quadtree");
        assert!(out.contains("usage: \\kernel"));
        let (_, out) = drive(&mut s, "\\cache 8");
        assert!(out.contains("capacity set to 8 entries"));
        assert_eq!(s.fed.portal.config().result_cache_capacity, 8);
        let (_, out) = drive(&mut s, "\\cache");
        assert!(out.contains("capacity 8"));
        assert!(out.contains("hits 0"));
        let (_, out) = drive(&mut s, "\\cache 0");
        assert!(out.contains("result cache off"));
        let (_, out) = drive(&mut s, "\\cache lots");
        assert!(out.contains("usage: \\cache"));
        let (_, out) = drive(&mut s, "\\nonsense");
        assert!(out.contains("unknown meta-command"));
        let (more, _) = drive(&mut s, "\\quit");
        assert!(!more);
    }

    #[test]
    fn row_limit_applies() {
        let mut s = session();
        drive(&mut s, "\\rows 2");
        let (_, out) = drive(
            &mut s,
            "SELECT O.object_id, T.object_id FROM SDSS:Photo_Object O, \
             TWOMASS:Photo_Primary T WHERE XMATCH(O, T) < 3.5",
        );
        assert!(out.contains("more rows"), "{out}");
    }

    #[test]
    fn transfer_meta_command() {
        let mut s = session();
        let (_, out) = drive(
            &mut s,
            "\\transfer SDSS TWOMASS imported SELECT O.object_id FROM SDSS:Photo_Object O",
        );
        assert!(out.contains("rows SDSS -> TWOMASS"), "{out}");
        let (_, out) = drive(&mut s, "\\transfer nope");
        assert!(out.contains("usage"));
    }

    #[test]
    fn faults_meta_command_arms_and_recovers() {
        let mut s = session();
        let (_, out) = drive(&mut s, "\\faults");
        assert!(out.contains("fault injection idle"), "{out}");
        let (_, out) = drive(&mut s, "\\retry 4 0.01");
        assert!(out.contains("4 attempts"), "{out}");
        // Knock TWOMASS down for 2 requests; retries ride over it.
        let (_, out) = drive(&mut s, "\\faults down TWOMASS 2");
        assert!(out.contains("armed: down on twomass.skyquery.net"), "{out}");
        let (ok, out) = drive(
            &mut s,
            "SELECT O.object_id, T.object_id FROM SDSS:Photo_Object O, \
             TWOMASS:Photo_Primary T WHERE XMATCH(O, T) < 3.5",
        );
        assert!(ok, "query should recover through retries: {out}");
        let (_, out) = drive(&mut s, "\\faults");
        assert!(out.contains("host-down"), "{out}");
        assert!(out.contains("2 retries"), "{out}");
        let (_, out) = drive(&mut s, "\\faults clear");
        assert!(out.contains("cleared"));
        let (_, out) = drive(&mut s, "\\faults wat");
        assert!(out.contains("usage"), "{out}");
        let (_, out) = drive(&mut s, "\\retry zero");
        assert!(out.contains("usage"), "{out}");
    }

    #[test]
    fn chain_meta_command_switches_driver() {
        let mut s = session();
        assert_eq!(s.fed.portal.config().chain_mode, ChainMode::Recursive);
        let (_, out) = drive(&mut s, "\\chain checkpointed");
        assert!(out.contains("chain driver: checkpointed"), "{out}");
        assert_eq!(s.fed.portal.config().chain_mode, ChainMode::Checkpointed);
        let (ok, out) = drive(
            &mut s,
            "SELECT O.object_id, T.object_id FROM SDSS:Photo_Object O, \
             TWOMASS:Photo_Primary T WHERE XMATCH(O, T) < 3.5",
        );
        assert!(ok, "checkpointed chain runs from the REPL: {out}");
        let (_, out) = drive(&mut s, "\\chain sideways");
        assert!(out.contains("usage: \\chain"), "{out}");
    }

    #[test]
    fn health_meta_command_reports_state() {
        let mut s = session();
        let (_, out) = drive(&mut s, "\\health");
        assert!(out.contains("all hosts healthy"), "{out}");
        assert!(out.contains("sdss.skyquery.net"), "{out}");
        assert!(out.contains("replans"), "{out}");
        // Exhaust retries against TWOMASS so the portal marks it unhealthy,
        // then probe it back to probation once the outage clears.
        drive(&mut s, "\\retry 2 0.0");
        drive(&mut s, "\\faults down TWOMASS 9");
        let (_, out) = drive(
            &mut s,
            "SELECT O.object_id, T.object_id FROM SDSS:Photo_Object O, \
             TWOMASS:Photo_Primary T WHERE XMATCH(O, T) < 3.5",
        );
        assert!(
            out.starts_with("error:"),
            "outage outlasts the retry budget: {out}"
        );
        let (_, out) = drive(&mut s, "\\health");
        assert!(out.contains("unhealthy"), "{out}");
        drive(&mut s, "\\faults clear");
        let (_, out) = drive(&mut s, "\\health probe");
        assert!(out.contains("ok -> probation"), "{out}");
        assert!(out.contains("probation"), "{out}");
    }

    #[test]
    fn step_fault_drives_replan_and_resume() {
        let mut s = session();
        drive(&mut s, "\\chain checkpointed");
        // Down for exactly the retry budget, scoped to ExecuteStep: the
        // portal re-plans around TWOMASS and resumes from the checkpoint.
        let (_, out) = drive(&mut s, "\\faults step TWOMASS 3");
        assert!(out.contains("armed: step on twomass.skyquery.net"), "{out}");
        let (_, out) = drive(
            &mut s,
            "SELECT O.object_id, T.object_id, P.object_id \
             FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P \
             WHERE XMATCH(O, T, P) < 3.5",
        );
        assert!(out.contains("bytes on the wire"), "query recovers: {out}");
        let (_, out) = drive(&mut s, "\\health");
        assert!(out.contains("1 replans"), "{out}");
        assert!(out.contains("1 resumes"), "{out}");
    }

    #[test]
    fn trace_toggle_shows_steps() {
        let mut s = session();
        drive(&mut s, "\\trace");
        let (_, out) = drive(
            &mut s,
            "SELECT O.object_id, T.object_id FROM SDSS:Photo_Object O, \
             TWOMASS:Photo_Primary T WHERE XMATCH(O, T) < 3.5",
        );
        assert!(out.contains("cross match step"), "{out}");
    }

    #[test]
    fn jobs_meta_commands() {
        let mut s = session();
        assert!(s.jobs.is_none(), "the job service starts lazily");
        let (_, out) = drive(&mut s, "\\submit");
        assert!(out.contains("usage: \\submit"), "{out}");
        let (_, out) = drive(
            &mut s,
            "\\submit SELECT O.object_id, T.object_id FROM SDSS:Photo_Object O, \
             TWOMASS:Photo_Primary T WHERE XMATCH(O, T) < 3.5 \
             ORDER BY O.object_id, T.object_id",
        );
        assert!(out.contains("job 1 queued"), "{out}");
        let (_, out) = drive(&mut s, "\\jobs");
        assert!(out.contains("1 queued · 0 running"), "{out}");
        assert!(out.contains("1 submitted"), "{out}");
        let (_, out) = drive(&mut s, "\\jobs run");
        assert!(out.contains("scheduler quanta"), "{out}");
        assert!(out.contains("0 jobs still queued"), "{out}");
        let (_, out) = drive(&mut s, "\\jobs");
        assert!(out.contains("succeeded"), "{out}");
        let (_, out) = drive(&mut s, "\\jobs fetch 1");
        assert!(out.contains("O.object_id"), "{out}");
        assert!(out.contains("rows"), "{out}");
        let (_, out) = drive(&mut s, "\\jobs cancel 1");
        assert!(out.contains("already finished"), "{out}");
        let (_, out) = drive(&mut s, "\\jobs wat");
        assert!(out.contains("usage: \\jobs"), "{out}");
        let (_, out) = drive(&mut s, "\\jobs fetch");
        assert!(out.contains("usage: \\jobs"), "{out}");
    }

    #[test]
    fn jobs_flag_pre_arms_the_service() {
        let s = Session::new(&Options {
            bodies: 200,
            seed: 5,
            jobs: true,
            ..Options::default()
        });
        assert!(s.jobs.is_some());
    }
}
