//! Hand-rolled argument parsing (the workspace keeps its dependency
//! surface to the sanctioned crates; a CLI parser is 60 lines).

/// Federation-shaping options shared by every command.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Number of bodies in the synthetic sky.
    pub bodies: usize,
    /// Catalog RNG seed.
    pub seed: u64,
    /// Cross-match worker threads per SkyNode (1 = sequential engine).
    pub workers: usize,
    /// Declination zone height in degrees for the parallel engine.
    pub zone_height_deg: f64,
    /// Split oversized transfers on zone boundaries (the pipelined path);
    /// `false` falls back to plain byte-budget chunking.
    pub zone_chunking: bool,
    /// Probe kernel for cross-match steps (columnar, HTM, or batch).
    pub kernel: skyquery_core::MatchKernel,
    /// Retry attempts for every federation RPC (1 = no retries).
    pub retries: u32,
    /// First retry's backoff in simulated seconds (doubles per retry).
    pub retry_backoff_s: f64,
    /// How the Portal drives the chain: the recursive daisy chain, or
    /// checkpointed execution with failover re-planning.
    pub chain_mode: skyquery_core::ChainMode,
    /// Start the asynchronous job service alongside the Portal (the REPL
    /// starts it lazily on first `\submit` either way; this pre-arms it).
    pub jobs: bool,
    /// Declination-zone shards per archive (1 = one SkyNode per archive;
    /// more splits each archive across a scatter-gather shard group).
    pub shards: usize,
    /// Identical replicas per zone extent (1 = no replication; more
    /// gives each extent failover/hedge siblings).
    pub replicas: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            bodies: 2000,
            seed: 42,
            workers: 1,
            zone_height_deg: skyquery_core::plan::DEFAULT_ZONE_HEIGHT_DEG,
            zone_chunking: true,
            kernel: skyquery_core::MatchKernel::default(),
            retries: skyquery_core::RetryPolicy::default().max_attempts,
            retry_backoff_s: skyquery_core::RetryPolicy::default().backoff_base_s,
            chain_mode: skyquery_core::ChainMode::default(),
            jobs: false,
            shards: 1,
            replicas: 1,
        }
    }
}

impl Options {
    /// The retry policy these options describe.
    pub fn retry_policy(&self) -> skyquery_core::RetryPolicy {
        skyquery_core::RetryPolicy {
            max_attempts: self.retries,
            backoff_base_s: self.retry_backoff_s,
            ..skyquery_core::RetryPolicy::default()
        }
    }
}

/// Parsed CLI command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `skyquery demo` — quickstart.
    Demo(Options),
    /// `skyquery run <sql>` — one-shot query.
    Run(Options, String),
    /// `skyquery repl` — interactive session.
    Repl(Options),
    /// `skyquery help` or parse failure with the message to print.
    Help(Option<String>),
}

/// Parses `argv[1..]`.
pub fn parse_args<I, S>(args: I) -> Command
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    let mut opts = Options::default();
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bodies" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => opts.bodies = n,
                    None => return Command::Help(Some("--bodies needs a number".into())),
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => opts.seed = n,
                    None => return Command::Help(Some("--seed needs a number".into())),
                }
            }
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => opts.workers = n,
                    _ => return Command::Help(Some("--workers needs a number ≥ 1".into())),
                }
            }
            "--zone-height" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(h) if h.is_finite() && h > 0.0 => opts.zone_height_deg = h,
                    _ => {
                        return Command::Help(Some(
                            "--zone-height needs a positive number of degrees".into(),
                        ))
                    }
                }
            }
            "--kernel" => {
                i += 1;
                match args
                    .get(i)
                    .and_then(|v| skyquery_core::MatchKernel::parse(v))
                {
                    Some(k) => opts.kernel = k,
                    None => {
                        return Command::Help(Some(
                            "--kernel needs columnar, htm, or batch".into(),
                        ));
                    }
                }
            }
            "--retries" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => opts.retries = n,
                    _ => return Command::Help(Some("--retries needs a number ≥ 1".into())),
                }
            }
            "--retry-backoff" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(s) if s.is_finite() && s >= 0.0 => opts.retry_backoff_s = s,
                    _ => {
                        return Command::Help(Some(
                            "--retry-backoff needs a non-negative number of seconds".into(),
                        ))
                    }
                }
            }
            "--chain" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("recursive") => opts.chain_mode = skyquery_core::ChainMode::Recursive,
                    Some("checkpointed") => {
                        opts.chain_mode = skyquery_core::ChainMode::Checkpointed
                    }
                    _ => {
                        return Command::Help(Some(
                            "--chain needs recursive or checkpointed".into(),
                        ))
                    }
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => opts.shards = n,
                    _ => return Command::Help(Some("--shards needs a number ≥ 1".into())),
                }
            }
            "--replicas" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => opts.replicas = n,
                    _ => return Command::Help(Some("--replicas needs a number ≥ 1".into())),
                }
            }
            "--no-zone-chunking" => opts.zone_chunking = false,
            "--jobs" => opts.jobs = true,
            "--help" | "-h" => return Command::Help(None),
            other if other.starts_with("--") => {
                return Command::Help(Some(format!("unknown option {other}")))
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    match positional.first().map(String::as_str) {
        Some("demo") => Command::Demo(opts),
        Some("repl") => Command::Repl(opts),
        Some("run") => {
            let sql = positional[1..].join(" ");
            if sql.trim().is_empty() {
                Command::Help(Some("run needs a query: skyquery run \"SELECT …\"".into()))
            } else {
                Command::Run(opts, sql)
            }
        }
        Some("help") | None => Command::Help(None),
        Some(other) => Command::Help(Some(format!("unknown command {other}"))),
    }
}

/// The help text.
pub fn usage() -> &'static str {
    "skyquery — a federated cross-match engine (SkyQuery, CIDR 2003)

USAGE:
    skyquery <COMMAND> [OPTIONS]

COMMANDS:
    demo             build a 3-archive federation and run the paper's sample query
    run \"<sql>\"      run one cross-match query against a fresh federation
    repl             interactive session (\\help inside for meta-commands)
    help             show this text

OPTIONS:
    --bodies <N>       synthetic bodies in the shared sky          [default: 2000]
    --seed <N>         catalog RNG seed                            [default: 42]
    --workers <N>      cross-match worker threads per SkyNode      [default: 1]
    --zone-height <D>  declination zone height, degrees            [default: 0.1]
    --kernel <K>       cross-match probe kernel: columnar | htm | batch    [default: columnar]
    --retries <N>      RPC attempts before a node is unhealthy     [default: 3]
    --retry-backoff <S> first retry backoff, simulated seconds     [default: 0.05]
    --chain <M>        chain driver: recursive | checkpointed      [default: recursive]
    --shards <N>       declination-zone shards per archive         [default: 1]
    --replicas <N>     identical replicas per zone extent          [default: 1]
    --no-zone-chunking legacy byte-budget chunking for oversized transfers
    --jobs             start the async job service (REPL: \\submit, \\jobs)
"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert_eq!(parse_args(["demo"]), Command::Demo(Options::default()));
        assert!(matches!(
            parse_args(Vec::<String>::new()),
            Command::Help(None)
        ));
        assert!(matches!(parse_args(["help"]), Command::Help(None)));
        assert!(matches!(parse_args(["--help"]), Command::Help(None)));
    }

    #[test]
    fn options_parsed() {
        match parse_args([
            "repl",
            "--bodies",
            "500",
            "--seed",
            "7",
            "--workers",
            "4",
            "--zone-height",
            "0.5",
            "--kernel",
            "htm",
            "--retries",
            "5",
            "--retry-backoff",
            "0.2",
            "--chain",
            "checkpointed",
            "--shards",
            "4",
            "--replicas",
            "2",
        ]) {
            Command::Repl(o) => {
                assert_eq!(o.bodies, 500);
                assert_eq!(o.seed, 7);
                assert_eq!(o.workers, 4);
                assert_eq!(o.zone_height_deg, 0.5);
                assert!(o.zone_chunking, "zone chunking defaults on");
                assert_eq!(o.kernel, skyquery_core::MatchKernel::Htm);
                assert_eq!(o.retries, 5);
                assert_eq!(o.retry_backoff_s, 0.2);
                assert_eq!(o.retry_policy().max_attempts, 5);
                assert_eq!(o.chain_mode, skyquery_core::ChainMode::Checkpointed);
                assert_eq!(o.shards, 4);
                assert_eq!(o.replicas, 2);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            Options::default().kernel,
            skyquery_core::MatchKernel::Columnar,
            "columnar kernel is the default"
        );
        match parse_args(["demo", "--no-zone-chunking"]) {
            Command::Demo(o) => assert!(!o.zone_chunking),
            other => panic!("{other:?}"),
        }
        match parse_args(["repl", "--jobs"]) {
            Command::Repl(o) => assert!(o.jobs),
            other => panic!("{other:?}"),
        }
        assert!(!Options::default().jobs, "the job service is opt-in");
        assert_eq!(Options::default().shards, 1, "sharding is opt-in");
        assert_eq!(Options::default().replicas, 1, "replication is opt-in");
        // Options may precede the command.
        match parse_args(["--bodies", "10", "demo"]) {
            Command::Demo(o) => assert_eq!(o.bodies, 10),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn run_collects_sql() {
        match parse_args(["run", "SELECT", "O.a", "FROM", "S:T", "O"]) {
            Command::Run(_, sql) => assert_eq!(sql, "SELECT O.a FROM S:T O"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_reported() {
        assert!(matches!(
            parse_args(["run"]),
            Command::Help(Some(msg)) if msg.contains("run needs a query")
        ));
        assert!(matches!(
            parse_args(["--bodies", "NaN", "demo"]),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse_args(["--wat"]),
            Command::Help(Some(msg)) if msg.contains("--wat")
        ));
        assert!(matches!(
            parse_args(["launch"]),
            Command::Help(Some(msg)) if msg.contains("launch")
        ));
        assert!(matches!(
            parse_args(["--workers", "0", "demo"]),
            Command::Help(Some(msg)) if msg.contains("--workers")
        ));
        assert!(matches!(
            parse_args(["--zone-height", "-2", "demo"]),
            Command::Help(Some(msg)) if msg.contains("--zone-height")
        ));
        assert!(matches!(
            parse_args(["--kernel", "quadtree", "demo"]),
            Command::Help(Some(msg)) if msg.contains("--kernel")
        ));
        assert!(matches!(
            parse_args(["--retries", "0", "demo"]),
            Command::Help(Some(msg)) if msg.contains("--retries")
        ));
        assert!(matches!(
            parse_args(["--retry-backoff", "-1", "demo"]),
            Command::Help(Some(msg)) if msg.contains("--retry-backoff")
        ));
        assert!(matches!(
            parse_args(["--chain", "telepathic", "demo"]),
            Command::Help(Some(msg)) if msg.contains("--chain")
        ));
        assert!(matches!(
            parse_args(["--shards", "0", "demo"]),
            Command::Help(Some(msg)) if msg.contains("--shards")
        ));
        assert!(matches!(
            parse_args(["--replicas", "0", "demo"]),
            Command::Help(Some(msg)) if msg.contains("--replicas")
        ));
    }

    #[test]
    fn usage_mentions_commands() {
        for word in [
            "demo",
            "run",
            "repl",
            "--bodies",
            "--seed",
            "--workers",
            "--zone-height",
            "--kernel",
            "--retries",
            "--retry-backoff",
            "--chain",
            "--shards",
            "--replicas",
            "--no-zone-chunking",
            "--jobs",
        ] {
            assert!(usage().contains(word), "{word}");
        }
    }
}
