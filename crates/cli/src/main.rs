//! The `skyquery` binary: see `skyquery help`.

use std::io::{BufRead, Write};

use skyquery_cli::args::{parse_args, usage, Command};
use skyquery_cli::session::{meta_help, Session};

fn main() {
    let cmd = parse_args(std::env::args().skip(1));
    let code = run(cmd);
    std::process::exit(code);
}

fn run(cmd: Command) -> i32 {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match cmd {
        Command::Help(None) => {
            let _ = writeln!(out, "{}", usage());
            0
        }
        Command::Help(Some(msg)) => {
            eprintln!("error: {msg}\n\n{}", usage());
            2
        }
        Command::Demo(opts) => {
            let _ = writeln!(
                out,
                "Building a 3-archive federation ({} bodies, seed {})…",
                opts.bodies, opts.seed
            );
            let mut session = Session::new(&opts);
            let _ = session.handle_line("\\archives", &mut out);
            let sql = skyquery_sim::paper_query();
            let _ = writeln!(out, "\n> {sql}\n");
            let _ = session.handle_line("\\trace", &mut out);
            let _ = session.handle_line(&sql, &mut out);
            0
        }
        Command::Run(opts, sql) => {
            let mut session = Session::new(&opts);
            match session.run_once(&sql, &mut out) {
                Ok(true) => 0,
                Ok(false) => 1, // query failed; the error was printed
                Err(_) => 1,
            }
        }
        Command::Repl(opts) => {
            let _ = writeln!(
                out,
                "skyquery repl — {} bodies, seed {} (\\help for meta-commands)",
                opts.bodies, opts.seed
            );
            let _ = writeln!(out, "{}", meta_help());
            let mut session = Session::new(&opts);
            let stdin = std::io::stdin();
            let mut line = String::new();
            loop {
                let _ = write!(out, "skyquery> ");
                let _ = out.flush();
                line.clear();
                match stdin.lock().read_line(&mut line) {
                    Ok(0) => break, // EOF
                    Ok(_) => match session.handle_line(&line, &mut out) {
                        Ok(true) => {}
                        Ok(false) => break,
                        Err(e) => {
                            eprintln!("io error: {e}");
                            return 1;
                        }
                    },
                    Err(e) => {
                        eprintln!("io error: {e}");
                        return 1;
                    }
                }
            }
            0
        }
    }
}
