//! Circle (spherical cap) covers: turning an `AREA` clause into HTM ID
//! ranges.
//!
//! The cover walks the trixel quad-tree from the roots. A trixel entirely
//! inside the cap contributes a **full** range (all its descendants at the
//! target depth); a trixel that intersects the cap boundary is subdivided
//! until the target depth, where it contributes a **partial** range. This is
//! the two-phase filter of the paper's Section 5.4: rows in full trixels
//! need no distance re-test, rows in partial trixels do.

use crate::geom::{Cap, SkyPoint, Vec3};
use crate::mesh::Mesh;
use crate::polygon::ConvexPolygon;
use crate::ranges::{normalize, IdRange};
use crate::trixel::Trixel;

/// A geodesically convex sky region that covers can be computed for.
///
/// Convexity is what licenses the cover's key shortcut: a trixel whose
/// three corners are inside the region is entirely inside it.
pub trait ConvexRegion {
    /// Whether unit vector `p` is inside (boundary inclusive).
    fn contains(&self, p: Vec3) -> bool;
    /// A point guaranteed to be inside the region (detects the
    /// region-entirely-within-a-trixel case).
    fn anchor(&self) -> Vec3;
    /// Whether the region's boundary crosses the great-circle arc `a→b`
    /// whose endpoints are both *outside* the region.
    fn boundary_crosses_arc(&self, a: Vec3, b: Vec3) -> bool;
    /// Whether the region really is geodesically convex. Regions that
    /// cannot guarantee it (caps wider than a hemisphere) return false,
    /// downgrading would-be Full trixels to Partial — slower, never wrong.
    fn is_geodesically_convex(&self) -> bool {
        true
    }
}

impl ConvexRegion for Cap {
    fn contains(&self, p: Vec3) -> bool {
        Cap::contains(self, p)
    }

    fn anchor(&self) -> Vec3 {
        self.center()
    }

    fn boundary_crosses_arc(&self, a: Vec3, b: Vec3) -> bool {
        self.intersects_arc(a, b)
    }

    fn is_geodesically_convex(&self) -> bool {
        self.radius() <= std::f64::consts::FRAC_PI_2
    }
}

impl ConvexRegion for ConvexPolygon {
    fn contains(&self, p: Vec3) -> bool {
        ConvexPolygon::contains(self, p)
    }

    fn anchor(&self) -> Vec3 {
        self.centroid()
    }

    fn boundary_crosses_arc(&self, a: Vec3, b: Vec3) -> bool {
        self.edge_crosses(a, b)
    }
}

/// Whether a range's trixels are entirely inside the query region or merely
/// intersecting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeKind {
    /// Every point of the trixel(s) is inside the region.
    Full,
    /// The trixel(s) intersect the region boundary; member objects must be
    /// re-tested individually.
    Partial,
}

/// One ID range of a cover, tagged full or partial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverRange {
    /// The ID range.
    pub range: IdRange,
    /// Whether its trixels are fully inside or boundary-intersecting.
    pub kind: RangeKind,
}

/// The result of covering a region at a fixed mesh depth.
#[derive(Debug, Clone)]
pub struct Cover {
    depth: u8,
    full: Vec<IdRange>,
    partial: Vec<IdRange>,
}

/// How a trixel relates to a cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Classification {
    Inside,
    Intersecting,
    Disjoint,
}

fn classify<R: ConvexRegion + ?Sized>(t: &Trixel, region: &R) -> Classification {
    let inside = [t.v0, t.v1, t.v2]
        .iter()
        .filter(|&&v| region.contains(v))
        .count();
    match inside {
        // A geodesically convex region with all corners inside implies
        // the whole trixel is inside.
        3 if region.is_geodesically_convex() => Classification::Inside,
        3 => Classification::Intersecting,
        1 | 2 => Classification::Intersecting,
        _ => {
            // No corners inside. The region may still poke into the
            // trixel through an edge, or lie entirely within it.
            if t.contains(region.anchor())
                || region.boundary_crosses_arc(t.v0, t.v1)
                || region.boundary_crosses_arc(t.v1, t.v2)
                || region.boundary_crosses_arc(t.v2, t.v0)
            {
                Classification::Intersecting
            } else {
                Classification::Disjoint
            }
        }
    }
}

impl Cover {
    /// Covers the circle `AREA(center, radius_rad)` at the mesh's depth.
    pub fn circle(mesh: &Mesh, center: SkyPoint, radius_rad: f64) -> Cover {
        Cover::cap(mesh, &Cap::new(center.to_vec3(), radius_rad))
    }

    /// Covers an arbitrary spherical cap at the mesh's depth.
    pub fn cap(mesh: &Mesh, cap: &Cap) -> Cover {
        Cover::region(mesh, cap)
    }

    /// Covers a convex spherical polygon at the mesh's depth (the §6
    /// polygon-AREA extension).
    pub fn polygon(mesh: &Mesh, polygon: &ConvexPolygon) -> Cover {
        Cover::region(mesh, polygon)
    }

    /// Covers any convex region at the mesh's depth.
    pub fn region<R: ConvexRegion + ?Sized>(mesh: &Mesh, region: &R) -> Cover {
        let depth = mesh.depth();
        let mut full = Vec::new();
        let mut partial = Vec::new();
        for root in Trixel::roots() {
            descend(&root, region, depth, &mut full, &mut partial);
        }
        normalize(&mut full);
        normalize(&mut partial);
        Cover {
            depth,
            full,
            partial,
        }
    }

    /// Target depth of this cover's ranges.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Ranges of trixels fully inside the region.
    pub fn full_ranges(&self) -> &[IdRange] {
        &self.full
    }

    /// Ranges of trixels intersecting the region boundary.
    pub fn partial_ranges(&self) -> &[IdRange] {
        &self.partial
    }

    /// All ranges with their kinds, in ascending ID order.
    pub fn ranges(&self) -> Vec<CoverRange> {
        let mut out: Vec<CoverRange> = self
            .full
            .iter()
            .map(|&range| CoverRange {
                range,
                kind: RangeKind::Full,
            })
            .chain(self.partial.iter().map(|&range| CoverRange {
                range,
                kind: RangeKind::Partial,
            }))
            .collect();
        out.sort_by_key(|c| c.range.lo);
        out
    }

    /// Total number of trixels covered (full + partial).
    pub fn trixel_count(&self) -> u64 {
        self.full.iter().map(|r| r.len()).sum::<u64>()
            + self.partial.iter().map(|r| r.len()).sum::<u64>()
    }

    /// Whether a depth-matching HTM id falls in the cover, and if so with
    /// which kind.
    pub fn classify_id(&self, id: u64) -> Option<RangeKind> {
        if crate::ranges::ranges_contain(&self.full, id) {
            Some(RangeKind::Full)
        } else if crate::ranges::ranges_contain(&self.partial, id) {
            Some(RangeKind::Partial)
        } else {
            None
        }
    }
}

fn descend<R: ConvexRegion + ?Sized>(
    t: &Trixel,
    region: &R,
    target_depth: u8,
    full: &mut Vec<IdRange>,
    partial: &mut Vec<IdRange>,
) {
    match classify(t, region) {
        Classification::Disjoint => {}
        Classification::Inside => {
            let (lo, hi) = t.id.descendants_at(target_depth);
            full.push(IdRange::new(lo, hi));
        }
        Classification::Intersecting => {
            if t.id.depth() == target_depth {
                let raw = t.id.raw();
                partial.push(IdRange::new(raw, raw));
            } else {
                for child in t.children() {
                    descend(&child, region, target_depth, full, partial);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Vec3;

    fn cover_sound_for(center: SkyPoint, radius_deg: f64, depth: u8) {
        let mesh = Mesh::new(depth);
        let cap = Cap::new(center.to_vec3(), radius_deg.to_radians());
        let cover = Cover::cap(&mesh, &cap);

        // Soundness: points inside the cap locate to covered trixels.
        let cv = center.to_vec3();
        // Build an orthonormal frame around the center.
        let axis = if cv.z.abs() < 0.9 {
            Vec3::new(0.0, 0.0, 1.0)
        } else {
            Vec3::new(1.0, 0.0, 0.0)
        };
        let u = cv.cross(axis).unit();
        let w = cv.cross(u).unit();
        for frac in [0.0, 0.3, 0.7, 0.99] {
            for k in 0..12 {
                let phi = k as f64 * std::f64::consts::TAU / 12.0;
                let r = radius_deg.to_radians() * frac;
                let p = cv
                    .scale(r.cos())
                    .add(u.scale(r.sin() * phi.cos()))
                    .add(w.scale(r.sin() * phi.sin()))
                    .unit();
                assert!(cap.contains(p));
                let id = mesh.locate_vec(p).raw();
                assert!(
                    cover.classify_id(id).is_some(),
                    "in-cap point missing from cover (frac {frac}, k {k})"
                );
            }
        }

        // Full-range precision: corners of full trixels are inside the cap.
        for r in cover.full_ranges() {
            for id in [r.lo, r.hi] {
                let t = mesh.trixel(crate::trixel::HtmId::new(id).unwrap());
                assert!(cap.contains(t.v0) && cap.contains(t.v1) && cap.contains(t.v2));
            }
        }
    }

    #[test]
    fn small_circle_cover_is_sound() {
        cover_sound_for(SkyPoint::from_radec_deg(185.0, -0.5), 0.075, 10);
    }

    #[test]
    fn medium_circle_cover_is_sound() {
        cover_sound_for(SkyPoint::from_radec_deg(10.0, 45.0), 2.0, 7);
    }

    #[test]
    fn large_circle_cover_is_sound() {
        cover_sound_for(SkyPoint::from_radec_deg(300.0, -60.0), 30.0, 5);
    }

    #[test]
    fn polar_cover_is_sound() {
        cover_sound_for(SkyPoint::from_radec_deg(0.0, 89.5), 1.0, 8);
    }

    #[test]
    fn cover_at_depth_zero() {
        let mesh = Mesh::new(0);
        let cover = Cover::circle(&mesh, SkyPoint::from_radec_deg(45.0, 45.0), 0.01);
        // A tiny circle near the middle of a root trixel: exactly one
        // partial root, no full ranges.
        assert!(cover.full_ranges().is_empty());
        assert_eq!(cover.trixel_count(), 1);
    }

    #[test]
    fn bigger_radius_covers_more_trixels() {
        let mesh = Mesh::new(8);
        let c = SkyPoint::from_radec_deg(150.0, 20.0);
        let small = Cover::circle(&mesh, c, 0.2_f64.to_radians());
        let big = Cover::circle(&mesh, c, 2.0_f64.to_radians());
        assert!(big.trixel_count() > small.trixel_count());
    }

    #[test]
    fn deep_cover_has_full_ranges() {
        // At a depth where trixels are much smaller than the cap, most of
        // the cap interior is full-covered.
        let mesh = Mesh::new(9);
        let cover = Cover::circle(
            &mesh,
            SkyPoint::from_radec_deg(100.0, 10.0),
            3.0_f64.to_radians(),
        );
        let full: u64 = cover.full_ranges().iter().map(|r| r.len()).sum();
        let partial: u64 = cover.partial_ranges().iter().map(|r| r.len()).sum();
        assert!(full > partial, "full {full} vs partial {partial}");
    }

    #[test]
    fn classify_id_disjoint() {
        let mesh = Mesh::new(6);
        let cover = Cover::circle(&mesh, SkyPoint::from_radec_deg(0.0, 0.0), 0.01);
        // A point on the opposite side of the sky is not in the cover.
        let far = mesh.locate(SkyPoint::from_radec_deg(180.0, 0.0)).raw();
        assert_eq!(cover.classify_id(far), None);
    }

    #[test]
    fn whole_sky_cap_covers_everything() {
        let mesh = Mesh::new(3);
        let cap = Cap::new(Vec3::new(0.0, 0.0, 1.0), std::f64::consts::PI);
        let cover = Cover::cap(&mesh, &cap);
        assert_eq!(cover.trixel_count(), mesh.trixel_count());
    }
}
