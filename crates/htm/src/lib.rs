#![warn(missing_docs)]
//! # skyquery-htm — Hierarchical Triangular Mesh
//!
//! A from-scratch implementation of the Hierarchical Triangular Mesh (HTM)
//! spatial index described by the SkyQuery paper (\[Hie02\] in its
//! references). The HTM recursively subdivides the celestial sphere into
//! spherical triangles ("trixels"), eight at the root and four children per
//! trixel, producing a quad-tree over the sky.
//!
//! Each trixel at depth `d` is identified by an integer **HTM ID** in the
//! range `[8·4^d, 16·4^d)`. Sorting objects by HTM ID clusters them
//! spatially, so a circular range search reduces to a handful of contiguous
//! ID-range scans — exactly the mechanism SkyNodes use to evaluate the
//! `AREA` clause and the per-step candidate search of the cross-match
//! algorithm.
//!
//! ## Quick start
//!
//! ```
//! use skyquery_htm::{SkyPoint, Mesh, Cover};
//!
//! let mesh = Mesh::new(10); // depth-10 mesh
//! let p = SkyPoint::from_radec_deg(185.0, -0.5);
//! let id = mesh.locate(p);
//! assert!(mesh.trixel(id).contains(p.to_vec3()));
//!
//! // Cover a 30-arcminute circle: every point of the cap falls inside one
//! // of the returned ID ranges.
//! let radius_deg = 0.5_f64;
//! let cover = Cover::circle(&mesh, p, radius_deg.to_radians());
//! assert!(!cover.ranges().is_empty());
//! ```
//!
//! The cover distinguishes *full* ranges (trixels entirely inside the cap —
//! rows there need no further distance test) from *partial* ranges (trixels
//! that merely intersect — rows there are re-tested individually), matching
//! the two-phase filtering the paper describes in Section 5.4.

pub mod cover;
pub mod geom;
pub mod mesh;
pub mod polygon;
pub mod ranges;
pub mod trixel;

pub use cover::{ConvexRegion, Cover, CoverRange, RangeKind};
pub use geom::{angular_distance, Cap, SkyPoint, Vec3};
pub use mesh::Mesh;
pub use polygon::{ConvexPolygon, PolygonError};
pub use ranges::IdRange;
pub use trixel::{HtmId, Trixel, MAX_DEPTH};

/// Errors produced by HTM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmError {
    /// Requested depth exceeds [`MAX_DEPTH`].
    DepthTooLarge(u8),
    /// An HTM ID that does not encode a valid trixel.
    InvalidId(u64),
}

impl std::fmt::Display for HtmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HtmError::DepthTooLarge(d) => {
                write!(f, "HTM depth {d} exceeds maximum {MAX_DEPTH}")
            }
            HtmError::InvalidId(id) => write!(f, "invalid HTM id {id}"),
        }
    }
}

impl std::error::Error for HtmError {}
