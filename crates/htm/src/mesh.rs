//! Point location on a fixed-depth mesh.

use crate::geom::{SkyPoint, Vec3};
use crate::trixel::{HtmId, Trixel, MAX_DEPTH};
use crate::HtmError;

/// A fixed-depth HTM mesh. The mesh itself stores no trixel data — trixels
/// are recomputed on demand — so it is cheap to construct and `Copy`-light.
#[derive(Debug, Clone, Copy)]
pub struct Mesh {
    depth: u8,
}

impl Mesh {
    /// Creates a mesh of the given subdivision depth.
    ///
    /// # Panics
    /// Panics if `depth > MAX_DEPTH`; use [`Mesh::try_new`] to handle that
    /// case gracefully.
    pub fn new(depth: u8) -> Mesh {
        Mesh::try_new(depth).expect("depth exceeds MAX_DEPTH")
    }

    /// Fallible constructor.
    pub fn try_new(depth: u8) -> Result<Mesh, HtmError> {
        if depth > MAX_DEPTH {
            Err(HtmError::DepthTooLarge(depth))
        } else {
            Ok(Mesh { depth })
        }
    }

    /// The mesh's subdivision depth.
    pub fn depth(self) -> u8 {
        self.depth
    }

    /// Number of trixels at this depth: `8 · 4^depth`.
    pub fn trixel_count(self) -> u64 {
        8u64 << (2 * self.depth as u32)
    }

    /// Smallest valid ID at this depth.
    pub fn min_id(self) -> u64 {
        8u64 << (2 * self.depth as u32)
    }

    /// One past the largest valid ID at this depth.
    pub fn max_id_exclusive(self) -> u64 {
        16u64 << (2 * self.depth as u32)
    }

    /// Locates the depth-`depth` trixel containing sky point `p`.
    pub fn locate(self, p: SkyPoint) -> HtmId {
        self.locate_vec(p.to_vec3())
    }

    /// Locates the trixel containing unit vector `v`.
    ///
    /// Boundary points (which lie in several trixels) resolve to the first
    /// matching trixel in canonical order, deterministically.
    pub fn locate_vec(self, v: Vec3) -> HtmId {
        let mut t = Trixel::roots()
            .into_iter()
            .find(|t| t.contains(v))
            // contains() uses a small negative tolerance, so every unit
            // vector matches at least one root.
            .expect("unit vector not in any root trixel");
        for _ in 0..self.depth {
            let kids = t.children();
            t = kids
                .into_iter()
                .find(|k| k.contains(v))
                // The children tile the parent with the same tolerance.
                .expect("point in parent but no child");
        }
        t.id
    }

    /// The trixel geometry for an ID (not necessarily at this mesh's depth).
    pub fn trixel(self, id: HtmId) -> Trixel {
        Trixel::from_id(id)
    }

    /// Approximate angular side length of trixels at this depth, radians.
    /// Root edges span π/2 and each subdivision roughly halves edge length.
    pub fn approx_side(self) -> f64 {
        std::f64::consts::FRAC_PI_2 / (1u64 << self.depth as u32) as f64
    }

    /// Chooses a reasonable mesh depth for range searches of the given
    /// radius: deep enough that trixels are comparable to the search radius
    /// (a few trixels per cap), shallow enough to keep covers small.
    pub fn depth_for_radius(radius_rad: f64) -> u8 {
        let mut depth = 0u8;
        let mut side = std::f64::consts::FRAC_PI_2;
        while side > radius_rad && depth < MAX_DEPTH {
            side /= 2.0;
            depth += 1;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_agrees_with_containment() {
        let mesh = Mesh::new(8);
        for &(ra, dec) in &[
            (0.1, 0.1),
            (185.0, -0.5),
            (359.0, 88.0),
            (90.0, -88.0),
            (45.0, 45.0),
            (222.2, -33.3),
        ] {
            let p = SkyPoint::from_radec_deg(ra, dec);
            let id = mesh.locate(p);
            assert_eq!(id.depth(), 8);
            assert!(mesh.trixel(id).contains(p.to_vec3()), "({ra},{dec})");
        }
    }

    #[test]
    fn locate_id_in_valid_range() {
        let mesh = Mesh::new(6);
        let p = SkyPoint::from_radec_deg(10.0, 10.0);
        let id = mesh.locate(p).raw();
        assert!(id >= mesh.min_id() && id < mesh.max_id_exclusive());
    }

    #[test]
    fn trixel_count() {
        assert_eq!(Mesh::new(0).trixel_count(), 8);
        assert_eq!(Mesh::new(1).trixel_count(), 32);
        assert_eq!(Mesh::new(5).trixel_count(), 8 * 1024);
    }

    #[test]
    fn nearby_points_share_trixel_at_coarse_depth() {
        let mesh = Mesh::new(4);
        let a = SkyPoint::from_radec_deg(120.0, 30.0);
        let b = SkyPoint::from_radec_deg(120.0 + 1e-7, 30.0 + 1e-7);
        assert_eq!(mesh.locate(a), mesh.locate(b));
    }

    #[test]
    fn depth_for_radius_monotone() {
        let d_wide = Mesh::depth_for_radius(10.0_f64.to_radians());
        let d_narrow = Mesh::depth_for_radius((1.0 / 3600.0_f64).to_radians());
        assert!(d_narrow > d_wide);
        assert!(d_narrow <= MAX_DEPTH);
    }

    #[test]
    fn poles_locate() {
        let mesh = Mesh::new(10);
        let north = SkyPoint::from_radec_deg(0.0, 90.0);
        let south = SkyPoint::from_radec_deg(0.0, -90.0);
        let n = mesh.locate(north);
        let s = mesh.locate(south);
        assert!(mesh.trixel(n).contains(north.to_vec3()));
        assert!(mesh.trixel(s).contains(south.to_vec3()));
        assert_ne!(n, s);
    }
}
