//! Inclusive ID ranges and range-list normalization.

/// An inclusive range `[lo, hi]` of HTM IDs at a single depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdRange {
    /// Smallest ID in the range.
    pub lo: u64,
    /// Largest ID in the range (inclusive).
    pub hi: u64,
}

impl IdRange {
    /// An inclusive range; `lo` must be ≤ `hi`.
    pub fn new(lo: u64, hi: u64) -> IdRange {
        debug_assert!(lo <= hi, "IdRange lo {lo} > hi {hi}");
        IdRange { lo, hi }
    }

    /// Number of IDs covered.
    pub fn len(self) -> u64 {
        self.hi - self.lo + 1
    }

    /// Always false: an inclusive range covers at least one ID (paired
    /// with `len` for the conventional API shape).
    pub fn is_empty(self) -> bool {
        false // an inclusive range always covers at least one id
    }

    /// Whether `id` falls inside the range.
    pub fn contains(self, id: u64) -> bool {
        self.lo <= id && id <= self.hi
    }

    /// Whether `self` and `other` overlap or touch (are adjacent).
    pub fn touches(self, other: IdRange) -> bool {
        // Adjacent: self.hi + 1 == other.lo or vice versa; careful with
        // overflow at u64::MAX (not reachable for valid HTM ids, but be safe).
        let (a, b) = if self.lo <= other.lo {
            (self, other)
        } else {
            (other, self)
        };
        b.lo <= a.hi || b.lo == a.hi.saturating_add(1)
    }

    /// Union of two touching ranges.
    pub fn merge(self, other: IdRange) -> IdRange {
        debug_assert!(self.touches(other));
        IdRange::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }
}

/// Sorts a range list and merges overlapping/adjacent entries in place.
pub fn normalize(ranges: &mut Vec<IdRange>) {
    if ranges.len() <= 1 {
        return;
    }
    ranges.sort_by_key(|r| r.lo);
    let mut out: Vec<IdRange> = Vec::with_capacity(ranges.len());
    for &r in ranges.iter() {
        match out.last_mut() {
            Some(last) if last.touches(r) => *last = last.merge(r),
            _ => out.push(r),
        }
    }
    *ranges = out;
}

/// Whether a sorted, normalized range list contains `id` (binary search).
pub fn ranges_contain(ranges: &[IdRange], id: u64) -> bool {
    let idx = ranges.partition_point(|r| r.hi < id);
    idx < ranges.len() && ranges[idx].contains(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_len_and_contains() {
        let r = IdRange::new(10, 20);
        assert_eq!(r.len(), 11);
        assert!(r.contains(10) && r.contains(20) && r.contains(15));
        assert!(!r.contains(9) && !r.contains(21));
    }

    #[test]
    fn touching_and_merge() {
        let a = IdRange::new(10, 20);
        let b = IdRange::new(21, 30); // adjacent
        let c = IdRange::new(15, 25); // overlapping
        let d = IdRange::new(40, 50); // disjoint
        assert!(a.touches(b));
        assert!(a.touches(c));
        assert!(!a.touches(d));
        assert_eq!(a.merge(b), IdRange::new(10, 30));
        assert_eq!(a.merge(c), IdRange::new(10, 25));
    }

    #[test]
    fn normalize_merges_and_sorts() {
        let mut v = vec![
            IdRange::new(30, 40),
            IdRange::new(10, 15),
            IdRange::new(16, 20),
            IdRange::new(35, 50),
        ];
        normalize(&mut v);
        assert_eq!(v, vec![IdRange::new(10, 20), IdRange::new(30, 50)]);
    }

    #[test]
    fn normalize_single_and_empty() {
        let mut v: Vec<IdRange> = vec![];
        normalize(&mut v);
        assert!(v.is_empty());
        let mut v = vec![IdRange::new(5, 6)];
        normalize(&mut v);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ranges_contain_binary_search() {
        let v = vec![
            IdRange::new(10, 20),
            IdRange::new(30, 50),
            IdRange::new(99, 99),
        ];
        for id in [10, 20, 30, 50, 99] {
            assert!(ranges_contain(&v, id), "{id}");
        }
        for id in [0, 9, 21, 29, 51, 98, 100] {
            assert!(!ranges_contain(&v, id), "{id}");
        }
    }
}
