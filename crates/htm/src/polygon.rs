//! Convex spherical polygons — the region type of the paper's §6
//! extension ("the AREA clause can also be extended to specify arbitrary
//! polygons rather than just simple circles").
//!
//! A polygon is the intersection of the half-spaces defined by its edges'
//! great circles. Vertices must be listed counter-clockwise as seen from
//! outside the sphere; construction validates convexity and orientation.

use crate::geom::{SkyPoint, Vec3};
use crate::HtmError;

/// A convex spherical polygon.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexPolygon {
    vertices: Vec<Vec3>,
    /// Outward edge normals: `normals[i] = vertices[i] × vertices[i+1]`,
    /// normalized. A point is inside iff `p · n ≥ 0` for all normals.
    normals: Vec<Vec3>,
}

/// Why polygon construction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices.
    TooFewVertices(usize),
    /// Two consecutive vertices coincide or are antipodal.
    DegenerateEdge(usize),
    /// A vertex lies outside the half-space of a non-adjacent edge: the
    /// polygon is non-convex or wound clockwise.
    NotConvexCcw(usize),
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolygonError::TooFewVertices(n) => {
                write!(f, "polygon needs at least 3 vertices, got {n}")
            }
            PolygonError::DegenerateEdge(i) => write!(f, "degenerate edge at vertex {i}"),
            PolygonError::NotConvexCcw(i) => write!(
                f,
                "vertices are not convex/counter-clockwise (violation at edge {i})"
            ),
        }
    }
}

impl std::error::Error for PolygonError {}

impl From<PolygonError> for HtmError {
    fn from(_: PolygonError) -> HtmError {
        HtmError::InvalidId(0)
    }
}

impl ConvexPolygon {
    /// Builds a polygon from CCW unit-vector vertices.
    pub fn new(vertices: Vec<Vec3>) -> Result<ConvexPolygon, PolygonError> {
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices(vertices.len()));
        }
        let n = vertices.len();
        let mut normals = Vec::with_capacity(n);
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            let normal = a
                .cross(b)
                .normalized()
                .ok_or(PolygonError::DegenerateEdge(i))?;
            normals.push(normal);
        }
        // Convex + CCW ⇔ every vertex is inside (or on) every edge's
        // half-space.
        for (i, normal) in normals.iter().enumerate() {
            for (j, v) in vertices.iter().enumerate() {
                if v.dot(*normal) < -1e-12 {
                    let _ = j;
                    return Err(PolygonError::NotConvexCcw(i));
                }
            }
        }
        Ok(ConvexPolygon { vertices, normals })
    }

    /// Builds a polygon from `(ra, dec)` degree pairs, CCW on the sky.
    pub fn from_radec_deg(points: &[(f64, f64)]) -> Result<ConvexPolygon, PolygonError> {
        ConvexPolygon::new(
            points
                .iter()
                .map(|&(ra, dec)| SkyPoint::from_radec_deg(ra, dec).to_vec3())
                .collect(),
        )
    }

    /// The polygon's vertices, CCW.
    pub fn vertices(&self) -> &[Vec3] {
        &self.vertices
    }

    /// Outward unit normals of the edge great circles; `p` is inside iff
    /// `p·n ≥ 0` for every normal.
    pub fn edge_normals(&self) -> &[Vec3] {
        &self.normals
    }

    /// Whether unit vector `p` is inside (boundary inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        self.normals.iter().all(|n| p.dot(*n) >= -1e-15)
    }

    /// The (renormalized) centroid of the vertices — inside the polygon
    /// by convexity.
    pub fn centroid(&self) -> Vec3 {
        self.vertices
            .iter()
            .fold(Vec3::ZERO, |acc, v| acc.add(*v))
            .unit()
    }

    /// A bounding cap: centered at the centroid, reaching the farthest
    /// vertex. Every point of the polygon lies within it (the polygon is
    /// the convex hull of its vertices on the sphere, and the cap is
    /// geodesically convex and contains all vertices).
    pub fn bounding_cap(&self) -> (Vec3, f64) {
        let c = self.centroid();
        let radius = self
            .vertices
            .iter()
            .map(|v| c.angle_to(*v))
            .fold(0.0, f64::max);
        (c, radius)
    }

    /// Whether the great-circle arc `a→b` (short arc) crosses any polygon
    /// edge.
    pub fn edge_crosses(&self, a: Vec3, b: Vec3) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let c = self.vertices[i];
            let d = self.vertices[(i + 1) % n];
            if arcs_intersect(a, b, c, d) {
                return true;
            }
        }
        false
    }
}

/// Whether the short great-circle arcs AB and CD intersect.
pub fn arcs_intersect(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> bool {
    let n1 = match a.cross(b).normalized() {
        Some(v) => v,
        None => return false,
    };
    let n2 = match c.cross(d).normalized() {
        Some(v) => v,
        None => return false,
    };
    let t = match n1.cross(n2).normalized() {
        Some(v) => v,
        // Same great circle: treat as intersecting if any endpoint of one
        // arc lies on the other arc.
        None => {
            return on_arc(a, b, n1, c)
                || on_arc(a, b, n1, d)
                || on_arc(c, d, n2, a)
                || on_arc(c, d, n2, b)
        }
    };
    // The two candidate intersection points are t and -t.
    for candidate in [t, t.scale(-1.0)] {
        if on_arc(a, b, n1, candidate) && on_arc(c, d, n2, candidate) {
            return true;
        }
    }
    false
}

/// Whether point `p` (on the great circle with normal `n = a×b`) lies on
/// the short arc between `a` and `b`.
fn on_arc(a: Vec3, b: Vec3, n: Vec3, p: Vec3) -> bool {
    a.cross(p).dot(n) >= -1e-12 && p.cross(b).dot(n) >= -1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> ConvexPolygon {
        // A 2°×2° square around (185, 0), CCW on the sky.
        ConvexPolygon::from_radec_deg(&[(184.0, -1.0), (186.0, -1.0), (186.0, 1.0), (184.0, 1.0)])
            .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            ConvexPolygon::from_radec_deg(&[(0.0, 0.0), (1.0, 0.0)]),
            Err(PolygonError::TooFewVertices(2))
        ));
        // Clockwise winding rejected.
        assert!(matches!(
            ConvexPolygon::from_radec_deg(&[
                (184.0, 1.0),
                (186.0, 1.0),
                (186.0, -1.0),
                (184.0, -1.0)
            ]),
            Err(PolygonError::NotConvexCcw(_))
        ));
        // Repeated vertex → degenerate edge.
        assert!(matches!(
            ConvexPolygon::from_radec_deg(&[(0.0, 0.0), (0.0, 0.0), (1.0, 1.0)]),
            Err(PolygonError::DegenerateEdge(0))
        ));
        // Non-convex (a dart shape).
        assert!(ConvexPolygon::from_radec_deg(&[
            (0.0, 0.0),
            (2.0, 0.0),
            (1.0, 0.2), // pokes inward
            (1.0, 2.0),
        ])
        .is_err());
    }

    #[test]
    fn containment() {
        let p = square();
        assert!(p.contains(SkyPoint::from_radec_deg(185.0, 0.0).to_vec3()));
        assert!(p.contains(SkyPoint::from_radec_deg(184.1, 0.9).to_vec3()));
        assert!(!p.contains(SkyPoint::from_radec_deg(183.0, 0.0).to_vec3()));
        assert!(!p.contains(SkyPoint::from_radec_deg(185.0, 2.0).to_vec3()));
        // Vertices are on the boundary (inclusive).
        for v in p.vertices() {
            assert!(p.contains(*v));
        }
    }

    #[test]
    fn centroid_and_bounding_cap() {
        let p = square();
        let c = p.centroid();
        assert!(p.contains(c));
        let center = SkyPoint::from_vec3(c);
        assert!((center.ra_deg - 185.0).abs() < 0.01);
        assert!(center.dec_deg.abs() < 0.01);
        let (cap_center, radius) = p.bounding_cap();
        for v in p.vertices() {
            assert!(cap_center.angle_to(*v) <= radius + 1e-12);
        }
        // Sampled interior points are inside the cap too.
        for &(ra, dec) in &[(184.5, 0.5), (185.9, -0.9), (185.0, 0.0)] {
            let q = SkyPoint::from_radec_deg(ra, dec).to_vec3();
            assert!(p.contains(q));
            assert!(cap_center.angle_to(q) <= radius + 1e-12);
        }
    }

    #[test]
    fn arc_intersection_cases() {
        let a = SkyPoint::from_radec_deg(0.0, -1.0).to_vec3();
        let b = SkyPoint::from_radec_deg(0.0, 1.0).to_vec3();
        let c = SkyPoint::from_radec_deg(-1.0, 0.0).to_vec3();
        let d = SkyPoint::from_radec_deg(1.0, 0.0).to_vec3();
        assert!(arcs_intersect(a, b, c, d), "crossing arcs");
        // Parallel (non-crossing) arcs.
        let e = SkyPoint::from_radec_deg(2.0, -1.0).to_vec3();
        let f = SkyPoint::from_radec_deg(2.0, 1.0).to_vec3();
        assert!(!arcs_intersect(a, b, e, f));
        // Arcs whose great circles cross outside both segments.
        let g = SkyPoint::from_radec_deg(-5.0, 3.0).to_vec3();
        let h = SkyPoint::from_radec_deg(-3.0, 3.0).to_vec3();
        assert!(!arcs_intersect(a, b, g, h));
        // Shared endpoint counts as intersecting.
        assert!(arcs_intersect(a, b, b, d));
    }

    #[test]
    fn edge_crossing_detection() {
        let p = square();
        // An arc slicing through the left edge.
        let a = SkyPoint::from_radec_deg(183.5, 0.0).to_vec3();
        let b = SkyPoint::from_radec_deg(184.5, 0.0).to_vec3();
        assert!(p.edge_crosses(a, b));
        // An arc fully outside.
        let c = SkyPoint::from_radec_deg(180.0, 0.0).to_vec3();
        let d = SkyPoint::from_radec_deg(181.0, 0.0).to_vec3();
        assert!(!p.edge_crosses(c, d));
        // An arc fully inside.
        let e = SkyPoint::from_radec_deg(184.7, 0.0).to_vec3();
        let f = SkyPoint::from_radec_deg(185.3, 0.0).to_vec3();
        assert!(!p.edge_crosses(e, f));
    }

    #[test]
    fn triangle_near_pole() {
        let p =
            ConvexPolygon::from_radec_deg(&[(0.0, 85.0), (120.0, 85.0), (240.0, 85.0)]).unwrap();
        assert!(p.contains(SkyPoint::from_radec_deg(60.0, 89.0).to_vec3()));
        assert!(p.contains(SkyPoint::from_radec_deg(0.0, 90.0).to_vec3()));
        assert!(!p.contains(SkyPoint::from_radec_deg(0.0, 80.0).to_vec3()));
    }
}
