//! Trixels: the spherical triangles of the HTM subdivision, and their
//! bit-packed integer IDs.
//!
//! The sphere is first split into eight root trixels — four southern
//! (`S0..S3`, IDs 8–11) and four northern (`N0..N3`, IDs 12–15) — using the
//! six axis-aligned unit vectors as corners. Each trixel splits into four
//! children by connecting the (renormalized) midpoints of its edges; child
//! `k` of trixel `t` has ID `4·t + k`. An ID therefore encodes both depth
//! and position: depth-`d` IDs occupy `[8·4^d, 16·4^d)`.

use crate::geom::Vec3;
use crate::HtmError;

/// Maximum supported subdivision depth. Depth 31 would overflow the 64-bit
/// ID space (`16·4^d ≤ 2^64` requires `d ≤ 29`); we stop a little earlier at
/// the precision limit of f64 trixel corners.
pub const MAX_DEPTH: u8 = 24;

/// A bit-packed HTM trixel identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HtmId(u64);

impl HtmId {
    /// Wraps a raw id, validating that it encodes a trixel: some depth `d`
    /// must satisfy `8·4^d ≤ id < 16·4^d`.
    pub fn new(raw: u64) -> Result<HtmId, HtmError> {
        let id = HtmId(raw);
        if raw < 8 {
            return Err(HtmError::InvalidId(raw));
        }
        let d = id.depth();
        if d > MAX_DEPTH || raw >> (2 * d as u32) < 8 || raw >> (2 * d as u32) >= 16 {
            return Err(HtmError::InvalidId(raw));
        }
        Ok(id)
    }

    /// The ID of root trixel `index` (0–7 = S0..S3, N0..N3).
    pub fn root(index: u8) -> HtmId {
        assert!(index < 8, "root index must be 0..8");
        HtmId(8 + index as u64)
    }

    /// The packed integer value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Subdivision depth of this trixel (roots are depth 0).
    pub fn depth(self) -> u8 {
        // A depth-d id has its top set bit at position 3 + 2d (since
        // 8·4^d = 2^(3+2d) and id < 2^(4+2d)).
        let top = 63 - self.0.leading_zeros();
        ((top - 3) / 2) as u8
    }

    /// The `k`-th child (0–3).
    pub fn child(self, k: u8) -> HtmId {
        debug_assert!(k < 4);
        HtmId(self.0 * 4 + k as u64)
    }

    /// The parent trixel, or `None` for roots.
    pub fn parent(self) -> Option<HtmId> {
        if self.0 < 32 {
            None
        } else {
            Some(HtmId(self.0 / 4))
        }
    }

    /// Which child of its parent this trixel is (0–3); roots return their
    /// root index.
    pub fn child_index(self) -> u8 {
        if self.0 < 16 {
            (self.0 - 8) as u8
        } else {
            (self.0 % 4) as u8
        }
    }

    /// The range of depth-`target` descendant IDs `[lo, hi]` (inclusive) of
    /// this trixel. `target` must be ≥ this trixel's depth.
    pub fn descendants_at(self, target: u8) -> (u64, u64) {
        let d = self.depth();
        assert!(target >= d, "target depth {target} below trixel depth {d}");
        let shift = 2 * (target - d) as u32;
        let lo = self.0 << shift;
        let hi = lo + ((1u64 << shift) - 1);
        (lo, hi)
    }

    /// The human-readable HTM name, e.g. `"N32"` or `"S0123"`: root letter
    /// plus the child indices along the path.
    pub fn name(self) -> String {
        let d = self.depth() as usize;
        let mut digits = Vec::with_capacity(d + 1);
        let mut v = self.0;
        for _ in 0..d {
            digits.push((v % 4) as u8);
            v /= 4;
        }
        // v is now the root id 8..16.
        let (letter, root_digit) = if v < 12 { ('S', v - 8) } else { ('N', v - 12) };
        let mut s = String::with_capacity(d + 2);
        s.push(letter);
        s.push(char::from_digit(root_digit as u32, 10).unwrap());
        for &dg in digits.iter().rev() {
            s.push(char::from_digit(dg as u32, 10).unwrap());
        }
        s
    }

    /// Parses an HTM name produced by [`HtmId::name`].
    pub fn parse_name(name: &str) -> Result<HtmId, HtmError> {
        let bytes = name.as_bytes();
        if bytes.len() < 2 {
            return Err(HtmError::InvalidId(0));
        }
        let base = match bytes[0] {
            b'S' | b's' => 8u64,
            b'N' | b'n' => 12u64,
            _ => return Err(HtmError::InvalidId(0)),
        };
        let mut v = match bytes[1] {
            c @ b'0'..=b'3' => base + (c - b'0') as u64,
            _ => return Err(HtmError::InvalidId(0)),
        };
        for &c in &bytes[2..] {
            match c {
                b'0'..=b'3' => v = v * 4 + (c - b'0') as u64,
                _ => return Err(HtmError::InvalidId(v)),
            }
        }
        HtmId::new(v)
    }
}

impl std::fmt::Display for HtmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A trixel: a spherical triangle with its corner unit vectors and ID.
///
/// Corners are ordered counter-clockwise when seen from outside the sphere,
/// which makes the containment half-space tests uniform.
#[derive(Debug, Clone, Copy)]
pub struct Trixel {
    /// The trixel's HTM ID.
    pub id: HtmId,
    /// First corner (unit vector).
    pub v0: Vec3,
    /// Second corner.
    pub v1: Vec3,
    /// Third corner.
    pub v2: Vec3,
}

/// The six corner vectors of the root octahedron.
const V: [Vec3; 6] = [
    Vec3::new(0.0, 0.0, 1.0),  // v0: north pole
    Vec3::new(1.0, 0.0, 0.0),  // v1
    Vec3::new(0.0, 1.0, 0.0),  // v2
    Vec3::new(-1.0, 0.0, 0.0), // v3
    Vec3::new(0.0, -1.0, 0.0), // v4
    Vec3::new(0.0, 0.0, -1.0), // v5: south pole
];

/// Corner index triples for the 8 root trixels S0..S3, N0..N3, in the
/// canonical HTM ordering (Kunszt, Szalay & Thakar).
const ROOT_CORNERS: [(usize, usize, usize); 8] = [
    (1, 5, 2), // S0
    (2, 5, 3), // S1
    (3, 5, 4), // S2
    (4, 5, 1), // S3
    (1, 0, 4), // N0
    (4, 0, 3), // N1
    (3, 0, 2), // N2
    (2, 0, 1), // N3
];

impl Trixel {
    /// The root trixel with index 0–7.
    pub fn root(index: u8) -> Trixel {
        let (a, b, c) = ROOT_CORNERS[index as usize];
        Trixel {
            id: HtmId::root(index),
            v0: V[a],
            v1: V[b],
            v2: V[c],
        }
    }

    /// All eight root trixels.
    pub fn roots() -> [Trixel; 8] {
        std::array::from_fn(|i| Trixel::root(i as u8))
    }

    /// Reconstructs the trixel for an arbitrary valid ID by walking down
    /// from its root.
    pub fn from_id(id: HtmId) -> Trixel {
        let depth = id.depth();
        let mut path = Vec::with_capacity(depth as usize);
        let mut v = id.raw();
        for _ in 0..depth {
            path.push((v % 4) as u8);
            v /= 4;
        }
        let mut t = Trixel::root((v - 8) as u8);
        for &k in path.iter().rev() {
            t = t.child(k);
        }
        t
    }

    /// The `k`-th child trixel. Children follow the canonical scheme: with
    /// edge midpoints `w0 = mid(v1,v2)`, `w1 = mid(v0,v2)`, `w2 = mid(v0,v1)`:
    ///
    /// * child 0 = `(v0, w2, w1)`
    /// * child 1 = `(v1, w0, w2)`
    /// * child 2 = `(v2, w1, w0)`
    /// * child 3 = `(w0, w1, w2)` (the center triangle)
    pub fn child(&self, k: u8) -> Trixel {
        let w0 = self.v1.add(self.v2).unit();
        let w1 = self.v0.add(self.v2).unit();
        let w2 = self.v0.add(self.v1).unit();
        let (v0, v1, v2) = match k {
            0 => (self.v0, w2, w1),
            1 => (self.v1, w0, w2),
            2 => (self.v2, w1, w0),
            3 => (w0, w1, w2),
            _ => panic!("child index must be 0..4"),
        };
        Trixel {
            id: self.id.child(k),
            v0,
            v1,
            v2,
        }
    }

    /// All four children.
    pub fn children(&self) -> [Trixel; 4] {
        // Compute midpoints once rather than per-child.
        let w0 = self.v1.add(self.v2).unit();
        let w1 = self.v0.add(self.v2).unit();
        let w2 = self.v0.add(self.v1).unit();
        [
            Trixel {
                id: self.id.child(0),
                v0: self.v0,
                v1: w2,
                v2: w1,
            },
            Trixel {
                id: self.id.child(1),
                v0: self.v1,
                v1: w0,
                v2: w2,
            },
            Trixel {
                id: self.id.child(2),
                v0: self.v2,
                v1: w1,
                v2: w0,
            },
            Trixel {
                id: self.id.child(3),
                v0: w0,
                v1: w1,
                v2: w2,
            },
        ]
    }

    /// Whether unit vector `p` lies inside (or on the boundary of) this
    /// trixel: all three edge half-space tests `(vi × vj)·p ≥ 0`.
    pub fn contains(&self, p: Vec3) -> bool {
        const TOL: f64 = -1e-12;
        self.v0.cross(self.v1).dot(p) >= TOL
            && self.v1.cross(self.v2).dot(p) >= TOL
            && self.v2.cross(self.v0).dot(p) >= TOL
    }

    /// The (renormalized) centroid of the corner vectors.
    pub fn center(&self) -> Vec3 {
        self.v0.add(self.v1).add(self.v2).unit()
    }

    /// An upper bound on the angular radius: the largest corner-to-center
    /// angle, in radians.
    pub fn bounding_radius(&self) -> f64 {
        let c = self.center();
        c.angle_to(self.v0)
            .max(c.angle_to(self.v1))
            .max(c.angle_to(self.v2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::SkyPoint;

    #[test]
    fn root_ids_and_depths() {
        for i in 0..8u8 {
            let t = Trixel::root(i);
            assert_eq!(t.id.raw(), 8 + i as u64);
            assert_eq!(t.id.depth(), 0);
            assert_eq!(t.id.parent(), None);
        }
    }

    #[test]
    fn id_depth_progression() {
        let id = HtmId::root(3); // S3 = 11
        assert_eq!(id.depth(), 0);
        let c = id.child(2);
        assert_eq!(c.raw(), 11 * 4 + 2);
        assert_eq!(c.depth(), 1);
        assert_eq!(c.parent(), Some(id));
        assert_eq!(c.child_index(), 2);
        let g = c.child(0);
        assert_eq!(g.depth(), 2);
        assert_eq!(g.parent(), Some(c));
    }

    #[test]
    fn id_validation() {
        assert!(HtmId::new(0).is_err());
        assert!(HtmId::new(7).is_err());
        for raw in 8..16 {
            assert!(HtmId::new(raw).is_ok());
        }
        for raw in 32..64 {
            assert!(HtmId::new(raw).is_ok(), "{raw}");
        }
        // Depth-1 ids run 32..64; 16..32 are not valid trixels.
        for raw in 16..32 {
            assert!(HtmId::new(raw).is_err(), "{raw}");
        }
    }

    #[test]
    fn descendants_range() {
        let id = HtmId::root(0); // 8
        let (lo, hi) = id.descendants_at(1);
        assert_eq!((lo, hi), (32, 35));
        let (lo, hi) = id.descendants_at(2);
        assert_eq!((lo, hi), (128, 143));
    }

    #[test]
    fn name_roundtrip() {
        for raw in [8u64, 11, 15, 33, 47, 130, 10_000_000] {
            if let Ok(id) = HtmId::new(raw) {
                let name = id.name();
                let back = HtmId::parse_name(&name).unwrap();
                assert_eq!(back, id, "name {name}");
            }
        }
        assert_eq!(HtmId::root(0).name(), "S0");
        assert_eq!(HtmId::root(4).name(), "N0");
        assert_eq!(HtmId::root(7).name(), "N3");
        assert_eq!(HtmId::root(7).child(2).name(), "N32");
    }

    #[test]
    fn parse_name_rejects_garbage() {
        assert!(HtmId::parse_name("").is_err());
        assert!(HtmId::parse_name("X0").is_err());
        assert!(HtmId::parse_name("N4").is_err());
        assert!(HtmId::parse_name("N05x").is_err());
    }

    #[test]
    fn roots_cover_sphere() {
        // A grid of points must each fall in exactly one root (modulo
        // boundary ties, where they may fall in more than one).
        let roots = Trixel::roots();
        for dec10 in -89..=89 {
            for ra10 in 0..36 {
                let p =
                    SkyPoint::from_radec_deg(ra10 as f64 * 10.0 + 0.123, dec10 as f64).to_vec3();
                let n = roots.iter().filter(|t| t.contains(p)).count();
                assert!(n >= 1, "point not covered at dec {dec10} ra {ra10}");
            }
        }
    }

    #[test]
    fn children_partition_parent() {
        let t = Trixel::root(5);
        let kids = t.children();
        // Sample points inside the parent must be inside >= 1 child.
        let c = t.center();
        for (i, corner) in [t.v0, t.v1, t.v2].iter().enumerate() {
            // Point partway between center and each corner.
            let p = c.add(corner.sub(c).scale(0.7)).unit();
            assert!(t.contains(p), "corner blend {i} escaped parent");
            assert!(
                kids.iter().any(|k| k.contains(p)),
                "corner blend {i} not in any child"
            );
        }
        // Child centers are inside the parent.
        for k in &kids {
            assert!(t.contains(k.center()));
        }
    }

    #[test]
    fn children_have_ccw_orientation() {
        // Orientation invariant: corner triple product positive.
        let mut stack = Trixel::roots().to_vec();
        for _ in 0..3 {
            let mut next = Vec::new();
            for t in &stack {
                let triple = t.v0.cross(t.v1).dot(t.v2);
                assert!(triple > 0.0, "trixel {} not CCW", t.id);
                next.extend_from_slice(&t.children());
            }
            stack = next;
        }
    }

    #[test]
    fn from_id_matches_walk() {
        let t = Trixel::root(6).child(1).child(3).child(2);
        let r = Trixel::from_id(t.id);
        assert_eq!(r.id, t.id);
        assert!((r.v0.sub(t.v0)).norm() < 1e-15);
        assert!((r.v1.sub(t.v1)).norm() < 1e-15);
        assert!((r.v2.sub(t.v2)).norm() < 1e-15);
    }

    #[test]
    fn bounding_radius_shrinks_with_depth() {
        let t = Trixel::root(2);
        let r0 = t.bounding_radius();
        let r1 = t.child(3).bounding_radius();
        let r2 = t.child(3).child(3).bounding_radius();
        assert!(r0 > r1 && r1 > r2);
    }
}
