//! Spherical geometry primitives: 3-vectors on the unit sphere, sky
//! coordinates (right ascension / declination), and spherical caps.
//!
//! All angles are radians unless a function name says otherwise. Sky
//! positions follow the astronomical convention: right ascension `ra` in
//! `[0, 360)` degrees measured eastward along the celestial equator,
//! declination `dec` in `[-90, +90]` degrees measured from the equator.

/// A 3-dimensional vector. Positions on the sky are unit vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// A vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns this vector scaled to unit length. Returns `None` for the
    /// zero vector (or anything too close to it to normalize stably).
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self.scale(1.0 / n))
        }
    }

    /// Like [`Vec3::normalized`] but panics on the zero vector; for use on
    /// vectors known to be non-zero (e.g. midpoints of non-antipodal unit
    /// vectors).
    pub fn unit(self) -> Vec3 {
        self.normalized().expect("cannot normalize zero vector")
    }

    /// Scalar multiplication.
    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Vector addition.
    #[allow(clippy::should_implement_trait)] // also provided via std::ops::Add
    pub fn add(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x + other.x, self.y + other.y, self.z + other.z)
    }

    /// Vector subtraction.
    #[allow(clippy::should_implement_trait)] // also provided via std::ops::Sub
    pub fn sub(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x - other.x, self.y - other.y, self.z - other.z)
    }

    /// Angular separation from `other` in radians, numerically stable for
    /// both tiny and near-antipodal separations (uses atan2 of cross/dot).
    pub fn angle_to(self, other: Vec3) -> f64 {
        let cross = self.cross(other).norm();
        let dot = self.dot(other);
        cross.atan2(dot)
    }

    /// Chord (straight-line) distance to `other`; both must be unit vectors.
    /// Related to the angular separation θ by `chord = 2·sin(θ/2)`.
    pub fn chord_to(self, other: Vec3) -> f64 {
        self.sub(other).norm()
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::add(self, rhs)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::sub(self, rhs)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        self.scale(rhs)
    }
}

/// A position on the celestial sphere in equatorial coordinates (degrees).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkyPoint {
    /// Right ascension in degrees, normalized to `[0, 360)`.
    pub ra_deg: f64,
    /// Declination in degrees in `[-90, +90]`.
    pub dec_deg: f64,
}

impl SkyPoint {
    /// Builds a sky point, normalizing RA into `[0, 360)` and clamping
    /// declination to `[-90, 90]`.
    pub fn from_radec_deg(ra_deg: f64, dec_deg: f64) -> Self {
        let mut ra = ra_deg % 360.0;
        if ra < 0.0 {
            ra += 360.0;
        }
        SkyPoint {
            ra_deg: ra,
            dec_deg: dec_deg.clamp(-90.0, 90.0),
        }
    }

    /// Converts to a unit vector: `x = cos(dec)·cos(ra)`,
    /// `y = cos(dec)·sin(ra)`, `z = sin(dec)`.
    pub fn to_vec3(self) -> Vec3 {
        let ra = self.ra_deg.to_radians();
        let dec = self.dec_deg.to_radians();
        let cd = dec.cos();
        Vec3::new(cd * ra.cos(), cd * ra.sin(), dec.sin())
    }

    /// Converts a unit vector back to sky coordinates.
    pub fn from_vec3(v: Vec3) -> Self {
        let dec = v.z.clamp(-1.0, 1.0).asin().to_degrees();
        let ra = v.y.atan2(v.x).to_degrees();
        SkyPoint::from_radec_deg(ra, dec)
    }

    /// Angular separation from `other` in radians.
    pub fn separation(self, other: SkyPoint) -> f64 {
        self.to_vec3().angle_to(other.to_vec3())
    }

    /// Angular separation from `other` in arcseconds.
    pub fn separation_arcsec(self, other: SkyPoint) -> f64 {
        self.separation(other).to_degrees() * 3600.0
    }
}

/// Angular distance between two unit vectors, in radians.
pub fn angular_distance(a: Vec3, b: Vec3) -> f64 {
    a.angle_to(b)
}

/// A spherical cap: the set of unit vectors `p` with `p·center ≥ cos(radius)`.
///
/// This is the region denoted by the paper's `AREA(ra, dec, radius)` clause.
#[derive(Debug, Clone, Copy)]
pub struct Cap {
    center: Vec3,
    /// Cosine of the angular radius; larger means smaller cap.
    cos_radius: f64,
    radius: f64,
}

impl Cap {
    /// A cap centered on unit vector `center` with angular radius
    /// `radius_rad` (clamped to `[0, π]`).
    pub fn new(center: Vec3, radius_rad: f64) -> Self {
        let radius = radius_rad.clamp(0.0, std::f64::consts::PI);
        Cap {
            center,
            cos_radius: radius.cos(),
            radius,
        }
    }

    /// A cap from sky coordinates and a radius in arcminutes (the unit the
    /// deployed SkyQuery used for its `AREA` clause).
    pub fn from_area_clause(ra_deg: f64, dec_deg: f64, radius_arcmin: f64) -> Self {
        let center = SkyPoint::from_radec_deg(ra_deg, dec_deg).to_vec3();
        Cap::new(center, (radius_arcmin / 60.0).to_radians())
    }

    /// The cap's center (a unit vector).
    pub fn center(&self) -> Vec3 {
        self.center
    }

    /// Angular radius in radians.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Cosine of the angular radius (the containment threshold).
    pub fn cos_radius(&self) -> f64 {
        self.cos_radius
    }

    /// Whether unit vector `p` lies inside the cap (boundary inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        self.center.dot(p) >= self.cos_radius - 1e-15
    }

    /// Whether the great-circle arc from `a` to `b` (the short arc) comes
    /// within the cap, assuming neither endpoint is inside. Used by the
    /// cover algorithm to detect caps that clip a trixel edge.
    pub fn intersects_arc(&self, a: Vec3, b: Vec3) -> bool {
        // Normal of the great circle through a and b.
        let n = match a.cross(b).normalized() {
            Some(n) => n,
            // a and b parallel/antipodal: degenerate arc; endpoint tests
            // already covered it.
            None => return false,
        };
        // The point on the great circle closest to the cap center is the
        // projection of the center onto the circle's plane, renormalized.
        let proj = self.center.sub(n.scale(self.center.dot(n)));
        let pm = match proj.normalized() {
            Some(p) => p,
            // Cap center is a pole of the great circle: every point of the
            // circle is equidistant; endpoint distance equals arc distance,
            // and endpoints were outside, so no intersection.
            None => return false,
        };
        if !self.contains(pm) {
            return false;
        }
        // pm is inside the cap; it only matters if it lies on the short arc
        // between a and b.
        on_short_arc(a, b, n, pm)
    }
}

/// Whether unit vector `p`, known to lie on the great circle with normal
/// `n = normalize(a × b)`, lies on the short arc between `a` and `b`.
fn on_short_arc(a: Vec3, b: Vec3, n: Vec3, p: Vec3) -> bool {
    a.cross(p).dot(n) >= -1e-15 && p.cross(b).dot(n) >= -1e-15
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const EPS: f64 = 1e-12;

    #[test]
    fn vec3_dot_cross_basics() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert!((x.dot(y)).abs() < EPS);
        assert!((x.cross(y).sub(z)).norm() < EPS);
        assert!((y.cross(z).sub(x)).norm() < EPS);
        assert!((z.cross(x).sub(y)).norm() < EPS);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec3::ZERO.normalized().is_none());
        assert!(Vec3::new(3.0, 4.0, 0.0).normalized().is_some());
        let u = Vec3::new(3.0, 4.0, 0.0).unit();
        assert!((u.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn angle_to_is_stable_for_tiny_angles() {
        let a = SkyPoint::from_radec_deg(10.0, 20.0).to_vec3();
        // 0.1 arcsecond away.
        let b = SkyPoint::from_radec_deg(10.0, 20.0 + 0.1 / 3600.0).to_vec3();
        let theta = a.angle_to(b).to_degrees() * 3600.0;
        assert!((theta - 0.1).abs() < 1e-6, "theta = {theta}");
    }

    #[test]
    fn angle_to_antipodal() {
        let a = Vec3::new(0.0, 0.0, 1.0);
        let b = Vec3::new(0.0, 0.0, -1.0);
        assert!((a.angle_to(b) - PI).abs() < 1e-9);
    }

    #[test]
    fn skypoint_roundtrip() {
        for &(ra, dec) in &[
            (0.0, 0.0),
            (185.0, -0.5),
            (359.9, 89.0),
            (12.25, -45.5),
            (270.0, 0.0),
        ] {
            let p = SkyPoint::from_radec_deg(ra, dec);
            let q = SkyPoint::from_vec3(p.to_vec3());
            assert!(
                (p.ra_deg - q.ra_deg).abs() < 1e-9 && (p.dec_deg - q.dec_deg).abs() < 1e-9,
                "{p:?} vs {q:?}"
            );
        }
    }

    #[test]
    fn skypoint_normalizes_ra() {
        let p = SkyPoint::from_radec_deg(-10.0, 0.0);
        assert!((p.ra_deg - 350.0).abs() < EPS);
        let p = SkyPoint::from_radec_deg(725.0, 0.0);
        assert!((p.ra_deg - 5.0).abs() < EPS);
    }

    #[test]
    fn cap_contains_center_and_boundary() {
        let c = SkyPoint::from_radec_deg(100.0, 30.0).to_vec3();
        let cap = Cap::new(c, 1.0_f64.to_radians());
        assert!(cap.contains(c));
        // A point 0.999 degrees away is inside, 1.001 outside.
        let inside = SkyPoint::from_radec_deg(100.0, 30.999).to_vec3();
        let outside = SkyPoint::from_radec_deg(100.0, 31.001).to_vec3();
        assert!(cap.contains(inside));
        assert!(!cap.contains(outside));
    }

    #[test]
    fn cap_from_area_clause_units_are_arcmin() {
        let cap = Cap::from_area_clause(185.0, -0.5, 60.0); // 1 degree
        assert!((cap.radius().to_degrees() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arc_intersection_detects_clipping_cap() {
        // Arc along the equator from ra=0 to ra=10; cap centered at
        // (5, 0.5) with radius 1 degree dips onto the arc.
        let a = SkyPoint::from_radec_deg(0.0, 0.0).to_vec3();
        let b = SkyPoint::from_radec_deg(10.0, 0.0).to_vec3();
        let cap = Cap::from_area_clause(5.0, 0.5, 60.0);
        assert!(!cap.contains(a) && !cap.contains(b));
        assert!(cap.intersects_arc(a, b));

        // Same cap but further north: no intersection.
        let far = Cap::from_area_clause(5.0, 2.0, 60.0);
        assert!(!far.intersects_arc(a, b));

        // Cap near the arc's extension but beyond the endpoint: the closest
        // point of the great circle is outside the short arc.
        let beyond = Cap::from_area_clause(350.0, 0.0, 60.0);
        assert!(!beyond.intersects_arc(a, b));
    }

    #[test]
    fn separation_arcsec() {
        let p = SkyPoint::from_radec_deg(180.0, 0.0);
        let q = SkyPoint::from_radec_deg(180.0, 1.0 / 3600.0);
        assert!((p.separation_arcsec(q) - 1.0).abs() < 1e-6);
    }
}
