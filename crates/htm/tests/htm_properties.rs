//! Property-based tests for the HTM substrate: point location, ID encoding,
//! and cover soundness over randomized skies.

use proptest::prelude::*;
use skyquery_htm::{Cap, ConvexPolygon, Cover, HtmId, Mesh, SkyPoint};

/// Uniform-ish sky point strategy (uniform in ra, sin(dec)).
fn sky_point() -> impl Strategy<Value = SkyPoint> {
    (0.0f64..360.0, -1.0f64..1.0).prop_map(|(ra, sindec)| {
        SkyPoint::from_radec_deg(ra, sindec.clamp(-1.0, 1.0).asin().to_degrees())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn locate_result_contains_point(p in sky_point(), depth in 0u8..12) {
        let mesh = Mesh::new(depth);
        let id = mesh.locate(p);
        prop_assert_eq!(id.depth(), depth);
        prop_assert!(mesh.trixel(id).contains(p.to_vec3()));
    }

    #[test]
    fn locate_id_within_depth_bounds(p in sky_point(), depth in 0u8..12) {
        let mesh = Mesh::new(depth);
        let id = mesh.locate(p).raw();
        prop_assert!(id >= mesh.min_id());
        prop_assert!(id < mesh.max_id_exclusive());
    }

    #[test]
    fn id_name_roundtrip(p in sky_point(), depth in 0u8..14) {
        let mesh = Mesh::new(depth);
        let id = mesh.locate(p);
        let name = id.name();
        prop_assert_eq!(HtmId::parse_name(&name).unwrap(), id);
    }

    #[test]
    fn parent_child_consistency(p in sky_point(), depth in 1u8..12) {
        let mesh = Mesh::new(depth);
        let id = mesh.locate(p);
        let parent = id.parent().unwrap();
        prop_assert_eq!(parent.child(id.child_index()), id);
        // The parent trixel (coarser) must also contain the point.
        let coarse = Mesh::new(depth - 1);
        prop_assert_eq!(coarse.locate(p), parent);
    }

    #[test]
    fn cover_soundness_random_caps(
        center in sky_point(),
        radius_deg in 0.01f64..20.0,
        offset_frac in 0.0f64..0.999,
        phi in 0.0f64..std::f64::consts::TAU,
        depth in 3u8..9,
    ) {
        let mesh = Mesh::new(depth);
        let cap = Cap::new(center.to_vec3(), radius_deg.to_radians());
        let cover = Cover::cap(&mesh, &cap);

        // A random point inside the cap must land in the cover.
        let cv = center.to_vec3();
        let axis = if cv.z.abs() < 0.9 {
            skyquery_htm::Vec3::new(0.0, 0.0, 1.0)
        } else {
            skyquery_htm::Vec3::new(1.0, 0.0, 0.0)
        };
        let u = cv.cross(axis).unit();
        let w = cv.cross(u).unit();
        let r = radius_deg.to_radians() * offset_frac;
        let p = cv
            .scale(r.cos())
            .add(u.scale(r.sin() * phi.cos()))
            .add(w.scale(r.sin() * phi.sin()))
            .unit();
        prop_assert!(cap.contains(p));
        let id = mesh.locate_vec(p).raw();
        prop_assert!(cover.classify_id(id).is_some(),
            "point inside cap not covered: id {}", id);
    }

    #[test]
    fn full_ranges_are_precise(
        center in sky_point(),
        radius_deg in 0.5f64..10.0,
        depth in 4u8..8,
    ) {
        let mesh = Mesh::new(depth);
        let cap = Cap::new(center.to_vec3(), radius_deg.to_radians());
        let cover = Cover::cap(&mesh, &cap);
        for range in cover.full_ranges() {
            // Sample the extremes of each full range: all corners inside.
            for raw in [range.lo, range.hi] {
                let t = mesh.trixel(HtmId::new(raw).unwrap());
                prop_assert!(cap.contains(t.v0));
                prop_assert!(cap.contains(t.v1));
                prop_assert!(cap.contains(t.v2));
            }
        }
    }

    #[test]
    fn cover_ranges_are_normalized(
        center in sky_point(),
        radius_deg in 0.1f64..15.0,
        depth in 3u8..8,
    ) {
        let mesh = Mesh::new(depth);
        let cover = Cover::circle(&mesh, center, radius_deg.to_radians());
        for ranges in [cover.full_ranges(), cover.partial_ranges()] {
            for pair in ranges.windows(2) {
                // Strictly ascending with a gap (otherwise they'd merge).
                prop_assert!(pair[0].hi + 1 < pair[1].lo);
            }
        }
    }

    #[test]
    fn polygon_cover_soundness(
        center in sky_point(),
        half_w in 0.05f64..3.0,
        half_h in 0.05f64..3.0,
        fx in -0.99f64..0.99,
        fy in -0.99f64..0.99,
        depth in 3u8..9,
    ) {
        // A lat/long rectangle around the center (kept away from poles by
        // clamping |dec| so the rectangle stays convex on the sphere).
        let dec0 = center.dec_deg.clamp(-60.0, 60.0);
        let ra0 = center.ra_deg;
        let poly = match ConvexPolygon::from_radec_deg(&[
            (ra0 - half_w, dec0 - half_h),
            (ra0 + half_w, dec0 - half_h),
            (ra0 + half_w, dec0 + half_h),
            (ra0 - half_w, dec0 + half_h),
        ]) {
            Ok(p) => p,
            // Extreme aspect ratios near the dec clamp can go non-convex
            // on the sphere; those are rejected constructions, not cover
            // bugs.
            Err(_) => return Ok(()),
        };
        let mesh = Mesh::new(depth);
        let cover = Cover::polygon(&mesh, &poly);
        // A random interior point must land in the cover.
        let p = SkyPoint::from_radec_deg(ra0 + fx * half_w * 0.98, dec0 + fy * half_h * 0.98);
        prop_assume!(poly.contains(p.to_vec3()));
        let id = mesh.locate(p).raw();
        prop_assert!(cover.classify_id(id).is_some(),
            "interior point not covered at depth {}", depth);
        // Full trixels must have all corners inside the polygon.
        for range in cover.full_ranges() {
            for raw in [range.lo, range.hi] {
                let t = mesh.trixel(HtmId::new(raw).unwrap());
                prop_assert!(poly.contains(t.v0));
                prop_assert!(poly.contains(t.v1));
                prop_assert!(poly.contains(t.v2));
            }
        }
    }

    #[test]
    fn separation_symmetry(a in sky_point(), b in sky_point()) {
        prop_assert!((a.separation(b) - b.separation(a)).abs() < 1e-12);
    }

    #[test]
    fn vec_roundtrip(p in sky_point()) {
        let q = SkyPoint::from_vec3(p.to_vec3());
        prop_assert!(p.separation(q).to_degrees() * 3600.0 < 1e-6);
    }
}
