//! The job client: a thin SOAP facade over the job service for web
//! front-ends and the REPL. Submit, poll, cancel, and fetch — fetch
//! transparently reassembles chunk-paginated results, so callers see one
//! [`ResultSet`] whether the service answered inline or with a manifest.

use skyquery_core::error::{FederationError, Result};
use skyquery_core::result::ResultSet;
use skyquery_core::{open_chunk_stream, send_rpc_with, RetryPolicy};
use skyquery_net::{SimNetwork, Url};
use skyquery_soap::{ChunkManifest, RpcCall, RpcResponse, SoapValue};
use skyquery_xml::VoTable;

use crate::job::{JobState, JobStatus, QuotaClass};

/// A tenant-side client of the job service.
pub struct JobClient {
    net: SimNetwork,
    host: String,
    service: Url,
    retry: RetryPolicy,
}

impl JobClient {
    /// A client named `host` (for transmission accounting) talking to the
    /// job service at `service`, with no retries.
    pub fn new(net: &SimNetwork, host: impl Into<String>, service: Url) -> JobClient {
        JobClient {
            net: net.clone(),
            host: host.into(),
            service,
            retry: RetryPolicy::none(),
        }
    }

    /// Sets the retry policy used on every wire call. Note that a
    /// [`FederationError::JobRejected`] refusal is a deterministic client
    /// fault the policy never retries.
    pub fn with_retry(mut self, retry: RetryPolicy) -> JobClient {
        self.retry = retry;
        self
    }

    fn call(&self, call: &RpcCall) -> Result<RpcResponse> {
        send_rpc_with(&self.net, &self.host, &self.service, call, self.retry)
    }

    /// Submits a query under `tenant` with default priority and class.
    /// Returns the job id.
    pub fn submit(&self, tenant: &str, sql: &str) -> Result<u64> {
        self.submit_with(tenant, sql, 0, QuotaClass::default(), None)
            .map(|(id, _)| id)
    }

    /// Submits a query with explicit priority, quota class, and optional
    /// idempotency reference. Returns `(job id, duplicate)` — `duplicate`
    /// is `true` when the service already held a job for the same
    /// `(tenant, client_ref)` pair and no new job was queued.
    pub fn submit_with(
        &self,
        tenant: &str,
        sql: &str,
        priority: i64,
        class: QuotaClass,
        client_ref: Option<&str>,
    ) -> Result<(u64, bool)> {
        let mut call = RpcCall::new("SubmitQuery")
            .param("tenant", SoapValue::Str(tenant.to_string()))
            .param("sql", SoapValue::Str(sql.to_string()))
            .param("priority", SoapValue::Int(priority))
            .param("class", SoapValue::Str(class.as_str().to_string()));
        if let Some(r) = client_ref {
            call = call.param("client_ref", SoapValue::Str(r.to_string()));
        }
        let resp = self.call(&call)?;
        let id = require_u64(&resp, "job")?;
        let duplicate = matches!(resp.get("duplicate"), Some(SoapValue::Bool(true)));
        Ok((id, duplicate))
    }

    /// Polls a job's life-cycle state.
    pub fn poll(&self, job: u64) -> Result<JobStatus> {
        let resp = self.call(&RpcCall::new("PollJob").param("job", SoapValue::Int(job as i64)))?;
        let state_str = require_str(&resp, "state")?;
        let state = JobState::parse(&state_str)
            .ok_or_else(|| FederationError::protocol(format!("unknown job state {state_str}")))?;
        Ok(JobStatus {
            id: job,
            tenant: require_str(&resp, "tenant")?,
            state,
            result_rows: resp
                .get("rows")
                .and_then(|v| v.as_i64())
                .map(|v| v as usize),
            degraded: resp
                .get("degraded")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            dropped_archives: decode_dropped(&resp),
            error: resp.get("error").and_then(|v| v.as_str()).map(String::from),
            wait_s: require_f64(&resp, "wait_s")?,
            run_s: require_f64(&resp, "run_s")?,
        })
    }

    /// Cancels a job. `true` when the cancellation transitioned the job;
    /// `false` when it was already terminal (its held resources are still
    /// freed).
    pub fn cancel(&self, job: u64) -> Result<bool> {
        let resp =
            self.call(&RpcCall::new("CancelJob").param("job", SoapValue::Int(job as i64)))?;
        Ok(matches!(resp.get("cancelled"), Some(SoapValue::Bool(true))))
    }

    /// Fetches a succeeded job's result set. An oversized result arrives
    /// as a chunk manifest; the client streams the `FetchChunk`
    /// continuations and reassembles the table before decoding, so the
    /// caller cannot tell the difference.
    pub fn fetch(&self, job: u64) -> Result<ResultSet> {
        let resp =
            self.call(&RpcCall::new("FetchResults").param("job", SoapValue::Int(job as i64)))?;
        // The degradation header rides the first reply on both delivery
        // shapes; stamp it onto whatever result set we decode.
        let degraded = resp
            .get("degraded")
            .and_then(|v| v.as_bool())
            .unwrap_or(false);
        let dropped = decode_dropped(&resp);
        let stamp = |mut rs: ResultSet| {
            rs.degraded = degraded;
            rs.dropped_archives = dropped.clone();
            rs
        };
        if let Some(v) = resp.get("result") {
            let table = v
                .as_table()
                .ok_or_else(|| FederationError::protocol("result must be a table"))?;
            return ResultSet::from_votable(table).map(stamp);
        }
        let manifest = match resp.get("manifest") {
            Some(SoapValue::Xml(e)) => ChunkManifest::from_element(e)?,
            _ => {
                return Err(FederationError::protocol(
                    "FetchResults answered neither result nor manifest",
                ))
            }
        };
        let mut stream =
            open_chunk_stream(&self.net, &self.host, &self.service, manifest, self.retry);
        let mut tables: Vec<VoTable> = Vec::new();
        while let Some(chunk) = stream.fetch_next()? {
            tables.push(chunk.table);
        }
        let table = VoTable::concat(tables)?;
        ResultSet::from_votable(&table).map(stamp)
    }
}

/// Decodes the comma-joined `dropped` response field; absent or empty
/// means nothing was dropped.
fn decode_dropped(resp: &RpcResponse) -> Vec<String> {
    match resp.get("dropped") {
        Some(SoapValue::Str(s)) if !s.is_empty() => s.split(',').map(str::to_string).collect(),
        _ => Vec::new(),
    }
}

fn require_str(resp: &RpcResponse, name: &str) -> Result<String> {
    Ok(resp
        .require(name)?
        .as_str()
        .ok_or_else(|| FederationError::protocol(format!("{name} must be a string")))?
        .to_string())
}

fn require_u64(resp: &RpcResponse, name: &str) -> Result<u64> {
    resp.require(name)?
        .as_i64()
        .filter(|v| *v >= 0)
        .map(|v| v as u64)
        .ok_or_else(|| FederationError::protocol(format!("{name} must be a non-negative integer")))
}

fn require_f64(resp: &RpcResponse, name: &str) -> Result<f64> {
    match resp.require(name)? {
        SoapValue::Float(v) => Ok(*v),
        SoapValue::Int(v) => Ok(*v as f64),
        _ => Err(FederationError::protocol(format!(
            "{name} must be a number"
        ))),
    }
}
