//! Multi-tenant asynchronous job service for the SkyQuery federation.
//!
//! The paper's Portal answers queries synchronously: a client submits SQL
//! and blocks while the daisy chain runs. Real federated cross-matches
//! run far too long for that — the production SkyQuery grew a batch
//! system where web clients *submit* a query, *poll* its state, and
//! *fetch* the finished VOTable later. This crate is that system for the
//! simulation:
//!
//! - [`JobService`] fronts a [`Portal`](skyquery_core::Portal) with four
//!   SOAP methods — `SubmitQuery`, `PollJob`, `CancelJob`,
//!   `FetchResults` — registered in the same
//!   [`ServiceMethod`](skyquery_core::service::ServiceMethod) registry
//!   that drives SkyNode dispatch and WSDL generation.
//! - Admission control refuses work beyond per-tenant and global queue
//!   bounds with a deterministic `JobRejected` client fault (never
//!   retried), and a start-time fair-queuing scheduler
//!   ([`FairScheduler`]) drains the queue into a bounded pool of chain
//!   executions, weighting tenants by [`QuotaClass`].
//! - Running jobs interleave: each scheduler quantum drives one
//!   checkpointed-chain step
//!   ([`CheckpointedWalk`](skyquery_core::portal::CheckpointedWalk)), so
//!   one tenant's long chain cannot monopolize the Portal.
//! - Finished results, terminal records, and paginated result transfers
//!   all live under [`LeaseTable`](skyquery_core::LeaseTable) TTLs swept
//!   by a janitor; cancellation releases checkpoints and transfers
//!   immediately rather than waiting for the TTL.
//! - [`JobClient`] is the tenant-side facade; it reassembles
//!   chunk-paginated results transparently.

pub mod admission;
pub mod client;
pub mod job;
pub mod service;

pub use admission::{FairScheduler, JobServiceConfig};
pub use client::JobClient;
pub use job::{JobState, JobStatus, QuotaClass};
pub use service::JobService;
