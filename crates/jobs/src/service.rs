//! The job service: an asynchronous, multi-tenant front to the Portal.
//!
//! The real SkyQuery grew a batch interface because federated
//! cross-matches run for minutes: a web client cannot hold a synchronous
//! SOAP call open that long. This service is that interface for the
//! simulation. `SubmitQuery` parks the query in a bounded per-tenant
//! queue and answers immediately with a job id; a weighted-fair scheduler
//! drains the queue into a bounded pool of chain executions (reusing the
//! Portal's `ChainMode` machinery — one [`CheckpointedWalk`] quantum per
//! scheduler turn, so a long chain from one tenant cannot monopolize the
//! Portal); `PollJob` reports progress; `FetchResults` delivers the
//! VOTable, paginated through the same zone-chunk transfer machinery the
//! daisy chain uses; `CancelJob` releases retained checkpoints and
//! transfer sessions *immediately*, not at lease TTL.
//!
//! Every resource a finished job pins — the result rows, the terminal
//! record, open result transfers — lives in a [`LeaseTable`] swept at the
//! front of every request, so an abandoned job can never pin the service
//! forever.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use skyquery_core::error::{FederationError, Result};
use skyquery_core::plan::ExecutionPlan;
use skyquery_core::portal::CheckpointedWalk;
use skyquery_core::result::ResultSet;
use skyquery_core::service::ServiceMethod;
use skyquery_core::trace::ExecutionTrace;
use skyquery_core::{ChainMode, LeaseTable, Portal};
use skyquery_net::{Endpoint, HttpRequest, HttpResponse, SimNetwork, Url};
use skyquery_soap::{
    ChunkHeader, ChunkManifest, MessageLimits, Operation, RpcCall, RpcResponse, SoapValue,
};
use skyquery_xml::VoTable;

use crate::admission::{FairScheduler, JobServiceConfig};
use crate::job::{JobState, JobStatus, QuotaClass};

/// Every service method the job service answers, in WSDL order. The same
/// registry drives dispatch and WSDL generation (see
/// [`skyquery_core::service`]).
const SERVICES: &[ServiceMethod<JobService>] = &[
    ServiceMethod {
        name: "SubmitQuery",
        operation: || {
            Operation::new("SubmitQuery")
                .input("tenant", "string")
                .input("sql", "string")
                .input_opt("priority", "long")
                .input_opt("class", "string")
                .input_opt("client_ref", "string")
                .output("job", "long")
                .output("duplicate", "boolean")
                .doc("Queue a cross-match query for asynchronous execution")
        },
        handler: |svc, net, call| svc.handle_submit(net, call),
    },
    ServiceMethod {
        name: "PollJob",
        operation: || {
            Operation::new("PollJob")
                .input("job", "long")
                .output("state", "string")
                .output("tenant", "string")
                .output("wait_s", "double")
                .output("run_s", "double")
                .output("rows", "long")
                .output("error", "string")
                .doc("Report a job's life-cycle state (renews its record lease)")
        },
        handler: |svc, _net, call| svc.handle_poll(call),
    },
    ServiceMethod {
        name: "CancelJob",
        operation: || {
            Operation::new("CancelJob")
                .input("job", "long")
                .output("cancelled", "boolean")
                .doc("Cancel a queued or running job, releasing its checkpoints immediately")
        },
        handler: |svc, _net, call| svc.handle_cancel(call),
    },
    ServiceMethod {
        name: "FetchResults",
        operation: || {
            Operation::new("FetchResults")
                .input("job", "long")
                .output("result", "table")
                .output("manifest", "xml")
                .doc("Deliver a finished job's VOTable, chunk-paginated when oversized")
        },
        handler: |svc, net, call| svc.handle_fetch_results(net, call),
    },
    ServiceMethod {
        name: "FetchChunk",
        operation: || {
            Operation::new("FetchChunk")
                .input("transfer_id", "long")
                .input("index", "long")
                .output("chunk", "table")
                .doc("Chunked-transfer continuation for a paginated result")
        },
        handler: |svc, net, call| svc.handle_fetch_chunk(net, call),
    },
    ServiceMethod {
        name: "AbortTransfer",
        operation: || {
            Operation::new("AbortTransfer")
                .input("transfer_id", "long")
                .output("aborted", "boolean")
                .doc("Free an open result transfer without serving its remaining chunks")
        },
        handler: |svc, _net, call| svc.handle_abort_transfer(call),
    },
];

/// Where a job's execution stands between scheduler quanta.
enum ExecPhase {
    /// Admitted; the chain has not started.
    Pending,
    /// Planned; the chain has not fired.
    Planned(Box<ExecutionPlan>),
    /// Mid-walk through a checkpointed chain.
    Walking(Box<ExecutionPlan>, Box<CheckpointedWalk>),
    /// Terminal; nothing left to drive.
    Done,
}

/// One job record.
struct Job {
    id: u64,
    tenant: String,
    class: QuotaClass,
    priority: i64,
    sql: String,
    client_ref: Option<String>,
    /// Submission order — the within-tenant tie-break after priority.
    seq: u64,
    state: JobState,
    submitted_at_s: f64,
    admitted_at_s: Option<f64>,
    finished_at_s: Option<f64>,
    error: Option<String>,
    trace: ExecutionTrace,
    result_rows: Option<usize>,
    /// Partial-result honesty carried from the execution: set when the
    /// job succeeded around unreachable archives/shards.
    degraded: bool,
    dropped_archives: Vec<String>,
    /// Recovery accounting accumulated across scheduler quanta.
    retries: u64,
    backoff_s: f64,
    faults: u64,
    exec: ExecPhase,
}

/// Mutable service state under one lock.
struct ServiceState {
    jobs: BTreeMap<u64, Job>,
    /// Queued job ids in submission order.
    queue: Vec<u64>,
    /// Admitted/running job ids (the execution pool).
    running: Vec<u64>,
    /// Round-robin cursor over `running`.
    run_cursor: usize,
    sched: FairScheduler,
    /// Finished results, leased: keyed by job id.
    results: LeaseTable<ResultSet>,
    /// Terminal job records awaiting their record TTL, keyed by job id.
    records: LeaseTable<u64>,
    /// Open result transfers: (owning job id, remaining chunks).
    transfers: LeaseTable<(u64, Vec<(ChunkHeader, VoTable)>)>,
}

/// The multi-tenant asynchronous job service.
pub struct JobService {
    host: String,
    net: SimNetwork,
    portal: Arc<Portal>,
    config: Mutex<JobServiceConfig>,
    state: Mutex<ServiceState>,
    next_job: AtomicU64,
    next_transfer: AtomicU64,
}

impl JobService {
    /// Starts a job service fronting `portal` and binds it to `host`.
    pub fn start(
        net: &SimNetwork,
        host: impl Into<String>,
        portal: Arc<Portal>,
        config: JobServiceConfig,
    ) -> Arc<JobService> {
        let host = host.into();
        let svc = Arc::new(JobService {
            host: host.clone(),
            net: net.clone(),
            portal,
            config: Mutex::new(config),
            state: Mutex::new(ServiceState {
                jobs: BTreeMap::new(),
                queue: Vec::new(),
                running: Vec::new(),
                run_cursor: 0,
                sched: FairScheduler::new(),
                results: LeaseTable::new(),
                records: LeaseTable::new(),
                transfers: LeaseTable::new(),
            }),
            next_job: AtomicU64::new(1),
            next_transfer: AtomicU64::new(1),
        });
        net.bind(host, svc.clone());
        svc
    }

    /// The service's network host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The service's SOAP endpoint URL.
    pub fn url(&self) -> Url {
        Url::new(self.host.clone(), "/soap")
    }

    /// The current admission/queue configuration.
    pub fn config(&self) -> JobServiceConfig {
        *self.config.lock()
    }

    /// Replaces the admission/queue configuration.
    pub fn set_config(&self, config: JobServiceConfig) {
        *self.config.lock() = config;
    }

    /// Every SOAPAction method this service dispatches, in WSDL order.
    pub fn service_names() -> Vec<&'static str> {
        skyquery_core::service::method_names(SERVICES)
    }

    /// The WSDL document describing the job service, generated from the
    /// same registry that dispatches its calls.
    pub fn wsdl(&self) -> String {
        skyquery_core::service::wsdl(SERVICES, "SkyQueryJobs", &self.url().to_string())
    }

    // ------------------------------------------------------------------
    // Leak detectors / introspection (tests, REPL).

    /// Queued job ids in submission order.
    pub fn queued(&self) -> Vec<u64> {
        self.state.lock().queue.clone()
    }

    /// Jobs currently occupying the execution pool.
    pub fn running(&self) -> Vec<u64> {
        self.state.lock().running.clone()
    }

    /// Open result transfers awaiting `FetchChunk` continuations.
    pub fn open_transfers(&self) -> Vec<u64> {
        self.state.lock().transfers.ids()
    }

    /// Job ids whose results are still held under lease.
    pub fn held_results(&self) -> Vec<u64> {
        self.state.lock().results.ids()
    }

    /// Total service-side resources currently under lease: held results,
    /// terminal records, and open result transfers.
    pub fn active_leases(&self) -> usize {
        let st = self.state.lock();
        st.results.len() + st.records.len() + st.transfers.len()
    }

    /// Every known job with its current state, sorted by id.
    pub fn job_states(&self) -> Vec<(u64, JobState)> {
        self.state
            .lock()
            .jobs
            .values()
            .map(|j| (j.id, j.state))
            .collect()
    }

    /// A terminal job's execution trace (`None` for unknown jobs).
    pub fn job_trace(&self, id: u64) -> Option<Vec<(String, String, String)>> {
        self.state.lock().jobs.get(&id).map(|j| {
            j.trace
                .events()
                .iter()
                .map(|e| (e.actor.clone(), e.action.clone(), e.detail.clone()))
                .collect()
        })
    }

    // ------------------------------------------------------------------
    // Janitor.

    /// Reclaims every service-side lease that expired at or before the
    /// network's current simulated time: open result transfers, unfetched
    /// results (their jobs decay `Succeeded → Expired`), and terminal job
    /// records (their jobs vanish; `PollJob` then answers `LeaseExpired`).
    /// Runs at the front of every request; returns how many resources
    /// were reclaimed.
    pub fn sweep_leases(&self) -> usize {
        let now = self.net.now_s();
        let mut st = self.state.lock();
        let st = &mut *st;
        let mut reclaimed = 0usize;
        for (_, _) in st.transfers.sweep(now) {
            reclaimed += 1;
        }
        for (job_id, _) in st.results.sweep(now) {
            reclaimed += 1;
            if let Some(job) = st.jobs.get_mut(&job_id) {
                if job.state == JobState::Succeeded {
                    job.state = JobState::Expired;
                    job.result_rows = None;
                    self.net.record_job_expired(&job.tenant);
                }
            }
        }
        for (job_id, _) in st.records.sweep(now) {
            reclaimed += 1;
            st.jobs.remove(&job_id);
            st.results.remove(job_id);
            let orphaned: Vec<u64> = st
                .transfers
                .ids()
                .into_iter()
                .filter(|tid| {
                    st.transfers
                        .get(*tid)
                        .is_some_and(|(jid, _)| *jid == job_id)
                })
                .collect();
            for tid in orphaned {
                st.transfers.remove(tid);
            }
        }
        for _ in 0..reclaimed {
            self.net.record_node_event(&self.host, "lease-expired");
        }
        reclaimed
    }

    // ------------------------------------------------------------------
    // Submit / poll / cancel (native API; the wire handlers decode SOAP
    // and call these).

    /// Accepts a query into `tenant`'s queue, or refuses it with a
    /// deterministic [`FederationError::JobRejected`] when the tenant's
    /// queued-job quota or the global queue bound is exhausted. A
    /// duplicate `client_ref` from the same tenant answers the existing
    /// job id with `duplicate = true` instead of queuing twice.
    pub fn submit(
        &self,
        tenant: &str,
        sql: &str,
        priority: i64,
        class: QuotaClass,
        client_ref: Option<&str>,
    ) -> Result<(u64, bool)> {
        if tenant.is_empty() {
            return Err(FederationError::protocol("tenant must be non-empty"));
        }
        let config = self.config();
        let now = self.net.now_s();
        let mut st = self.state.lock();

        // Idempotency: the same (tenant, client_ref) names the same job.
        if let Some(client_ref) = client_ref {
            if let Some(existing) = st
                .jobs
                .values()
                .find(|j| j.tenant == tenant && j.client_ref.as_deref() == Some(client_ref))
            {
                return Ok((existing.id, true));
            }
        }

        // Admission gates — deterministic client faults, never retried.
        if st.queue.len() >= config.max_queued {
            self.net.record_job_rejected(tenant);
            return Err(FederationError::JobRejected {
                tenant: tenant.to_string(),
                reason: format!("global queue full ({} jobs queued)", st.queue.len()),
            });
        }
        let tenant_queued = st
            .queue
            .iter()
            .filter(|id| st.jobs.get(id).is_some_and(|j| j.tenant == tenant))
            .count();
        if tenant_queued >= config.tenant_max_queued {
            self.net.record_job_rejected(tenant);
            return Err(FederationError::JobRejected {
                tenant: tenant.to_string(),
                reason: format!("tenant queue full ({tenant_queued} jobs queued)"),
            });
        }

        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        let mut trace = ExecutionTrace::new();
        trace.push(
            "JobService",
            "queued",
            format!(
                "tenant {tenant} ({}, priority {priority}): {sql}",
                class.as_str()
            ),
        );
        st.jobs.insert(
            id,
            Job {
                id,
                tenant: tenant.to_string(),
                class,
                priority,
                sql: sql.to_string(),
                client_ref: client_ref.map(String::from),
                seq: id,
                state: JobState::Queued,
                submitted_at_s: now,
                admitted_at_s: None,
                finished_at_s: None,
                error: None,
                trace,
                result_rows: None,
                degraded: false,
                dropped_archives: Vec::new(),
                retries: 0,
                backoff_s: 0.0,
                faults: 0,
                exec: ExecPhase::Pending,
            },
        );
        st.queue.push(id);
        self.net.record_job_submitted(tenant);
        Ok((id, false))
    }

    /// Reports a job's state, renewing its record lease (polling is also
    /// keeping-alive). An unknown or swept job answers a deterministic
    /// [`FederationError::LeaseExpired`] with kind `job`.
    pub fn poll(&self, id: u64) -> Result<JobStatus> {
        self.sweep_leases();
        let now = self.net.now_s();
        let mut st = self.state.lock();
        let st = &mut *st;
        let job = st
            .jobs
            .get(&id)
            .ok_or_else(|| FederationError::LeaseExpired {
                kind: "job".into(),
                id,
                host: self.host.clone(),
            })?;
        st.records.renew(id, now);
        let wait_s = job.admitted_at_s.unwrap_or(now) - job.submitted_at_s;
        let run_s = job
            .admitted_at_s
            .map(|a| job.finished_at_s.unwrap_or(now) - a)
            .unwrap_or(0.0);
        Ok(JobStatus {
            id,
            tenant: job.tenant.clone(),
            state: job.state,
            result_rows: job.result_rows,
            degraded: job.degraded,
            dropped_archives: job.dropped_archives.clone(),
            error: job.error.clone(),
            wait_s,
            run_s,
        })
    }

    /// Cancels a job. A queued job leaves the queue; a running job
    /// releases its retained checkpoint *immediately* (no TTL wait) and
    /// leaves the pool; a terminal job answers `false` but still frees
    /// its open transfers, and a succeeded one surrenders its result
    /// (decaying to `Expired` exactly as if the lease had lapsed).
    /// Unknown jobs answer [`FederationError::LeaseExpired`].
    pub fn cancel(&self, id: u64) -> Result<bool> {
        self.sweep_leases();
        let now = self.net.now_s();
        let config = self.config();
        let mut st = self.state.lock();
        let st = &mut *st;
        let job = st
            .jobs
            .get_mut(&id)
            .ok_or_else(|| FederationError::LeaseExpired {
                kind: "job".into(),
                id,
                host: self.host.clone(),
            })?;
        // Free any result pagination sessions the job holds, whatever its
        // state — cancellation means "stop spending resources on this".
        let orphaned: Vec<u64> = st
            .transfers
            .ids()
            .into_iter()
            .filter(|tid| st.transfers.get(*tid).is_some_and(|(jid, _)| *jid == id))
            .collect();
        for tid in orphaned {
            st.transfers.remove(tid);
        }
        if job.state.is_terminal() {
            // Cancelling a finished job reclaims its result immediately:
            // the job decays to Expired exactly as if the lease lapsed,
            // so a later poll and fetch tell a consistent story.
            if job.state == JobState::Succeeded && st.results.remove(id).is_some() {
                job.state = JobState::Expired;
                job.result_rows = None;
                self.net.record_job_expired(&job.tenant);
            }
            return Ok(false);
        }

        let was_queued = job.state == JobState::Queued;
        let exec = std::mem::replace(&mut job.exec, ExecPhase::Done);
        if let ExecPhase::Walking(_, mut walk) = exec {
            // Satellite of survivable execution: the checkpoint retained
            // on some archive node is released now, not at lease TTL.
            walk.release(&self.portal);
        }
        job.state = JobState::Cancelled;
        job.finished_at_s = Some(now);
        let run_s = job.admitted_at_s.map(|a| now - a).unwrap_or(0.0);
        job.trace
            .push("JobService", "cancelled", "owner cancelled the job");
        let tenant = job.tenant.clone();
        if was_queued {
            st.queue.retain(|qid| *qid != id);
        } else {
            st.running.retain(|rid| *rid != id);
        }
        st.records.insert(id, id, now, config.record_ttl_s);
        self.net.record_job_finished(&tenant, "cancelled", run_s);
        Ok(true)
    }

    // ------------------------------------------------------------------
    // The scheduler pump.

    /// One scheduler quantum: sweep leases, admit from the queue while
    /// the pool has room (weighted-fair across tenants), then drive one
    /// running job one step. Returns whether any admission or execution
    /// work was done — `false` means the service is idle.
    pub fn pump(&self) -> bool {
        self.sweep_leases();
        let admitted = self.admit_jobs();
        let executed = self.execute_slice();
        admitted > 0 || executed
    }

    /// Pumps until idle or `max_quanta` quanta, returning quanta used.
    pub fn run_until_idle(&self, max_quanta: usize) -> usize {
        for used in 0..max_quanta {
            if !self.pump() {
                return used;
            }
        }
        max_quanta
    }

    /// Admission: drain the queue into the pool under the fair scheduler.
    fn admit_jobs(&self) -> usize {
        let config = self.config();
        let now = self.net.now_s();
        let mut st = self.state.lock();
        let st = &mut *st;
        let mut admitted = 0usize;
        while st.running.len() < config.max_running {
            // Eligible tenants: queued work, below the per-tenant
            // concurrent-chain cap.
            let mut candidates: Vec<(String, f64)> = Vec::new();
            for id in &st.queue {
                let Some(job) = st.jobs.get(id) else { continue };
                if candidates.iter().any(|(t, _)| *t == job.tenant) {
                    continue;
                }
                let tenant_running = st
                    .running
                    .iter()
                    .filter(|rid| st.jobs.get(rid).is_some_and(|j| j.tenant == job.tenant))
                    .count();
                if tenant_running < config.tenant_max_running {
                    candidates.push((job.tenant.clone(), job.class.weight()));
                }
            }
            let Some(winner) = st.sched.admit(&candidates) else {
                break;
            };
            if candidates.len() > 1 {
                // A contended round: every backlogged tenant is recorded,
                // the winner flagged — the fairness-share numerator.
                for (tenant, _) in &candidates {
                    self.net.record_job_contention(tenant, *tenant == winner);
                }
            }
            // The winner's best job: highest priority, then submission
            // order. Priorities order work *within* a tenant only.
            let best = st
                .queue
                .iter()
                .filter_map(|id| st.jobs.get(id))
                .filter(|j| j.tenant == winner)
                .max_by(|a, b| a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)))
                .map(|j| j.id)
                .expect("winner came from the queue");
            st.queue.retain(|id| *id != best);
            st.running.push(best);
            let job = st.jobs.get_mut(&best).expect("job exists");
            job.state = JobState::Admitted;
            job.admitted_at_s = Some(now);
            let wait_s = now - job.submitted_at_s;
            job.trace.push(
                "JobService",
                "admitted",
                format!(
                    "after {wait_s:.3}s queued; pool {}/{}",
                    st.running.len(),
                    config.max_running
                ),
            );
            self.net.record_job_admitted(&winner, wait_s);
            admitted += 1;
        }
        admitted
    }

    /// Executes one quantum of one running job, round-robin.
    fn execute_slice(&self) -> bool {
        let config = self.config();
        let mut st = self.state.lock();
        let st = &mut *st;
        if st.running.is_empty() {
            return false;
        }
        st.run_cursor %= st.running.len();
        let id = st.running[st.run_cursor];
        st.run_cursor += 1;
        let job = st.jobs.get_mut(&id).expect("running job exists");

        // Recovery accounting: metric deltas across this quantum.
        let before = self.net.metrics();
        let (retries0, backoff0, faults0) = (
            before.retry_total().retries,
            before.retry_total().backoff_seconds,
            before.fault_total(),
        );

        job.state = JobState::Running;
        let phase = std::mem::replace(&mut job.exec, ExecPhase::Done);
        let outcome: SliceOutcome = match phase {
            ExecPhase::Pending => match self.portal.plan_query(&job.sql, &mut job.trace) {
                Ok(plan) => SliceOutcome::Continue(ExecPhase::Planned(Box::new(plan))),
                Err(e) => SliceOutcome::Failed(e),
            },
            ExecPhase::Planned(plan) => match self.portal.cached_result(&plan, &mut job.trace) {
                // A cache hit (or incremental repair) skips the chain
                // walk entirely — the whole execution fits one quantum
                // regardless of chain mode.
                Some((set, stats)) => {
                    for (alias, s) in &stats.entries {
                        job.trace.push(
                            alias.clone(),
                            "cross match step",
                            format!("tuples in {}, tuples out {}", s.tuples_in, s.tuples_out),
                        );
                    }
                    match Portal::project_result(&plan, set) {
                        Ok(rs) => SliceOutcome::Succeeded(rs),
                        Err(e) => SliceOutcome::Failed(e),
                    }
                }
                None => match self.portal.config().chain_mode {
                    // A plan addressing sharded or replicated archives is
                    // driven by the Portal's scatter executor whatever the
                    // chain mode — a node-to-node walk cannot express a
                    // scatter — so, like the recursive daisy chain, it
                    // runs to completion in one quantum.
                    _ if plan.has_shards() => {
                        match self.portal.execute_plan(&plan, &mut job.trace) {
                            Ok((set, stats, degradation)) => {
                                for (alias, s) in &stats.entries {
                                    job.trace.push(
                                        alias.clone(),
                                        "cross match step",
                                        format!(
                                            "tuples in {}, tuples out {}",
                                            s.tuples_in, s.tuples_out
                                        ),
                                    );
                                }
                                match Portal::project_result(&plan, set) {
                                    Ok(mut rs) => {
                                        rs.degraded = degradation.degraded;
                                        rs.dropped_archives = degradation.dropped;
                                        SliceOutcome::Succeeded(rs)
                                    }
                                    Err(e) => SliceOutcome::Failed(e),
                                }
                            }
                            Err(e) => SliceOutcome::Failed(e),
                        }
                    }
                    ChainMode::Recursive => {
                        // The paper's daisy chain is a single synchronous
                        // recursion — one quantum runs it to completion.
                        match self.portal.execute_plan(&plan, &mut job.trace) {
                            Ok((set, stats, degradation)) => {
                                for (alias, s) in &stats.entries {
                                    job.trace.push(
                                        alias.clone(),
                                        "cross match step",
                                        format!(
                                            "tuples in {}, tuples out {}",
                                            s.tuples_in, s.tuples_out
                                        ),
                                    );
                                }
                                match Portal::project_result(&plan, set) {
                                    Ok(mut rs) => {
                                        rs.degraded = degradation.degraded;
                                        rs.dropped_archives = degradation.dropped;
                                        SliceOutcome::Succeeded(rs)
                                    }
                                    Err(e) => SliceOutcome::Failed(e),
                                }
                            }
                            Err(e) => SliceOutcome::Failed(e),
                        }
                    }
                    ChainMode::Checkpointed => {
                        let mut walk = CheckpointedWalk::new(&plan);
                        match walk.step(&self.portal, &mut job.trace) {
                            Ok(()) => {
                                SliceOutcome::Continue(ExecPhase::Walking(plan, Box::new(walk)))
                            }
                            Err(e) => {
                                walk.release(&self.portal);
                                SliceOutcome::Failed(e)
                            }
                        }
                    }
                },
            },
            ExecPhase::Walking(plan, mut walk) => {
                if walk.is_done() {
                    // Read the honesty record before `finish` consumes
                    // the walk: a degraded walk must relay its partial
                    // flag, not a silently complete-looking answer.
                    let degradation = walk.degradation().clone();
                    match walk.finish(&self.portal) {
                        Ok((set, stats)) => {
                            for (alias, s) in &stats.entries {
                                job.trace.push(
                                    alias.clone(),
                                    "cross match step",
                                    format!(
                                        "tuples in {}, tuples out {}",
                                        s.tuples_in, s.tuples_out
                                    ),
                                );
                            }
                            match Portal::project_result(&plan, set) {
                                Ok(mut rs) => {
                                    rs.degraded = degradation.degraded;
                                    rs.dropped_archives = degradation.dropped;
                                    SliceOutcome::Succeeded(rs)
                                }
                                Err(e) => SliceOutcome::Failed(e),
                            }
                        }
                        Err(e) => SliceOutcome::Failed(e),
                    }
                } else {
                    match walk.step(&self.portal, &mut job.trace) {
                        Ok(()) => SliceOutcome::Continue(ExecPhase::Walking(plan, walk)),
                        Err(e) => {
                            walk.release(&self.portal);
                            SliceOutcome::Failed(e)
                        }
                    }
                }
            }
            ExecPhase::Done => SliceOutcome::Continue(ExecPhase::Done),
        };

        let after = self.net.metrics();
        job.retries += after.retry_total().retries - retries0;
        job.backoff_s += after.retry_total().backoff_seconds - backoff0;
        job.faults += after.fault_total() - faults0;

        let now = self.net.now_s();
        match outcome {
            SliceOutcome::Continue(next) => {
                job.exec = next;
                true
            }
            SliceOutcome::Succeeded(rs) => {
                job.result_rows = Some(rs.row_count());
                job.degraded = rs.degraded;
                job.dropped_archives = rs.dropped_archives.clone();
                if rs.degraded {
                    job.trace.push(
                        "JobService",
                        "partial result",
                        format!(
                            "answer degraded; dropped: {}",
                            rs.dropped_archives.join(", ")
                        ),
                    );
                }
                if job.retries > 0 || job.faults > 0 {
                    job.trace.push(
                        "JobService",
                        "recovery",
                        format!(
                            "{} retries ({:.3}s backoff), {} fault events during execution",
                            job.retries, job.backoff_s, job.faults
                        ),
                    );
                }
                job.trace.push(
                    "JobService",
                    "finished",
                    format!("succeeded with {} rows", rs.row_count()),
                );
                job.state = JobState::Succeeded;
                job.finished_at_s = Some(now);
                let run_s = now - job.admitted_at_s.unwrap_or(now);
                let tenant = job.tenant.clone();
                st.running.retain(|rid| *rid != id);
                st.results.insert(id, rs, now, config.result_ttl_s);
                st.records.insert(id, id, now, config.record_ttl_s);
                self.net.record_node_event(&self.host, "lease-granted");
                self.net.record_job_finished(&tenant, "succeeded", run_s);
                true
            }
            SliceOutcome::Failed(e) => {
                if job.retries > 0 || job.faults > 0 {
                    job.trace.push(
                        "JobService",
                        "recovery",
                        format!(
                            "{} retries ({:.3}s backoff), {} fault events during execution",
                            job.retries, job.backoff_s, job.faults
                        ),
                    );
                }
                job.trace
                    .push("JobService", "finished", format!("failed: {e}"));
                job.error = Some(e.to_string());
                job.state = JobState::Failed;
                job.finished_at_s = Some(now);
                let run_s = now - job.admitted_at_s.unwrap_or(now);
                let tenant = job.tenant.clone();
                st.running.retain(|rid| *rid != id);
                st.records.insert(id, id, now, config.record_ttl_s);
                self.net.record_job_finished(&tenant, "failed", run_s);
                true
            }
        }
    }

    // ------------------------------------------------------------------
    // Wire handlers.

    fn handle_submit(&self, _net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let tenant = require_str(call, "tenant")?;
        let sql = require_str(call, "sql")?;
        let priority = match call.get("priority") {
            Some(v) => v
                .as_i64()
                .ok_or_else(|| FederationError::protocol("priority must be an integer"))?,
            None => 0,
        };
        let class = match call.get("class") {
            Some(v) => {
                let s = v
                    .as_str()
                    .ok_or_else(|| FederationError::protocol("class must be a string"))?;
                QuotaClass::parse(s).ok_or_else(|| {
                    FederationError::protocol(format!(
                        "unknown quota class {s} (expected free, standard, or premium)"
                    ))
                })?
            }
            None => QuotaClass::default(),
        };
        let client_ref = match call.get("client_ref") {
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| FederationError::protocol("client_ref must be a string"))?,
            ),
            None => None,
        };
        let (id, duplicate) = self.submit(&tenant, &sql, priority, class, client_ref)?;
        Ok(RpcResponse::new("SubmitQuery")
            .result("job", SoapValue::Int(id as i64))
            .result("duplicate", SoapValue::Bool(duplicate)))
    }

    fn handle_poll(&self, call: &RpcCall) -> Result<RpcResponse> {
        let id = require_u64(call, "job")?;
        let status = self.poll(id)?;
        let mut resp = RpcResponse::new("PollJob")
            .result("state", SoapValue::Str(status.state.as_str().to_string()))
            .result("tenant", SoapValue::Str(status.tenant))
            .result("wait_s", SoapValue::Float(status.wait_s))
            .result("run_s", SoapValue::Float(status.run_s));
        if let Some(rows) = status.result_rows {
            resp = resp.result("rows", SoapValue::Int(rows as i64));
        }
        // Partial-result honesty: a poll is enough to learn the answer
        // is degraded — no fetch (or trace scrape) required.
        if status.degraded {
            resp = resp
                .result("degraded", SoapValue::Bool(true))
                .result("dropped", SoapValue::Str(status.dropped_archives.join(",")));
        }
        if let Some(error) = status.error {
            resp = resp.result("error", SoapValue::Str(error));
        }
        Ok(resp)
    }

    fn handle_cancel(&self, call: &RpcCall) -> Result<RpcResponse> {
        let id = require_u64(call, "job")?;
        let cancelled = self.cancel(id)?;
        Ok(RpcResponse::new("CancelJob").result("cancelled", SoapValue::Bool(cancelled)))
    }

    /// Delivers a succeeded job's result, inline when it fits the
    /// federation's message limit, otherwise paginated: the reply carries
    /// a [`ChunkManifest`] and the rows stream through `FetchChunk`
    /// continuations exactly like an oversized partial set on the daisy
    /// chain. Fetching renews the result lease, so delivery is
    /// idempotent until the TTL finally lapses.
    fn handle_fetch_results(&self, net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let id = require_u64(call, "job")?;
        let config = self.config();
        let max_bytes = self.portal.config().max_message_bytes;
        let now = net.now_s();
        let mut st = self.state.lock();
        let st = &mut *st;
        let job = st
            .jobs
            .get(&id)
            .ok_or_else(|| FederationError::LeaseExpired {
                kind: "job".into(),
                id,
                host: self.host.clone(),
            })?;
        match job.state {
            JobState::Succeeded => {}
            JobState::Expired => {
                return Err(FederationError::LeaseExpired {
                    kind: "result".into(),
                    id,
                    host: self.host.clone(),
                })
            }
            other => {
                return Err(FederationError::protocol(format!(
                    "job {id} has no results to fetch (state {other})"
                )))
            }
        }
        // Partial-result honesty travels with the rows on both delivery
        // shapes (inline and chunk manifest): the VOTable payload alone
        // cannot carry it.
        let degraded = job.degraded;
        let dropped = job.dropped_archives.join(",");
        st.records.renew(id, now);
        if !st.results.renew(id, now) {
            return Err(FederationError::LeaseExpired {
                kind: "result".into(),
                id,
                host: self.host.clone(),
            });
        }
        let table = st
            .results
            .get(id)
            .expect("renewed above")
            .to_votable("result");
        let monolithic = RpcResponse::new("FetchResults")
            .result("result", SoapValue::Table(table.clone()))
            .result("degraded", SoapValue::Bool(degraded))
            .result("dropped", SoapValue::Str(dropped.clone()));
        if monolithic.to_xml().len() <= max_bytes {
            return Ok(monolithic);
        }
        let transfer_id = self.next_transfer.fetch_add(1, Ordering::Relaxed);
        let chunks =
            skyquery_soap::chunk::split_table(&table, MessageLimits::tiny(max_bytes), transfer_id)
                .map_err(FederationError::Soap)?;
        let rows: Vec<usize> = chunks.iter().map(|(_, t)| t.row_count()).collect();
        let manifest = ChunkManifest::legacy(transfer_id, &rows);
        st.transfers
            .insert(transfer_id, (id, chunks), now, config.result_ttl_s);
        self.net.record_node_event(&self.host, "lease-granted");
        Ok(RpcResponse::new("FetchResults")
            .result("manifest", SoapValue::Xml(manifest.to_element()))
            .result("degraded", SoapValue::Bool(degraded))
            .result("dropped", SoapValue::Str(dropped)))
    }

    fn handle_fetch_chunk(&self, net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let transfer_id = require_u64(call, "transfer_id")?;
        let index = require_u64(call, "index")? as usize;
        let mut st = self.state.lock();
        // Each continuation renews the session's lease, like a SkyNode's
        // chunked transfers: a live receiver never loses one mid-stream.
        st.transfers.renew(transfer_id, net.now_s());
        let (_, chunks) =
            st.transfers
                .get(transfer_id)
                .ok_or_else(|| FederationError::LeaseExpired {
                    kind: "transfer".into(),
                    id: transfer_id,
                    host: self.host.clone(),
                })?;
        let (header, table) = chunks
            .get(index)
            .cloned()
            .ok_or_else(|| FederationError::protocol(format!("no chunk {index}")))?;
        if index + 1 == header.total {
            st.transfers.remove(transfer_id);
        }
        Ok(RpcResponse::new("FetchChunk")
            .result("chunk", SoapValue::Table(table))
            .result("index", SoapValue::Int(header.index as i64))
            .result("total", SoapValue::Int(header.total as i64))
            .result("transfer_id", SoapValue::Int(header.transfer_id as i64)))
    }

    fn handle_abort_transfer(&self, call: &RpcCall) -> Result<RpcResponse> {
        let transfer_id = require_u64(call, "transfer_id")?;
        let freed = self.state.lock().transfers.remove(transfer_id).is_some();
        Ok(RpcResponse::new("AbortTransfer").result("aborted", SoapValue::Bool(freed)))
    }

    fn handle_call(&self, net: &SimNetwork, call: RpcCall) -> Result<RpcResponse> {
        // Janitor first, like a SkyNode: every request is an opportunity
        // to reclaim leases that lapsed while the service sat idle.
        self.sweep_leases();
        skyquery_core::service::dispatch(SERVICES, self, net, &call)
    }
}

/// What one execution quantum decided.
enum SliceOutcome {
    Continue(ExecPhase),
    Succeeded(ResultSet),
    Failed(FederationError),
}

impl Endpoint for JobService {
    fn handle(&self, net: &SimNetwork, req: HttpRequest) -> HttpResponse {
        let body = match std::str::from_utf8(&req.body) {
            Ok(b) => b,
            Err(_) => {
                return HttpResponse::soap_fault(
                    skyquery_soap::SoapFault::client("request body is not UTF-8").to_xml(),
                )
            }
        };
        let call = match RpcCall::parse(body) {
            Ok(c) => c,
            Err(e) => {
                return HttpResponse::soap_fault(
                    skyquery_soap::SoapFault::client(e.to_string()).to_xml(),
                )
            }
        };
        match self.handle_call(net, call) {
            Ok(resp) => HttpResponse::ok(resp.to_xml()),
            Err(e) => HttpResponse::soap_fault(e.to_fault().to_xml()),
        }
    }
}

fn require_str(call: &RpcCall, name: &str) -> Result<String> {
    Ok(call
        .require(name)?
        .as_str()
        .ok_or_else(|| FederationError::protocol(format!("{name} must be a string")))?
        .to_string())
}

fn require_u64(call: &RpcCall, name: &str) -> Result<u64> {
    call.require(name)?
        .as_i64()
        .filter(|v| *v >= 0)
        .map(|v| v as u64)
        .ok_or_else(|| FederationError::protocol(format!("{name} must be a non-negative integer")))
}
