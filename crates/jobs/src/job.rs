//! Job records: states, quota classes, and the status snapshot a
//! `PollJob` answers.

/// The billing/priority class a tenant submits under. Classes weight the
/// fair scheduler: under contention a `Premium` tenant is admitted about
/// four times as often as a `Free` one, but no class can starve another —
/// weighted fair queuing guarantees every backlogged tenant a share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuotaClass {
    /// Weight 1.
    Free,
    /// Weight 2 (the default).
    #[default]
    Standard,
    /// Weight 4.
    Premium,
}

impl QuotaClass {
    /// The scheduler weight: a backlogged tenant's long-run admission
    /// share is proportional to this.
    pub fn weight(self) -> f64 {
        match self {
            QuotaClass::Free => 1.0,
            QuotaClass::Standard => 2.0,
            QuotaClass::Premium => 4.0,
        }
    }

    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            QuotaClass::Free => "free",
            QuotaClass::Standard => "standard",
            QuotaClass::Premium => "premium",
        }
    }

    /// Parses a wire name (case-insensitive); unknown names answer `None`.
    pub fn parse(s: &str) -> Option<QuotaClass> {
        match s.to_ascii_lowercase().as_str() {
            "free" => Some(QuotaClass::Free),
            "standard" => Some(QuotaClass::Standard),
            "premium" => Some(QuotaClass::Premium),
            _ => None,
        }
    }
}

/// Where a job is in its life cycle:
/// `Queued → Admitted → Running → {Succeeded, Failed, Cancelled}`, with
/// `Succeeded → Expired` when the result lease lapses before the owner
/// fetches the rows. `Cancelled` is reachable from any non-terminal
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted by admission control, waiting in the tenant queue.
    Queued,
    /// Granted an execution slot by the fair scheduler; the chain has not
    /// started yet.
    Admitted,
    /// The federated chain is in flight (planning, or stepping through
    /// the archives).
    Running,
    /// Finished with a committed result, held under a TTL lease until
    /// fetched.
    Succeeded,
    /// Finished with an error (recorded in the status snapshot).
    Failed,
    /// Cancelled by its owner; any retained checkpoints and transfer
    /// sessions were released immediately.
    Cancelled,
    /// Succeeded, but the result lease lapsed unfetched and the janitor
    /// reclaimed the rows.
    Expired,
}

impl JobState {
    /// Whether the job will never change state again (except the
    /// `Succeeded → Expired` lease decay).
    pub fn is_terminal(self) -> bool {
        !matches!(
            self,
            JobState::Queued | JobState::Admitted | JobState::Running
        )
    }

    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Admitted => "admitted",
            JobState::Running => "running",
            JobState::Succeeded => "succeeded",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Expired => "expired",
        }
    }

    /// Parses a wire name; unknown names answer `None`.
    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "admitted" => Some(JobState::Admitted),
            "running" => Some(JobState::Running),
            "succeeded" => Some(JobState::Succeeded),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            "expired" => Some(JobState::Expired),
            _ => None,
        }
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The status snapshot a `PollJob` answers.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub id: u64,
    /// The owning tenant.
    pub tenant: String,
    /// Current life-cycle state.
    pub state: JobState,
    /// Matched rows, once the job succeeded.
    pub result_rows: Option<usize>,
    /// Partial-result honesty: `true` when the job succeeded around one
    /// or more unreachable archives/shards and the rows are therefore a
    /// degraded (complete-minus-dropped-filters) answer.
    pub degraded: bool,
    /// What a degraded job dropped (archive names, or `archive@host`
    /// for shards lost mid-scatter). Empty unless `degraded`.
    pub dropped_archives: Vec<String>,
    /// The failure message, once the job failed.
    pub error: Option<String>,
    /// Simulated seconds spent queued (submission → admission); grows
    /// while still queued.
    pub wait_s: f64,
    /// Simulated seconds spent executing (admission → terminal); grows
    /// while still running, `0` while queued.
    pub run_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_classes_round_trip_and_order_weights() {
        for c in [QuotaClass::Free, QuotaClass::Standard, QuotaClass::Premium] {
            assert_eq!(QuotaClass::parse(c.as_str()), Some(c));
        }
        assert_eq!(QuotaClass::parse("PREMIUM"), Some(QuotaClass::Premium));
        assert_eq!(QuotaClass::parse("gold"), None);
        assert!(QuotaClass::Free.weight() < QuotaClass::Standard.weight());
        assert!(QuotaClass::Standard.weight() < QuotaClass::Premium.weight());
    }

    #[test]
    fn terminal_states() {
        for s in [JobState::Queued, JobState::Admitted, JobState::Running] {
            assert!(!s.is_terminal());
            assert_eq!(JobState::parse(s.as_str()), Some(s));
        }
        for s in [
            JobState::Succeeded,
            JobState::Failed,
            JobState::Cancelled,
            JobState::Expired,
        ] {
            assert!(s.is_terminal());
            assert_eq!(JobState::parse(s.as_str()), Some(s));
        }
        assert_eq!(JobState::parse("paused"), None);
    }
}
