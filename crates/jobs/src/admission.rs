//! Admission control and weighted-fair scheduling.
//!
//! Admission is two gates. At **submission** the controller bounds how
//! much queue a tenant (and the service as a whole) may hold: beyond the
//! bound a submission is refused with a deterministic
//! `FederationError::JobRejected` client fault — never retried, never
//! queued. At **dispatch** a start-time fair-queuing scheduler drains the
//! queue into a bounded pool of chain executions: each backlogged
//! tenant's long-run admission share is proportional to its quota-class
//! weight, an idle tenant accumulates no credit, and a flood from one
//! tenant cannot starve another (priorities order jobs only *within* a
//! tenant).

use std::collections::HashMap;

use skyquery_core::plan::DEFAULT_LEASE_TTL_S;

/// Queue bounds and lease TTLs for one [`JobService`](crate::JobService).
#[derive(Debug, Clone, Copy)]
pub struct JobServiceConfig {
    /// Concurrent chain executions the service drives (the pool bound).
    pub max_running: usize,
    /// Concurrent chains any single tenant may occupy in the pool.
    pub tenant_max_running: usize,
    /// Jobs any single tenant may hold queued (excess submissions are
    /// rejected).
    pub tenant_max_queued: usize,
    /// Jobs the whole service may hold queued across tenants.
    pub max_queued: usize,
    /// TTL lease (simulated seconds) on a finished job's result rows; a
    /// result not fetched in time is reclaimed by the janitor and the
    /// job decays to `Expired`.
    pub result_ttl_s: f64,
    /// TTL lease on a terminal job's *record* (the poll-able status
    /// line); once swept, `PollJob` answers `LeaseExpired`.
    pub record_ttl_s: f64,
}

impl Default for JobServiceConfig {
    fn default() -> Self {
        JobServiceConfig {
            max_running: 4,
            tenant_max_running: 2,
            tenant_max_queued: 16,
            max_queued: 64,
            result_ttl_s: DEFAULT_LEASE_TTL_S,
            record_ttl_s: DEFAULT_LEASE_TTL_S * 4.0,
        }
    }
}

/// Start-time fair queuing over tenants.
///
/// Classic SFQ bookkeeping: a global virtual time `vt` plus one virtual
/// counter per tenant. A candidate's selection key is
/// `max(counter, vt)` — clamping to `vt` is what denies credit to
/// tenants that were idle — and the scheduler admits the minimum key
/// (ties broken by tenant name for determinism), then advances the
/// winner's counter by `1/weight` and `vt` to the winning key. A tenant
/// with twice the weight therefore wins twice as often under sustained
/// contention, and every backlogged tenant's key eventually becomes the
/// minimum: no starvation.
#[derive(Debug, Default)]
pub struct FairScheduler {
    vt: f64,
    counters: HashMap<String, f64>,
}

impl FairScheduler {
    /// A scheduler with no history.
    pub fn new() -> FairScheduler {
        FairScheduler::default()
    }

    /// Picks the next tenant among `candidates` (name, weight) and
    /// charges it one admission. Returns `None` for no candidates.
    pub fn admit(&mut self, candidates: &[(String, f64)]) -> Option<String> {
        let winner = candidates
            .iter()
            .map(|(tenant, _)| {
                let key = self
                    .counters
                    .get(tenant)
                    .copied()
                    .unwrap_or(0.0)
                    .max(self.vt);
                (key, tenant)
            })
            .min_by(|(ka, ta), (kb, tb)| ka.partial_cmp(kb).unwrap().then_with(|| ta.cmp(tb)))?
            .1
            .clone();
        let weight = candidates
            .iter()
            .find(|(t, _)| *t == winner)
            .map(|(_, w)| *w)
            .filter(|w| w.is_finite() && *w > 0.0)
            .unwrap_or(1.0);
        let key = self
            .counters
            .get(&winner)
            .copied()
            .unwrap_or(0.0)
            .max(self.vt);
        self.counters.insert(winner.clone(), key + 1.0 / weight);
        self.vt = key;
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shares(admissions: &[String]) -> HashMap<String, usize> {
        let mut m = HashMap::new();
        for a in admissions {
            *m.entry(a.clone()).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn weighted_shares_under_sustained_contention() {
        let mut s = FairScheduler::new();
        let candidates = vec![
            ("free".to_string(), 1.0),
            ("premium".to_string(), 4.0),
            ("standard".to_string(), 2.0),
        ];
        let admissions: Vec<String> = (0..700).map(|_| s.admit(&candidates).unwrap()).collect();
        let m = shares(&admissions);
        // Long-run shares proportional to 1:2:4 (=100:200:400 of 700).
        assert!(
            (m["free"] as i64 - 100).abs() <= 2,
            "free won {}",
            m["free"]
        );
        assert!(
            (m["standard"] as i64 - 200).abs() <= 2,
            "standard won {}",
            m["standard"]
        );
        assert!(
            (m["premium"] as i64 - 400).abs() <= 2,
            "premium won {}",
            m["premium"]
        );
    }

    #[test]
    fn idle_tenants_accumulate_no_credit() {
        let mut s = FairScheduler::new();
        let only_a = vec![("a".to_string(), 1.0)];
        for _ in 0..1000 {
            assert_eq!(s.admit(&only_a).unwrap(), "a");
        }
        // "b" was idle throughout; when it shows up it does NOT get 1000
        // back-to-back admissions — its counter clamps to the current
        // virtual time and the two alternate from here on.
        let both = vec![("a".to_string(), 1.0), ("b".to_string(), 1.0)];
        let next: Vec<String> = (0..10).map(|_| s.admit(&both).unwrap()).collect();
        let m = shares(&next);
        assert_eq!(m["a"], 5);
        assert_eq!(m["b"], 5);
    }

    #[test]
    fn no_candidates_answers_none() {
        assert_eq!(FairScheduler::new().admit(&[]), None);
    }

    #[test]
    fn newcomer_is_not_starved_by_a_flood() {
        let mut s = FairScheduler::new();
        // Tenant "a" floods; after a few of its admissions, "b" arrives
        // with equal weight and must win within two rounds.
        let only_a = vec![("a".to_string(), 1.0)];
        for _ in 0..5 {
            s.admit(&only_a).unwrap();
        }
        let both = vec![("a".to_string(), 1.0), ("b".to_string(), 1.0)];
        let first_two: Vec<String> = (0..2).map(|_| s.admit(&both).unwrap()).collect();
        assert!(first_two.contains(&"b".to_string()));
    }
}
