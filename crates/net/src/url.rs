//! Minimal URL handling: `http://host/path`.

use crate::NetError;

/// A parsed HTTP URL. Only the `http` scheme, a host, and a path are
/// modeled; ports and query strings are out of the federation's needs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    /// Host name (the simulated network address).
    pub host: String,
    /// Absolute path, always starting with `/`.
    pub path: String,
}

impl Url {
    /// A URL from parts; a missing leading `/` on the path is added.
    pub fn new(host: impl Into<String>, path: impl Into<String>) -> Url {
        let mut path = path.into();
        if !path.starts_with('/') {
            path.insert(0, '/');
        }
        Url {
            host: host.into(),
            path,
        }
    }

    /// Parses `http://host/path` (path defaults to `/`).
    pub fn parse(s: &str) -> Result<Url, NetError> {
        let rest = s.strip_prefix("http://").ok_or_else(|| NetError::BadUrl {
            url: s.to_string(),
            detail: "only http:// URLs are supported".into(),
        })?;
        if rest.is_empty() {
            return Err(NetError::BadUrl {
                url: s.to_string(),
                detail: "missing host".into(),
            });
        }
        let (host, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if host.is_empty() || host.contains(char::is_whitespace) {
            return Err(NetError::BadUrl {
                url: s.to_string(),
                detail: "invalid host".into(),
            });
        }
        Ok(Url {
            host: host.to_string(),
            path: path.to_string(),
        })
    }
}

impl std::fmt::Display for Url {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http://{}{}", self.host, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let u = Url::parse("http://sdss.skyquery.net/services/soap").unwrap();
        assert_eq!(u.host, "sdss.skyquery.net");
        assert_eq!(u.path, "/services/soap");
        assert_eq!(u.to_string(), "http://sdss.skyquery.net/services/soap");
    }

    #[test]
    fn path_defaults_to_root() {
        let u = Url::parse("http://portal").unwrap();
        assert_eq!(u.path, "/");
    }

    #[test]
    fn new_normalizes_path() {
        assert_eq!(Url::new("h", "x").path, "/x");
        assert_eq!(Url::new("h", "/x").path, "/x");
    }

    #[test]
    fn rejects_bad_urls() {
        assert!(Url::parse("ftp://x").is_err());
        assert!(Url::parse("http://").is_err());
        assert!(Url::parse("http:// spaced/x").is_err());
        assert!(Url::parse("no-scheme").is_err());
    }

    #[test]
    fn roundtrip() {
        for s in ["http://a/b/c", "http://x.y.z/", "http://h/p?notspecial"] {
            let u = Url::parse(s).unwrap();
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
        }
    }
}
