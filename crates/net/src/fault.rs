//! Fault injection for the simulated network.
//!
//! The federation is built from autonomous archives that fail
//! independently, so the interesting network is the one that *breaks*: a
//! host that drops off for a while, a link that adds latency, a proxy
//! that answers 5xx, a frame that arrives truncated or corrupted. A
//! [`FaultPlan`] describes such misbehaviour declaratively; installing it
//! on a [`SimNetwork`](crate::SimNetwork) composes a stateful
//! [`FaultInjector`] onto `send`, which applies matching rules to each
//! request and tallies every injection into
//! [`NetworkMetrics`](crate::NetworkMetrics) so recovery is observable,
//! not just survived.

use crate::http::HttpRequest;

/// What a matching fault rule does to a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The destination behaves as if unbound: the connection fails and
    /// the caller sees `HostUnreachable`.
    HostDown,
    /// The request reaches the host's front door but the service behind
    /// it answers HTTP 500 with a non-SOAP body (a crashed worker, a
    /// proxy error page).
    ServerError,
    /// The endpoint answers normally but the response body is cut off
    /// mid-frame on the way back.
    TruncateBody,
    /// The endpoint answers normally but the response body arrives as
    /// non-UTF-8 garbage.
    GarbageBody,
    /// The request is delivered intact after the given extra simulated
    /// seconds (accounted on the link, never an error).
    Latency(f64),
}

impl FaultKind {
    /// Stable label used as the fault-tally key in network metrics.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::HostDown => "host-down",
            FaultKind::ServerError => "http-500",
            FaultKind::TruncateBody => "truncated-body",
            FaultKind::GarbageBody => "garbage-body",
            FaultKind::Latency(_) => "latency",
        }
    }
}

/// One declarative fault: a kind plus the requests it applies to.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// The injected misbehaviour.
    pub kind: FaultKind,
    /// Destination host filter (`None` = every host).
    pub host: Option<String>,
    /// SOAPAction filter (`None` = every request). Lets a test break one
    /// protocol step — say, only `CommitReceive` — while the rest of the
    /// conversation flows.
    pub action: Option<String>,
    /// Apply to the first N matching requests, then expire (`None` =
    /// every matching request, forever).
    pub times: Option<u32>,
}

impl FaultRule {
    /// A rule applying `kind` to every request until narrowed.
    pub fn new(kind: FaultKind) -> FaultRule {
        FaultRule {
            kind,
            host: None,
            action: None,
            times: None,
        }
    }

    /// Restricts the rule to requests addressed to `host`.
    pub fn host(mut self, host: impl Into<String>) -> FaultRule {
        self.host = Some(host.into());
        self
    }

    /// Restricts the rule to requests carrying this SOAPAction. The full
    /// action URI matches, and so does the bare method name after the `#`
    /// fragment (`"CommitReceive"` matches `"urn:skyquery#CommitReceive"`).
    pub fn action(mut self, action: impl Into<String>) -> FaultRule {
        self.action = Some(action.into());
        self
    }

    /// Expires the rule after its first `n` matching requests.
    pub fn times(mut self, n: u32) -> FaultRule {
        self.times = Some(n);
        self
    }

    fn matches(&self, to_host: &str, action: Option<&str>) -> bool {
        if let Some(h) = &self.host {
            if h != to_host {
                return false;
            }
        }
        if let Some(a) = &self.action {
            let fragment = action.map(|s| s.rsplit_once('#').map_or(s, |(_, f)| f));
            if action != Some(a.as_str()) && fragment != Some(a.as_str()) {
                return false;
            }
        }
        true
    }
}

/// A declarative set of fault rules, evaluated in insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The rules, applied in order to each request.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (a perfectly healthy network).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Adds an arbitrary rule.
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// `host` refuses its next `n` requests as if offline, then recovers.
    pub fn host_down_for(self, host: impl Into<String>, n: u32) -> FaultPlan {
        self.rule(FaultRule::new(FaultKind::HostDown).host(host).times(n))
    }

    /// A flaky link: the first request to `host` fails, every later one
    /// succeeds.
    pub fn flaky_once(self, host: impl Into<String>) -> FaultPlan {
        self.host_down_for(host, 1)
    }

    /// `host` answers its next `n` requests with HTTP 500.
    pub fn server_errors(self, host: impl Into<String>, n: u32) -> FaultPlan {
        self.rule(FaultRule::new(FaultKind::ServerError).host(host).times(n))
    }

    /// The next `n` responses from `host` arrive truncated mid-frame.
    pub fn truncated_bodies(self, host: impl Into<String>, n: u32) -> FaultPlan {
        self.rule(FaultRule::new(FaultKind::TruncateBody).host(host).times(n))
    }

    /// The next `n` responses from `host` arrive as non-UTF-8 garbage.
    pub fn garbage_bodies(self, host: impl Into<String>, n: u32) -> FaultPlan {
        self.rule(FaultRule::new(FaultKind::GarbageBody).host(host).times(n))
    }

    /// Every request to `host` is delayed by `seconds` of simulated time.
    pub fn added_latency(self, host: impl Into<String>, seconds: f64) -> FaultPlan {
        self.rule(FaultRule::new(FaultKind::Latency(seconds)).host(host))
    }
}

/// The terminal effect the injector applies to one request (at most one
/// per request; latency composes with any of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Fail the connection.
    HostDown,
    /// Short-circuit with a 500 response.
    ServerError,
    /// Dispatch, then truncate the response body.
    TruncateBody,
    /// Dispatch, then replace the response body with garbage.
    GarbageBody,
}

/// The injector's verdict for one request.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Interception {
    /// Extra simulated seconds to charge the link.
    pub latency_s: f64,
    /// The terminal fault, if any (first matching rule wins).
    pub outcome: Option<FaultOutcome>,
}

/// Stateful evaluator for a [`FaultPlan`]: counts down bounded rules as
/// they fire. One injector is installed per network; `SimNetwork` guards
/// it with a lock, so `intercept` takes `&mut self`.
#[derive(Debug)]
pub struct FaultInjector {
    rules: Vec<ActiveRule>,
}

#[derive(Debug)]
struct ActiveRule {
    rule: FaultRule,
    remaining: Option<u32>,
}

impl FaultInjector {
    /// Arms the injector with a plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            rules: plan
                .rules
                .into_iter()
                .map(|rule| ActiveRule {
                    remaining: rule.times,
                    rule,
                })
                .collect(),
        }
    }

    /// Evaluates every live rule against one request and returns the
    /// composite verdict, decrementing the budget of each rule that
    /// fires. Labels of the fired rules ride along for fault tallying.
    pub fn intercept(
        &mut self,
        to_host: &str,
        req: &HttpRequest,
    ) -> (Interception, Vec<&'static str>) {
        let action = req.soap_action();
        let mut verdict = Interception::default();
        let mut fired = Vec::new();
        for active in &mut self.rules {
            if active.remaining == Some(0) || !active.rule.matches(to_host, action) {
                continue;
            }
            let applies = match active.rule.kind {
                FaultKind::Latency(s) => {
                    verdict.latency_s += s;
                    true
                }
                kind => {
                    if verdict.outcome.is_some() {
                        false // one terminal fault per request
                    } else {
                        verdict.outcome = Some(match kind {
                            FaultKind::HostDown => FaultOutcome::HostDown,
                            FaultKind::ServerError => FaultOutcome::ServerError,
                            FaultKind::TruncateBody => FaultOutcome::TruncateBody,
                            FaultKind::GarbageBody => FaultOutcome::GarbageBody,
                            FaultKind::Latency(_) => unreachable!("handled above"),
                        });
                        true
                    }
                }
            };
            if applies {
                fired.push(active.rule.kind.label());
                if let Some(n) = &mut active.remaining {
                    *n -= 1;
                }
            }
        }
        (verdict, fired)
    }

    /// Whether any rule can still fire.
    pub fn is_live(&self) -> bool {
        self.rules.iter().any(|r| r.remaining != Some(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(action: &str) -> HttpRequest {
        HttpRequest::soap_post("/soap", action, "<x/>")
    }

    #[test]
    fn bounded_rule_expires() {
        let mut inj = FaultInjector::new(FaultPlan::new().host_down_for("sdss", 2));
        for _ in 0..2 {
            let (v, fired) = inj.intercept("sdss", &req("Query"));
            assert_eq!(v.outcome, Some(FaultOutcome::HostDown));
            assert_eq!(fired, vec!["host-down"]);
        }
        let (v, fired) = inj.intercept("sdss", &req("Query"));
        assert_eq!(v.outcome, None);
        assert!(fired.is_empty());
        assert!(!inj.is_live());
    }

    #[test]
    fn host_and_action_filters() {
        let plan = FaultPlan::new().rule(
            FaultRule::new(FaultKind::ServerError)
                .host("dest")
                .action("CommitReceive"),
        );
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.intercept("dest", &req("Query")).0.outcome, None);
        assert_eq!(
            inj.intercept("other", &req("CommitReceive")).0.outcome,
            None
        );
        assert_eq!(
            inj.intercept("dest", &req("CommitReceive")).0.outcome,
            Some(FaultOutcome::ServerError)
        );
        // The bare method name also matches a full SOAPAction URI.
        assert_eq!(
            inj.intercept("dest", &req("urn:skyquery#CommitReceive"))
                .0
                .outcome,
            Some(FaultOutcome::ServerError)
        );
        // Unbounded: still live after firing.
        assert!(inj.is_live());
    }

    #[test]
    fn latency_composes_with_terminal_faults() {
        let plan = FaultPlan::new()
            .added_latency("n", 0.25)
            .garbage_bodies("n", 1);
        let mut inj = FaultInjector::new(plan);
        let (v, fired) = inj.intercept("n", &req("Query"));
        assert!((v.latency_s - 0.25).abs() < 1e-12);
        assert_eq!(v.outcome, Some(FaultOutcome::GarbageBody));
        assert_eq!(fired, vec!["latency", "garbage-body"]);
        // Terminal fault expired; latency persists.
        let (v, _) = inj.intercept("n", &req("Query"));
        assert!((v.latency_s - 0.25).abs() < 1e-12);
        assert_eq!(v.outcome, None);
    }

    #[test]
    fn first_terminal_rule_wins() {
        let plan = FaultPlan::new()
            .server_errors("n", 1)
            .truncated_bodies("n", 1);
        let mut inj = FaultInjector::new(plan);
        let (v, _) = inj.intercept("n", &req("Query"));
        assert_eq!(v.outcome, Some(FaultOutcome::ServerError));
        // The shadowed truncation rule kept its budget for the next one.
        let (v, _) = inj.intercept("n", &req("Query"));
        assert_eq!(v.outcome, Some(FaultOutcome::TruncateBody));
    }
}
