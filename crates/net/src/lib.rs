#![warn(missing_docs)]
//! # skyquery-net — the simulated Internet
//!
//! The real SkyQuery federated geographically separate archives over the
//! Internet; its cost model is dominated by **transmission costs** of
//! partial results moving between SkyNodes (paper §5.3). This crate is the
//! substitution for that substrate (see DESIGN.md §4): an in-process
//! network of named hosts exchanging HTTP/1.1-framed messages, with
//!
//! * exact **byte accounting** per directed link (the quantity the
//!   count-star ordering minimizes),
//! * a configurable **latency/bandwidth model** accumulating simulated
//!   wall-clock time,
//! * a UDDI-flavoured **service registry** for discovery (§3.1).
//!
//! Dispatch is synchronous: `send` looks up the destination endpoint and
//! invokes its handler, which may itself `send` onward (the daisy chain of
//! §5.3). All accounting is thread-safe; the Portal issues performance
//! queries from worker threads.

pub mod fault;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod sim;
pub mod url;

pub use fault::{FaultInjector, FaultKind, FaultOutcome, FaultPlan, FaultRule};
pub use http::{HttpRequest, HttpResponse, Method, StatusCode};
pub use metrics::{
    ChunkFlowStats, CostModel, LinkStats, NetworkMetrics, RetryStats, TenantJobStats,
};
pub use registry::{ServiceRecord, ServiceRegistry};
pub use sim::{Endpoint, SimNetwork};
pub use url::Url;

/// Errors from the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No endpoint is bound to the destination host.
    HostUnreachable {
        /// The unreachable host name.
        host: String,
    },
    /// A URL failed to parse.
    BadUrl {
        /// The offending URL text.
        url: String,
        /// Why it failed.
        detail: String,
    },
    /// HTTP framing failed to parse.
    BadFrame {
        /// Why framing failed.
        detail: String,
    },
    /// The destination endpoint panicked or refused the message.
    EndpointFailure {
        /// The failing host.
        host: String,
        /// What it reported.
        detail: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::HostUnreachable { host } => write!(f, "host unreachable: {host}"),
            NetError::BadUrl { url, detail } => write!(f, "bad URL {url}: {detail}"),
            NetError::BadFrame { detail } => write!(f, "bad HTTP frame: {detail}"),
            NetError::EndpointFailure { host, detail } => {
                write!(f, "endpoint {host} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, NetError>;
