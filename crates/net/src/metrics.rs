//! Transmission accounting: the quantity SkyQuery's planner minimizes.

use std::collections::{BTreeMap, HashMap};

/// Latency/bandwidth model for simulated transfer time.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Fixed per-message latency in seconds (round trip is two messages).
    pub latency_s: f64,
    /// Link bandwidth in bytes per second.
    pub bytes_per_s: f64,
}

impl CostModel {
    /// A model resembling 2002-era inter-site links: 50 ms latency,
    /// ~1 MB/s throughput.
    pub fn internet_2002() -> CostModel {
        CostModel {
            latency_s: 0.05,
            bytes_per_s: 1_000_000.0,
        }
    }

    /// A zero-cost model (pure byte counting).
    pub fn free() -> CostModel {
        CostModel {
            latency_s: 0.0,
            bytes_per_s: f64::INFINITY,
        }
    }

    /// Simulated seconds to move `bytes` over this link.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bytes_per_s
    }
}

/// Counters for one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkStats {
    /// Messages sent over the link.
    pub messages: u64,
    /// Total framed bytes sent.
    pub bytes: u64,
    /// Simulated seconds spent on this link.
    pub sim_seconds: f64,
}

impl LinkStats {
    fn record(&mut self, bytes: usize, seconds: f64) {
        self.messages += 1;
        self.bytes += bytes as u64;
        self.sim_seconds += seconds;
    }
}

/// Counters for the chunked-transfer continuation on one directed link:
/// how much of the link's traffic flowed as `FetchChunk` payload chunks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChunkFlowStats {
    /// Payload chunks served over the link.
    pub chunks: u64,
    /// Encoded payload bytes across those chunks.
    pub bytes: u64,
    /// Table rows carried across those chunks.
    pub rows: u64,
}

impl ChunkFlowStats {
    fn record(&mut self, bytes: usize, rows: usize) {
        self.chunks += 1;
        self.bytes += bytes as u64;
        self.rows += rows as u64;
    }
}

/// Retry accounting for one directed link: attempts beyond the first,
/// plus the simulated seconds spent backing off between them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetryStats {
    /// Re-sends after a retryable failure (attempt 2 and later).
    pub retries: u64,
    /// Simulated seconds waited in exponential backoff.
    pub backoff_seconds: f64,
}

impl RetryStats {
    fn record(&mut self, backoff_seconds: f64) {
        self.retries += 1;
        self.backoff_seconds += backoff_seconds;
    }
}

/// Per-tenant counters for the asynchronous job service: admission
/// outcomes, simulated queue-wait and run time, and the contention
/// tallies the fairness assertions read (how often the tenant had a
/// backlog while admission slots were being granted, and how many of
/// those grants it won).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantJobStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Submissions refused by the admission controller (quota/queue full).
    pub rejected: u64,
    /// Jobs admitted from the queue into the execution pool.
    pub admitted: u64,
    /// Jobs that finished with a committed result.
    pub succeeded: u64,
    /// Jobs that finished with an error.
    pub failed: u64,
    /// Jobs cancelled by their owner.
    pub cancelled: u64,
    /// Jobs whose leased state was reclaimed by the janitor.
    pub expired: u64,
    /// Simulated seconds spent queued (submission → admission), summed.
    pub wait_seconds: f64,
    /// Simulated seconds spent executing (admission → terminal), summed.
    pub run_seconds: f64,
    /// Admission rounds in which this tenant had queued work while at
    /// least one other tenant did too.
    pub contended_rounds: u64,
    /// Of those contended rounds, how many this tenant won.
    pub admitted_contended: u64,
}

impl TenantJobStats {
    fn absorb(&mut self, other: &TenantJobStats) {
        self.submitted += other.submitted;
        self.rejected += other.rejected;
        self.admitted += other.admitted;
        self.succeeded += other.succeeded;
        self.failed += other.failed;
        self.cancelled += other.cancelled;
        self.expired += other.expired;
        self.wait_seconds += other.wait_seconds;
        self.run_seconds += other.run_seconds;
        self.contended_rounds += other.contended_rounds;
        self.admitted_contended += other.admitted_contended;
    }

    /// Jobs that reached a terminal state.
    pub fn terminal(&self) -> u64 {
        self.succeeded + self.failed + self.cancelled + self.expired
    }

    /// Fraction of contended admission rounds this tenant won (`None`
    /// until it has actually contended).
    pub fn contended_share(&self) -> Option<f64> {
        if self.contended_rounds == 0 {
            None
        } else {
            Some(self.admitted_contended as f64 / self.contended_rounds as f64)
        }
    }
}

/// Aggregated network metrics: per-directed-link and total.
#[derive(Debug, Clone, Default)]
pub struct NetworkMetrics {
    links: HashMap<(String, String), LinkStats>,
    total: LinkStats,
    chunk_flows: HashMap<(String, String), ChunkFlowStats>,
    chunk_total: ChunkFlowStats,
    retries: HashMap<(String, String), RetryStats>,
    retry_total: RetryStats,
    // BTreeMap: fault tallies are read far more often than written and
    // reports want them sorted.
    faults: BTreeMap<(String, String, String), u64>,
    // Survivability events that happen *at* a host rather than on a link:
    // lease grants/renewals/expiries, checkpoint releases, portal
    // replan/resume/degrade decisions. Sorted for deterministic reports.
    node_events: BTreeMap<(String, String), u64>,
    // Job-service accounting keyed by tenant id. Sorted so fairness
    // reports are deterministic.
    jobs: BTreeMap<String, TenantJobStats>,
    // Best-effort cleanup calls that failed: a checkpoint release or a
    // lease renewal the caller could not deliver. The resource is not
    // lost — the holder's janitor reclaims it at TTL — but the failure
    // must be visible, not swallowed: a rising tally here means leases
    // are draining by timeout instead of by release.
    release_failures: u64,
    renew_failures: u64,
}

impl NetworkMetrics {
    /// Empty counters.
    pub fn new() -> NetworkMetrics {
        NetworkMetrics::default()
    }

    /// Records one message of `bytes` from `from` to `to`.
    pub fn record(&mut self, from: &str, to: &str, bytes: usize, model: &CostModel) {
        let seconds = model.transfer_time(bytes);
        self.links
            .entry((from.to_string(), to.to_string()))
            .or_default()
            .record(bytes, seconds);
        self.total.record(bytes, seconds);
    }

    /// Records one chunked-transfer payload chunk of `bytes` / `rows`
    /// flowing from `from` to `to`. The chunk's framed message is already
    /// counted by [`NetworkMetrics::record`]; this tracks the transfer
    /// pattern itself (chunk counts, payload bytes, rows) so experiments
    /// can compare monolithic and pipelined transfers.
    pub fn record_chunk(&mut self, from: &str, to: &str, bytes: usize, rows: usize) {
        self.chunk_flows
            .entry((from.to_string(), to.to_string()))
            .or_default()
            .record(bytes, rows);
        self.chunk_total.record(bytes, rows);
    }

    /// Chunk-flow stats for one directed link.
    pub fn chunk_flow(&self, from: &str, to: &str) -> ChunkFlowStats {
        self.chunk_flows
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or_default()
    }

    /// All chunk flows, sorted for deterministic reporting.
    pub fn chunk_flows(&self) -> Vec<((String, String), ChunkFlowStats)> {
        let mut v: Vec<_> = self
            .chunk_flows
            .iter()
            .map(|(k, s)| (k.clone(), *s))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Grand chunk-flow totals.
    pub fn chunk_total(&self) -> ChunkFlowStats {
        self.chunk_total
    }

    /// Records one retry of a call `from → to` after `backoff_seconds`
    /// of simulated exponential backoff.
    pub fn record_retry(&mut self, from: &str, to: &str, backoff_seconds: f64) {
        self.retries
            .entry((from.to_string(), to.to_string()))
            .or_default()
            .record(backoff_seconds);
        self.retry_total.record(backoff_seconds);
    }

    /// Retry stats for one directed link.
    pub fn retry(&self, from: &str, to: &str) -> RetryStats {
        self.retries
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or_default()
    }

    /// All per-link retry stats, sorted for deterministic reporting.
    pub fn retries(&self) -> Vec<((String, String), RetryStats)> {
        let mut v: Vec<_> = self.retries.iter().map(|(k, s)| (k.clone(), *s)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Grand retry totals.
    pub fn retry_total(&self) -> RetryStats {
        self.retry_total
    }

    /// Tallies one fault event of `kind` observed on the link `from → to`
    /// (an injected network fault, or a recorded recovery action such as
    /// a transfer abort).
    pub fn record_fault(&mut self, from: &str, to: &str, kind: &str) {
        *self
            .faults
            .entry((from.to_string(), to.to_string(), kind.to_string()))
            .or_default() += 1;
    }

    /// Count of one fault kind on one directed link.
    pub fn fault_count(&self, from: &str, to: &str, kind: &str) -> u64 {
        self.faults
            .get(&(from.to_string(), to.to_string(), kind.to_string()))
            .copied()
            .unwrap_or_default()
    }

    /// All fault tallies as `((from, to, kind), count)`, sorted.
    pub fn faults(&self) -> Vec<((String, String, String), u64)> {
        self.faults.iter().map(|(k, n)| (k.clone(), *n)).collect()
    }

    /// Total fault events across all links and kinds.
    pub fn fault_total(&self) -> u64 {
        self.faults.values().sum()
    }

    /// Tallies one survivability event of `kind` observed at `host` (a
    /// lease grant/renewal/expiry, a checkpoint release, or a portal
    /// replan/resume/degrade decision).
    pub fn record_node_event(&mut self, host: &str, kind: &str) {
        *self
            .node_events
            .entry((host.to_string(), kind.to_string()))
            .or_default() += 1;
    }

    /// Count of one node-event kind at one host.
    pub fn node_event_count(&self, host: &str, kind: &str) -> u64 {
        self.node_events
            .get(&(host.to_string(), kind.to_string()))
            .copied()
            .unwrap_or_default()
    }

    /// Total count of one node-event kind across all hosts.
    pub fn node_event_total(&self, kind: &str) -> u64 {
        self.node_events
            .iter()
            .filter(|((_, k), _)| k == kind)
            .map(|(_, n)| *n)
            .sum()
    }

    /// All node-event tallies as `((host, kind), count)`, sorted.
    pub fn node_events(&self) -> Vec<((String, String), u64)> {
        self.node_events
            .iter()
            .map(|(k, n)| (k.clone(), *n))
            .collect()
    }

    /// Records one failed best-effort checkpoint release: the lease will
    /// drain by TTL instead.
    pub fn record_release_failure(&mut self) {
        self.release_failures += 1;
    }

    /// Records one failed lease renewal: the lease keeps its current
    /// deadline and may lapse before its owner returns.
    pub fn record_renew_failure(&mut self) {
        self.renew_failures += 1;
    }

    /// Checkpoint releases that could not be delivered.
    pub fn release_failures(&self) -> u64 {
        self.release_failures
    }

    /// Lease renewals that could not be delivered.
    pub fn renew_failures(&self) -> u64 {
        self.renew_failures
    }

    /// Records one job accepted into `tenant`'s queue.
    pub fn record_job_submitted(&mut self, tenant: &str) {
        self.jobs.entry(tenant.to_string()).or_default().submitted += 1;
    }

    /// Records one submission refused by the admission controller.
    pub fn record_job_rejected(&mut self, tenant: &str) {
        self.jobs.entry(tenant.to_string()).or_default().rejected += 1;
    }

    /// Records one job admitted into the execution pool after
    /// `wait_seconds` of simulated queue latency.
    pub fn record_job_admitted(&mut self, tenant: &str, wait_seconds: f64) {
        let s = self.jobs.entry(tenant.to_string()).or_default();
        s.admitted += 1;
        s.wait_seconds += wait_seconds;
    }

    /// Records one job reaching the terminal state `outcome`
    /// (`succeeded`, `failed`, `cancelled`, or `expired`) after
    /// `run_seconds` of simulated execution time.
    pub fn record_job_finished(&mut self, tenant: &str, outcome: &str, run_seconds: f64) {
        let s = self.jobs.entry(tenant.to_string()).or_default();
        match outcome {
            "succeeded" => s.succeeded += 1,
            "failed" => s.failed += 1,
            "cancelled" => s.cancelled += 1,
            _ => s.expired += 1,
        }
        s.run_seconds += run_seconds;
    }

    /// Reclassifies one previously-succeeded job as expired: its result
    /// lease lapsed before the owner fetched it, so the janitor reclaimed
    /// the rows. Keeps [`TenantJobStats::terminal`] single-counted — the
    /// job moves between terminal buckets rather than landing in both.
    pub fn record_job_expired(&mut self, tenant: &str) {
        let s = self.jobs.entry(tenant.to_string()).or_default();
        s.expired += 1;
        s.succeeded = s.succeeded.saturating_sub(1);
    }

    /// Records one contended admission round for `tenant` (it had queued
    /// work while another tenant did too); `won` marks the tenant the
    /// scheduler actually admitted.
    pub fn record_job_contention(&mut self, tenant: &str, won: bool) {
        let s = self.jobs.entry(tenant.to_string()).or_default();
        s.contended_rounds += 1;
        if won {
            s.admitted_contended += 1;
        }
    }

    /// Job counters for one tenant.
    pub fn job_stats(&self, tenant: &str) -> TenantJobStats {
        self.jobs.get(tenant).copied().unwrap_or_default()
    }

    /// All per-tenant job counters, sorted by tenant id.
    pub fn job_stats_all(&self) -> Vec<(String, TenantJobStats)> {
        self.jobs.iter().map(|(k, s)| (k.clone(), *s)).collect()
    }

    /// Job counters summed across all tenants.
    pub fn job_total(&self) -> TenantJobStats {
        let mut total = TenantJobStats::default();
        for s in self.jobs.values() {
            total.absorb(s);
        }
        total
    }

    /// Adds injected latency (a fault-plan delay, not transfer time) to
    /// the link's and the total simulated clock.
    pub fn record_injected_latency(&mut self, from: &str, to: &str, seconds: f64) {
        self.links
            .entry((from.to_string(), to.to_string()))
            .or_default()
            .sim_seconds += seconds;
        self.total.sim_seconds += seconds;
    }

    /// Stats for one directed link.
    pub fn link(&self, from: &str, to: &str) -> LinkStats {
        self.links
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or_default()
    }

    /// All links, sorted for deterministic reporting.
    pub fn links(&self) -> Vec<((String, String), LinkStats)> {
        let mut v: Vec<_> = self.links.iter().map(|(k, s)| (k.clone(), *s)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Grand totals.
    pub fn total(&self) -> LinkStats {
        self.total
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.links.clear();
        self.total = LinkStats::default();
        self.chunk_flows.clear();
        self.chunk_total = ChunkFlowStats::default();
        self.retries.clear();
        self.retry_total = RetryStats::default();
        self.faults.clear();
        self.node_events.clear();
        self.jobs.clear();
        self.release_failures = 0;
        self.renew_failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_model() {
        let m = CostModel {
            latency_s: 0.1,
            bytes_per_s: 1000.0,
        };
        assert!((m.transfer_time(500) - 0.6).abs() < 1e-12);
        assert!((CostModel::free().transfer_time(1 << 30) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn per_link_accounting() {
        let mut m = NetworkMetrics::new();
        let model = CostModel::free();
        m.record("portal", "sdss", 100, &model);
        m.record("portal", "sdss", 50, &model);
        m.record("sdss", "twomass", 10, &model);
        assert_eq!(m.link("portal", "sdss").messages, 2);
        assert_eq!(m.link("portal", "sdss").bytes, 150);
        assert_eq!(m.link("sdss", "twomass").bytes, 10);
        // Directed: reverse link untouched.
        assert_eq!(m.link("sdss", "portal").messages, 0);
        assert_eq!(m.total().bytes, 160);
        assert_eq!(m.total().messages, 3);
    }

    #[test]
    fn chunk_flow_accounting() {
        let mut m = NetworkMetrics::new();
        m.record_chunk("sdss", "first", 100, 3);
        m.record_chunk("sdss", "first", 40, 1);
        m.record_chunk("first", "portal", 10, 1);
        assert_eq!(m.chunk_flow("sdss", "first").chunks, 2);
        assert_eq!(m.chunk_flow("sdss", "first").bytes, 140);
        assert_eq!(m.chunk_flow("sdss", "first").rows, 4);
        // Directed: reverse link untouched.
        assert_eq!(m.chunk_flow("first", "sdss"), ChunkFlowStats::default());
        assert_eq!(m.chunk_total().chunks, 3);
        assert_eq!(m.chunk_flows().len(), 2);
        m.reset();
        assert_eq!(m.chunk_total(), ChunkFlowStats::default());
        assert!(m.chunk_flows().is_empty());
    }

    #[test]
    fn retry_and_fault_accounting() {
        let mut m = NetworkMetrics::new();
        m.record_retry("portal", "sdss", 0.05);
        m.record_retry("portal", "sdss", 0.10);
        m.record_retry("sdss", "first", 0.05);
        assert_eq!(m.retry("portal", "sdss").retries, 2);
        assert!((m.retry("portal", "sdss").backoff_seconds - 0.15).abs() < 1e-12);
        // Directed: reverse link untouched.
        assert_eq!(m.retry("sdss", "portal"), RetryStats::default());
        assert_eq!(m.retry_total().retries, 3);
        assert_eq!(m.retries().len(), 2);

        m.record_fault("portal", "sdss", "host-down");
        m.record_fault("portal", "sdss", "host-down");
        m.record_fault("sdss", "first", "garbage-body");
        assert_eq!(m.fault_count("portal", "sdss", "host-down"), 2);
        assert_eq!(m.fault_count("portal", "sdss", "http-500"), 0);
        assert_eq!(m.fault_total(), 3);
        assert_eq!(m.faults().len(), 2);

        m.record_injected_latency("portal", "sdss", 0.5);
        assert!((m.link("portal", "sdss").sim_seconds - 0.5).abs() < 1e-12);
        assert!((m.total().sim_seconds - 0.5).abs() < 1e-12);
        // Injected latency is time, not a message.
        assert_eq!(m.link("portal", "sdss").messages, 0);

        m.reset();
        assert_eq!(m.retry_total(), RetryStats::default());
        assert_eq!(m.fault_total(), 0);
        assert!(m.faults().is_empty());
    }

    #[test]
    fn node_event_accounting() {
        let mut m = NetworkMetrics::new();
        m.record_node_event("sdss", "lease-granted");
        m.record_node_event("sdss", "lease-granted");
        m.record_node_event("sdss", "lease-expired");
        m.record_node_event("twomass", "lease-granted");
        assert_eq!(m.node_event_count("sdss", "lease-granted"), 2);
        assert_eq!(m.node_event_count("sdss", "replan"), 0);
        assert_eq!(m.node_event_total("lease-granted"), 3);
        assert_eq!(m.node_events().len(), 3);
        // Sorted by (host, kind).
        assert_eq!(m.node_events()[0].0 .0, "sdss");
        m.reset();
        assert_eq!(m.node_event_total("lease-granted"), 0);
        assert!(m.node_events().is_empty());
    }

    #[test]
    fn job_accounting() {
        let mut m = NetworkMetrics::new();
        m.record_job_submitted("alice");
        m.record_job_submitted("alice");
        m.record_job_rejected("alice");
        m.record_job_submitted("bob");
        m.record_job_admitted("alice", 2.5);
        m.record_job_admitted("alice", 1.5);
        m.record_job_finished("alice", "succeeded", 3.0);
        m.record_job_finished("alice", "failed", 1.0);
        m.record_job_finished("bob", "cancelled", 0.0);
        m.record_job_contention("alice", true);
        m.record_job_contention("bob", false);
        let a = m.job_stats("alice");
        assert_eq!(a.submitted, 2);
        assert_eq!(a.rejected, 1);
        assert_eq!(a.admitted, 2);
        assert!((a.wait_seconds - 4.0).abs() < 1e-12);
        assert!((a.run_seconds - 4.0).abs() < 1e-12);
        assert_eq!(a.succeeded, 1);
        assert_eq!(a.failed, 1);
        assert_eq!(a.terminal(), 2);
        assert_eq!(a.contended_share(), Some(1.0));
        assert_eq!(m.job_stats("bob").cancelled, 1);
        assert_eq!(m.job_stats("bob").contended_share(), Some(0.0));
        // Unknown tenants read as zero, and have no contended share.
        assert_eq!(m.job_stats("carol"), TenantJobStats::default());
        assert_eq!(m.job_stats("carol").contended_share(), None);
        // Sorted report + totals.
        let all = m.job_stats_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "alice");
        let total = m.job_total();
        assert_eq!(total.submitted, 3);
        assert_eq!(total.terminal(), 3);
        assert_eq!(total.contended_rounds, 2);
        m.reset();
        assert!(m.job_stats_all().is_empty());
        assert_eq!(m.job_total(), TenantJobStats::default());
    }

    #[test]
    fn cleanup_failure_accounting() {
        let mut m = NetworkMetrics::new();
        assert_eq!(m.release_failures(), 0);
        assert_eq!(m.renew_failures(), 0);
        m.record_release_failure();
        m.record_release_failure();
        m.record_renew_failure();
        assert_eq!(m.release_failures(), 2);
        assert_eq!(m.renew_failures(), 1);
        m.reset();
        assert_eq!(m.release_failures(), 0);
        assert_eq!(m.renew_failures(), 0);
    }

    #[test]
    fn links_sorted_and_reset() {
        let mut m = NetworkMetrics::new();
        let model = CostModel::internet_2002();
        m.record("b", "c", 1, &model);
        m.record("a", "b", 1, &model);
        let links = m.links();
        assert_eq!(links[0].0 .0, "a");
        assert!(m.total().sim_seconds > 0.0);
        m.reset();
        assert_eq!(m.total(), LinkStats::default());
        assert!(m.links().is_empty());
    }
}
