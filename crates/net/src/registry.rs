//! A UDDI-flavoured service registry.
//!
//! "Services need a unique service for discovering other services … UDDI
//! is the standard architecture for building such repositories" (§3.1).
//! The Portal uses a registry to advertise itself and to enumerate
//! archives wishing to join.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::url::Url;

/// A registered service: who provides what, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRecord {
    /// Provider name (e.g. the archive name).
    pub provider: String,
    /// Service category (e.g. "SkyNode", "Portal").
    pub category: String,
    /// Endpoint URL.
    pub url: Url,
    /// Free-form description (e.g. WSDL location).
    pub description: String,
}

/// An in-process service repository keyed by provider name.
#[derive(Default)]
pub struct ServiceRegistry {
    records: RwLock<HashMap<String, ServiceRecord>>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Registers (or re-registers) a service. Returns the previous record
    /// if the provider was already registered.
    pub fn register(&self, record: ServiceRecord) -> Option<ServiceRecord> {
        self.records.write().insert(record.provider.clone(), record)
    }

    /// Removes a provider's registration.
    pub fn unregister(&self, provider: &str) -> Option<ServiceRecord> {
        self.records.write().remove(provider)
    }

    /// Looks up a provider.
    pub fn find(&self, provider: &str) -> Option<ServiceRecord> {
        self.records.read().get(provider).cloned()
    }

    /// All services in a category, sorted by provider name.
    pub fn discover(&self, category: &str) -> Vec<ServiceRecord> {
        let mut v: Vec<ServiceRecord> = self
            .records
            .read()
            .values()
            .filter(|r| r.category == category)
            .cloned()
            .collect();
        v.sort_by(|a, b| a.provider.cmp(&b.provider));
        v
    }

    /// Number of registered providers.
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// Whether no provider is registered.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(provider: &str, category: &str) -> ServiceRecord {
        ServiceRecord {
            provider: provider.into(),
            category: category.into(),
            url: Url::new(provider, "/soap"),
            description: format!("{provider} services"),
        }
    }

    #[test]
    fn register_find_unregister() {
        let r = ServiceRegistry::new();
        assert!(r.is_empty());
        assert!(r.register(rec("sdss", "SkyNode")).is_none());
        assert_eq!(r.find("sdss").unwrap().category, "SkyNode");
        // Re-registration returns the old record.
        let old = r.register(rec("sdss", "SkyNode")).unwrap();
        assert_eq!(old.provider, "sdss");
        assert_eq!(r.len(), 1);
        assert!(r.unregister("sdss").is_some());
        assert!(r.find("sdss").is_none());
        assert!(r.unregister("sdss").is_none());
    }

    #[test]
    fn discover_by_category_sorted() {
        let r = ServiceRegistry::new();
        r.register(rec("twomass", "SkyNode"));
        r.register(rec("sdss", "SkyNode"));
        r.register(rec("portal", "Portal"));
        let nodes = r.discover("SkyNode");
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].provider, "sdss");
        assert_eq!(nodes[1].provider, "twomass");
        assert_eq!(r.discover("Portal").len(), 1);
        assert!(r.discover("Unknown").is_empty());
    }
}
