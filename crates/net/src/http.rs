//! HTTP/1.1 message framing.
//!
//! SOAP-over-HTTP needs only POST with a handful of headers — notably the
//! `SOAPAction` header the paper highlights ("HTTP messages containing
//! SOAP need to specify only one extra field 'Soap Action'", §3.1) — but
//! we frame messages fully so the byte accounting reflects real wire
//! sizes.

use bytes::Bytes;

use crate::NetError;

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// HTTP GET.
    Get,
    /// HTTP POST (all SOAP traffic).
    Post,
}

impl Method {
    /// The method's wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }

    /// Parses a wire method name.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

/// Response status codes the federation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatusCode {
    /// 200.
    Ok,
    /// 400.
    BadRequest,
    /// 404.
    NotFound,
    /// 500 — SOAP faults ride on it per the SOAP/HTTP binding.
    InternalServerError,
}

impl StatusCode {
    /// The numeric status code.
    pub fn code(self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::BadRequest => 400,
            StatusCode::NotFound => 404,
            StatusCode::InternalServerError => 500,
        }
    }

    /// The standard reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            StatusCode::Ok => "OK",
            StatusCode::BadRequest => "Bad Request",
            StatusCode::NotFound => "Not Found",
            StatusCode::InternalServerError => "Internal Server Error",
        }
    }

    /// The status for a numeric code, if modeled.
    pub fn from_code(code: u16) -> Option<StatusCode> {
        match code {
            200 => Some(StatusCode::Ok),
            400 => Some(StatusCode::BadRequest),
            404 => Some(StatusCode::NotFound),
            500 => Some(StatusCode::InternalServerError),
            _ => None,
        }
    }

    /// Whether this is a 2xx status.
    pub fn is_success(self) -> bool {
        self == StatusCode::Ok
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Request path (e.g. `/soap`).
    pub path: String,
    /// Headers, excluding Content-Length (derived from the body).
    pub headers: Vec<(String, String)>,
    /// Request body.
    pub body: Bytes,
}

impl HttpRequest {
    /// A POST carrying a SOAP envelope: sets Content-Type and SOAPAction.
    pub fn soap_post(path: impl Into<String>, action: &str, body: impl Into<Bytes>) -> Self {
        let body = body.into();
        HttpRequest {
            method: Method::Post,
            path: path.into(),
            headers: vec![
                ("Content-Type".into(), "text/xml; charset=utf-8".into()),
                ("SOAPAction".into(), format!("\"{action}\"")),
            ],
            body,
        }
    }

    /// Header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// The SOAPAction header with its quotes stripped.
    pub fn soap_action(&self) -> Option<&str> {
        self.header("SOAPAction").map(|v| v.trim_matches('"'))
    }

    /// Serializes to wire bytes (HTTP/1.1 framing with Content-Length).
    pub fn to_bytes(&self) -> Bytes {
        let mut out = String::new();
        out.push_str(self.method.as_str());
        out.push(' ');
        out.push_str(&self.path);
        out.push_str(" HTTP/1.1\r\n");
        for (k, v) in &self.headers {
            out.push_str(k);
            out.push_str(": ");
            out.push_str(v);
            out.push_str("\r\n");
        }
        out.push_str(&format!("Content-Length: {}\r\n\r\n", self.body.len()));
        let mut bytes = Vec::with_capacity(out.len() + self.body.len());
        bytes.extend_from_slice(out.as_bytes());
        bytes.extend_from_slice(&self.body);
        Bytes::from(bytes)
    }

    /// Parses wire bytes back into a request.
    pub fn parse(input: &[u8]) -> Result<HttpRequest, NetError> {
        let (head, body) = split_frame(input)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .and_then(Method::parse)
            .ok_or_else(|| bad("bad method"))?;
        let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();
        if parts.next() != Some("HTTP/1.1") {
            return Err(bad("expected HTTP/1.1"));
        }
        let (headers, content_length) = parse_headers(lines)?;
        check_length(body, content_length)?;
        Ok(HttpRequest {
            method,
            path,
            headers,
            body: Bytes::copy_from_slice(body),
        })
    }

    /// Total framed size in bytes — what the accounting records.
    pub fn wire_len(&self) -> usize {
        self.to_bytes().len()
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpResponse {
    /// Response status.
    pub status: StatusCode,
    /// Headers, excluding Content-Length (derived from the body).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Bytes,
}

impl HttpResponse {
    /// A 200 response with a `text/xml` body.
    pub fn ok(body: impl Into<Bytes>) -> HttpResponse {
        HttpResponse {
            status: StatusCode::Ok,
            headers: vec![("Content-Type".into(), "text/xml; charset=utf-8".into())],
            body: body.into(),
        }
    }

    /// A SOAP fault response (HTTP 500 per the SOAP binding).
    pub fn soap_fault(body: impl Into<Bytes>) -> HttpResponse {
        HttpResponse {
            status: StatusCode::InternalServerError,
            headers: vec![("Content-Type".into(), "text/xml; charset=utf-8".into())],
            body: body.into(),
        }
    }

    /// An empty 404 response.
    pub fn not_found() -> HttpResponse {
        HttpResponse {
            status: StatusCode::NotFound,
            headers: vec![],
            body: Bytes::new(),
        }
    }

    /// Header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Serializes to wire bytes (HTTP/1.1 framing with Content-Length).
    pub fn to_bytes(&self) -> Bytes {
        let mut out = String::new();
        out.push_str(&format!(
            "HTTP/1.1 {} {}\r\n",
            self.status.code(),
            self.status.reason()
        ));
        for (k, v) in &self.headers {
            out.push_str(k);
            out.push_str(": ");
            out.push_str(v);
            out.push_str("\r\n");
        }
        out.push_str(&format!("Content-Length: {}\r\n\r\n", self.body.len()));
        let mut bytes = Vec::with_capacity(out.len() + self.body.len());
        bytes.extend_from_slice(out.as_bytes());
        bytes.extend_from_slice(&self.body);
        Bytes::from(bytes)
    }

    /// Parses wire bytes back into a response.
    pub fn parse(input: &[u8]) -> Result<HttpResponse, NetError> {
        let (head, body) = split_frame(input)?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
        let mut parts = status_line.split(' ');
        if parts.next() != Some("HTTP/1.1") {
            return Err(bad("expected HTTP/1.1"));
        }
        let status = parts
            .next()
            .and_then(|c| c.parse::<u16>().ok())
            .and_then(StatusCode::from_code)
            .ok_or_else(|| bad("bad status code"))?;
        let (headers, content_length) = parse_headers(lines)?;
        check_length(body, content_length)?;
        Ok(HttpResponse {
            status,
            headers,
            body: Bytes::copy_from_slice(body),
        })
    }

    /// Total framed size in bytes — what the accounting records.
    pub fn wire_len(&self) -> usize {
        self.to_bytes().len()
    }
}

fn bad(detail: &str) -> NetError {
    NetError::BadFrame {
        detail: detail.to_string(),
    }
}

fn split_frame(input: &[u8]) -> Result<(&str, &[u8]), NetError> {
    let sep = input
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("missing header/body separator"))?;
    let head = std::str::from_utf8(&input[..sep]).map_err(|_| bad("non-UTF8 header block"))?;
    Ok((head, &input[sep + 4..]))
}

/// Parsed headers plus the declared Content-Length, if any.
type ParsedHeaders = (Vec<(String, String)>, Option<usize>);

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<ParsedHeaders, NetError> {
    let mut headers = Vec::new();
    let mut content_length = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or_else(|| bad("bad header line"))?;
        let k = k.trim();
        let v = v.trim();
        if k.eq_ignore_ascii_case("Content-Length") {
            content_length = Some(v.parse().map_err(|_| bad("bad Content-Length"))?);
        } else {
            headers.push((k.to_string(), v.to_string()));
        }
    }
    Ok((headers, content_length))
}

fn check_length(body: &[u8], declared: Option<usize>) -> Result<(), NetError> {
    match declared {
        Some(n) if n != body.len() => Err(bad(&format!(
            "Content-Length {n} does not match body length {}",
            body.len()
        ))),
        _ => Ok(()),
    }
}

fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = HttpRequest::soap_post("/soap", "urn:skyquery#CrossMatch", "<x/>");
        let bytes = req.to_bytes();
        let back = HttpRequest::parse(&bytes).unwrap();
        assert_eq!(back.method, Method::Post);
        assert_eq!(back.path, "/soap");
        assert_eq!(back.soap_action(), Some("urn:skyquery#CrossMatch"));
        assert_eq!(&back.body[..], b"<x/>");
    }

    #[test]
    fn response_roundtrip() {
        let resp = HttpResponse::ok("<r/>");
        let back = HttpResponse::parse(&resp.to_bytes()).unwrap();
        assert_eq!(back.status, StatusCode::Ok);
        assert_eq!(&back.body[..], b"<r/>");
        assert!(back.status.is_success());
    }

    #[test]
    fn fault_is_500() {
        let resp = HttpResponse::soap_fault("<fault/>");
        assert_eq!(resp.status.code(), 500);
        assert!(!resp.status.is_success());
        let back = HttpResponse::parse(&resp.to_bytes()).unwrap();
        assert_eq!(back.status, StatusCode::InternalServerError);
    }

    #[test]
    fn content_length_mismatch_rejected() {
        let mut bytes = HttpRequest::soap_post("/p", "a", "12345")
            .to_bytes()
            .to_vec();
        // Truncate the body.
        bytes.truncate(bytes.len() - 2);
        assert!(HttpRequest::parse(&bytes).is_err());
    }

    #[test]
    fn frame_without_separator_rejected() {
        assert!(HttpRequest::parse(b"POST / HTTP/1.1").is_err());
        assert!(HttpResponse::parse(b"junk").is_err());
    }

    #[test]
    fn bad_status_and_method_rejected() {
        assert!(HttpResponse::parse(b"HTTP/1.1 999 Weird\r\n\r\n").is_err());
        assert!(HttpRequest::parse(b"BREW /pot HTTP/1.1\r\n\r\n").is_err());
        assert!(HttpRequest::parse(b"POST /p HTTP/0.9\r\n\r\n").is_err());
    }

    #[test]
    fn wire_len_includes_framing() {
        let req = HttpRequest::soap_post("/soap", "a", "body");
        assert!(req.wire_len() > 4);
        assert_eq!(req.wire_len(), req.to_bytes().len());
    }

    #[test]
    fn header_lookup_case_insensitive() {
        let req = HttpRequest::soap_post("/p", "act", "");
        assert!(req.header("soapaction").is_some());
        assert!(req.header("SOAPACTION").is_some());
        assert!(req.header("nope").is_none());
    }

    #[test]
    fn binary_body_roundtrip() {
        let body: Vec<u8> = (0u8..=255).collect();
        let req = HttpRequest {
            method: Method::Post,
            path: "/bin".into(),
            headers: vec![],
            body: Bytes::from(body.clone()),
        };
        let back = HttpRequest::parse(&req.to_bytes()).unwrap();
        assert_eq!(&back.body[..], &body[..]);
    }
}
