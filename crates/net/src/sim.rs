//! The simulated network: endpoint registry and synchronous dispatch.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::http::{HttpRequest, HttpResponse};
use crate::metrics::{CostModel, NetworkMetrics};
use crate::url::Url;
use crate::NetError;

/// A network endpoint: something bound to a host that answers HTTP
/// requests. Handlers receive the network so they can make onward calls
/// (the SkyNode daisy chain).
pub trait Endpoint: Send + Sync {
    /// Answers one request; may call onward through `net`.
    fn handle(&self, net: &SimNetwork, req: HttpRequest) -> HttpResponse;
}

impl<F> Endpoint for F
where
    F: Fn(&SimNetwork, HttpRequest) -> HttpResponse + Send + Sync,
{
    fn handle(&self, net: &SimNetwork, req: HttpRequest) -> HttpResponse {
        self(net, req)
    }
}

/// The in-process Internet. Cloneable handle (`Arc` inside); all clones
/// share hosts and metrics.
#[derive(Clone)]
pub struct SimNetwork {
    inner: Arc<Inner>,
}

struct Inner {
    hosts: RwLock<HashMap<String, Arc<dyn Endpoint>>>,
    metrics: Mutex<NetworkMetrics>,
    model: CostModel,
}

impl SimNetwork {
    /// A network with pure byte counting (no simulated latency).
    pub fn new() -> SimNetwork {
        SimNetwork::with_model(CostModel::free())
    }

    /// A network with a latency/bandwidth model.
    pub fn with_model(model: CostModel) -> SimNetwork {
        SimNetwork {
            inner: Arc::new(Inner {
                hosts: RwLock::new(HashMap::new()),
                metrics: Mutex::new(NetworkMetrics::new()),
                model,
            }),
        }
    }

    /// Binds an endpoint to a host name, replacing any previous binding.
    pub fn bind(&self, host: impl Into<String>, endpoint: Arc<dyn Endpoint>) {
        self.inner.hosts.write().insert(host.into(), endpoint);
    }

    /// Removes a host (simulating an archive going offline).
    pub fn unbind(&self, host: &str) {
        self.inner.hosts.write().remove(host);
    }

    /// Currently bound host names, sorted.
    pub fn hosts(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.hosts.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Sends a request from `from` to the URL's host, recording request
    /// and response bytes on the two directed links. The endpoint runs
    /// synchronously on the caller's thread.
    pub fn send(&self, from: &str, url: &Url, req: HttpRequest) -> Result<HttpResponse, NetError> {
        let endpoint = self
            .inner
            .hosts
            .read()
            .get(&url.host)
            .cloned()
            .ok_or_else(|| NetError::HostUnreachable {
                host: url.host.clone(),
            })?;
        {
            let mut m = self.inner.metrics.lock();
            m.record(from, &url.host, req.wire_len(), &self.inner.model);
        }
        let resp = endpoint.handle(self, req);
        {
            let mut m = self.inner.metrics.lock();
            m.record(&url.host, from, resp.wire_len(), &self.inner.model);
        }
        Ok(resp)
    }

    /// Records one chunked-transfer payload chunk flowing `from → to`
    /// (see [`NetworkMetrics::record_chunk`]). Called by the transfer
    /// layer as it pulls `FetchChunk` continuations.
    pub fn record_chunk(&self, from: &str, to: &str, bytes: usize, rows: usize) {
        self.inner
            .metrics
            .lock()
            .record_chunk(from, to, bytes, rows);
    }

    /// Snapshot of the accumulated metrics.
    pub fn metrics(&self) -> NetworkMetrics {
        self.inner.metrics.lock().clone()
    }

    /// Clears accumulated metrics (start of a measured experiment).
    pub fn reset_metrics(&self) {
        self.inner.metrics.lock().reset();
    }
}

impl Default for SimNetwork {
    fn default() -> Self {
        SimNetwork::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::StatusCode;

    fn echo() -> Arc<dyn Endpoint> {
        Arc::new(|_net: &SimNetwork, req: HttpRequest| HttpResponse::ok(req.body))
    }

    #[test]
    fn bind_and_send() {
        let net = SimNetwork::new();
        net.bind("sdss", echo());
        let resp = net
            .send(
                "portal",
                &Url::parse("http://sdss/soap").unwrap(),
                HttpRequest::soap_post("/soap", "Query", "hello"),
            )
            .unwrap();
        assert_eq!(resp.status, StatusCode::Ok);
        assert_eq!(&resp.body[..], b"hello");
        let m = net.metrics();
        assert_eq!(m.link("portal", "sdss").messages, 1);
        assert_eq!(m.link("sdss", "portal").messages, 1);
        assert!(m.link("portal", "sdss").bytes > 5);
    }

    #[test]
    fn unreachable_host() {
        let net = SimNetwork::new();
        let err = net.send(
            "portal",
            &Url::parse("http://nowhere/x").unwrap(),
            HttpRequest::soap_post("/x", "a", ""),
        );
        assert!(matches!(err, Err(NetError::HostUnreachable { .. })));
    }

    #[test]
    fn unbind_takes_host_offline() {
        let net = SimNetwork::new();
        net.bind("n", echo());
        assert_eq!(net.hosts(), vec!["n".to_string()]);
        net.unbind("n");
        assert!(net
            .send(
                "c",
                &Url::parse("http://n/").unwrap(),
                HttpRequest::soap_post("/", "a", "")
            )
            .is_err());
    }

    #[test]
    fn chained_calls_are_accounted() {
        // a → b → c, handlers forward through the network.
        let net = SimNetwork::new();
        net.bind("c", echo());
        let forward = Arc::new(|net: &SimNetwork, req: HttpRequest| {
            let resp = net
                .send("b", &Url::parse("http://c/").unwrap(), req)
                .unwrap();
            HttpResponse::ok(resp.body)
        });
        net.bind("b", forward);
        let resp = net
            .send(
                "a",
                &Url::parse("http://b/").unwrap(),
                HttpRequest::soap_post("/", "x", "payload"),
            )
            .unwrap();
        assert_eq!(&resp.body[..], b"payload");
        let m = net.metrics();
        assert_eq!(m.link("a", "b").messages, 1);
        assert_eq!(m.link("b", "c").messages, 1);
        assert_eq!(m.link("c", "b").messages, 1);
        assert_eq!(m.link("b", "a").messages, 1);
        assert_eq!(m.total().messages, 4);
    }

    #[test]
    fn latency_model_accumulates_time() {
        let net = SimNetwork::with_model(CostModel {
            latency_s: 1.0,
            bytes_per_s: f64::INFINITY,
        });
        net.bind("n", echo());
        net.send(
            "c",
            &Url::parse("http://n/").unwrap(),
            HttpRequest::soap_post("/", "a", ""),
        )
        .unwrap();
        // Round trip = 2 messages = 2 simulated seconds.
        assert!((net.metrics().total().sim_seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clones_share_state() {
        let net = SimNetwork::new();
        let net2 = net.clone();
        net.bind("n", echo());
        assert_eq!(net2.hosts(), vec!["n".to_string()]);
        net2.send(
            "c",
            &Url::parse("http://n/").unwrap(),
            HttpRequest::soap_post("/", "a", ""),
        )
        .unwrap();
        assert_eq!(net.metrics().total().messages, 2);
        net.reset_metrics();
        assert_eq!(net2.metrics().total().messages, 0);
    }
}
