//! The simulated network: endpoint registry and synchronous dispatch.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::fault::{FaultInjector, FaultOutcome, FaultPlan, Interception};
use crate::http::{HttpRequest, HttpResponse, StatusCode};
use crate::metrics::{CostModel, NetworkMetrics};
use crate::url::Url;
use crate::NetError;

/// A network endpoint: something bound to a host that answers HTTP
/// requests. Handlers receive the network so they can make onward calls
/// (the SkyNode daisy chain).
pub trait Endpoint: Send + Sync {
    /// Answers one request; may call onward through `net`.
    fn handle(&self, net: &SimNetwork, req: HttpRequest) -> HttpResponse;
}

impl<F> Endpoint for F
where
    F: Fn(&SimNetwork, HttpRequest) -> HttpResponse + Send + Sync,
{
    fn handle(&self, net: &SimNetwork, req: HttpRequest) -> HttpResponse {
        self(net, req)
    }
}

/// The in-process Internet. Cloneable handle (`Arc` inside); all clones
/// share hosts and metrics.
#[derive(Clone)]
pub struct SimNetwork {
    inner: Arc<Inner>,
}

struct Inner {
    hosts: RwLock<HashMap<String, Arc<dyn Endpoint>>>,
    metrics: Mutex<NetworkMetrics>,
    model: CostModel,
    faults: Mutex<Option<FaultInjector>>,
}

impl SimNetwork {
    /// A network with pure byte counting (no simulated latency).
    pub fn new() -> SimNetwork {
        SimNetwork::with_model(CostModel::free())
    }

    /// A network with a latency/bandwidth model.
    pub fn with_model(model: CostModel) -> SimNetwork {
        SimNetwork {
            inner: Arc::new(Inner {
                hosts: RwLock::new(HashMap::new()),
                metrics: Mutex::new(NetworkMetrics::new()),
                model,
                faults: Mutex::new(None),
            }),
        }
    }

    /// Binds an endpoint to a host name, replacing any previous binding.
    pub fn bind(&self, host: impl Into<String>, endpoint: Arc<dyn Endpoint>) {
        self.inner.hosts.write().insert(host.into(), endpoint);
    }

    /// Removes a host (simulating an archive going offline).
    pub fn unbind(&self, host: &str) {
        self.inner.hosts.write().remove(host);
    }

    /// Currently bound host names, sorted.
    pub fn hosts(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.hosts.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Sends a request from `from` to the URL's host, recording request
    /// and response bytes on the two directed links. The endpoint runs
    /// synchronously on the caller's thread. An installed
    /// [`FaultPlan`] is consulted first and may fail the connection,
    /// short-circuit with a 500, delay the request, or corrupt the
    /// response on the way back — every injection is tallied in
    /// [`NetworkMetrics`].
    pub fn send(&self, from: &str, url: &Url, req: HttpRequest) -> Result<HttpResponse, NetError> {
        let verdict = self.intercept(from, &url.host, &req);
        if verdict.outcome == Some(FaultOutcome::HostDown) {
            return Err(NetError::HostUnreachable {
                host: url.host.clone(),
            });
        }
        let endpoint = self
            .inner
            .hosts
            .read()
            .get(&url.host)
            .cloned()
            .ok_or_else(|| NetError::HostUnreachable {
                host: url.host.clone(),
            })?;
        {
            let mut m = self.inner.metrics.lock();
            m.record(from, &url.host, req.wire_len(), &self.inner.model);
        }
        let resp = match verdict.outcome {
            // The service behind the front door is broken: the request is
            // consumed but a bare (non-SOAP) 500 comes back.
            Some(FaultOutcome::ServerError) => HttpResponse {
                status: StatusCode::InternalServerError,
                headers: vec![("Content-Type".into(), "text/plain".into())],
                body: Bytes::copy_from_slice(b"injected server error"),
            },
            _ => {
                let mut resp = endpoint.handle(self, req);
                match verdict.outcome {
                    Some(FaultOutcome::TruncateBody) => {
                        resp.body = Bytes::copy_from_slice(&resp.body[..resp.body.len() / 2]);
                    }
                    Some(FaultOutcome::GarbageBody) => {
                        resp.body = Bytes::copy_from_slice(&[0xFF, 0xFE, 0x00, 0xDE, 0xAD, 0xBE]);
                    }
                    _ => {}
                }
                resp
            }
        };
        {
            let mut m = self.inner.metrics.lock();
            m.record(&url.host, from, resp.wire_len(), &self.inner.model);
        }
        Ok(resp)
    }

    /// Runs the fault injector (if any) over one outgoing request,
    /// tallying fired rules and injected latency into the metrics.
    fn intercept(&self, from: &str, to_host: &str, req: &HttpRequest) -> Interception {
        let (verdict, fired) = match self.inner.faults.lock().as_mut() {
            Some(injector) => injector.intercept(to_host, req),
            None => return Interception::default(),
        };
        if !fired.is_empty() || verdict.latency_s > 0.0 {
            let mut m = self.inner.metrics.lock();
            for label in fired {
                m.record_fault(from, to_host, label);
            }
            if verdict.latency_s > 0.0 {
                m.record_injected_latency(from, to_host, verdict.latency_s);
            }
        }
        verdict
    }

    /// Installs a fault plan, replacing any previous one. An empty plan
    /// clears injection entirely.
    pub fn install_faults(&self, plan: FaultPlan) {
        *self.inner.faults.lock() = if plan.is_empty() {
            None
        } else {
            Some(FaultInjector::new(plan))
        };
    }

    /// Removes any installed fault plan (a healthy network again).
    pub fn clear_faults(&self) {
        *self.inner.faults.lock() = None;
    }

    /// Whether a fault plan with live rules is installed.
    pub fn has_faults(&self) -> bool {
        self.inner
            .faults
            .lock()
            .as_ref()
            .is_some_and(|inj| inj.is_live())
    }

    /// Records one retry of a call `from → to` after `backoff_seconds`
    /// of simulated backoff (see [`NetworkMetrics::record_retry`]).
    /// Called by the retry layer above; the simulated clock advances by
    /// the backoff instead of sleeping.
    pub fn record_retry(&self, from: &str, to: &str, backoff_seconds: f64) {
        let mut m = self.inner.metrics.lock();
        m.record_retry(from, to, backoff_seconds);
        m.record_injected_latency(from, to, backoff_seconds);
    }

    /// Tallies a fault event observed by a higher layer (e.g. a
    /// best-effort transfer abort) alongside the injected-fault counts.
    pub fn record_fault(&self, from: &str, to: &str, kind: &str) {
        self.inner.metrics.lock().record_fault(from, to, kind);
    }

    /// Records one chunked-transfer payload chunk flowing `from → to`
    /// (see [`NetworkMetrics::record_chunk`]). Called by the transfer
    /// layer as it pulls `FetchChunk` continuations.
    pub fn record_chunk(&self, from: &str, to: &str, bytes: usize, rows: usize) {
        self.inner
            .metrics
            .lock()
            .record_chunk(from, to, bytes, rows);
    }

    /// Tallies a survivability event at `host` (lease grant/renewal/
    /// expiry, checkpoint release, portal replan/resume/degrade) — see
    /// [`NetworkMetrics::record_node_event`].
    pub fn record_node_event(&self, host: &str, kind: &str) {
        self.inner.metrics.lock().record_node_event(host, kind);
    }

    /// Records one failed best-effort checkpoint release — see
    /// [`NetworkMetrics::record_release_failure`].
    pub fn record_release_failure(&self) {
        self.inner.metrics.lock().record_release_failure();
    }

    /// Records one failed lease renewal — see
    /// [`NetworkMetrics::record_renew_failure`].
    pub fn record_renew_failure(&self) {
        self.inner.metrics.lock().record_renew_failure();
    }

    /// Records one job accepted into `tenant`'s queue — see
    /// [`NetworkMetrics::record_job_submitted`].
    pub fn record_job_submitted(&self, tenant: &str) {
        self.inner.metrics.lock().record_job_submitted(tenant);
    }

    /// Records one submission refused by the admission controller — see
    /// [`NetworkMetrics::record_job_rejected`].
    pub fn record_job_rejected(&self, tenant: &str) {
        self.inner.metrics.lock().record_job_rejected(tenant);
    }

    /// Records one job admitted into the execution pool after
    /// `wait_seconds` of simulated queue latency — see
    /// [`NetworkMetrics::record_job_admitted`].
    pub fn record_job_admitted(&self, tenant: &str, wait_seconds: f64) {
        self.inner
            .metrics
            .lock()
            .record_job_admitted(tenant, wait_seconds);
    }

    /// Records one job reaching a terminal state — see
    /// [`NetworkMetrics::record_job_finished`].
    pub fn record_job_finished(&self, tenant: &str, outcome: &str, run_seconds: f64) {
        self.inner
            .metrics
            .lock()
            .record_job_finished(tenant, outcome, run_seconds);
    }

    /// Reclassifies one succeeded job as expired — see
    /// [`NetworkMetrics::record_job_expired`].
    pub fn record_job_expired(&self, tenant: &str) {
        self.inner.metrics.lock().record_job_expired(tenant);
    }

    /// Records one contended admission round for `tenant` — see
    /// [`NetworkMetrics::record_job_contention`].
    pub fn record_job_contention(&self, tenant: &str, won: bool) {
        self.inner.metrics.lock().record_job_contention(tenant, won);
    }

    /// The current simulated time in seconds: the total simulated seconds
    /// accumulated across all links (transfer time, injected latency, and
    /// retry backoff). Leases are charged against this clock.
    pub fn now_s(&self) -> f64 {
        self.inner.metrics.lock().total().sim_seconds
    }

    /// Advances the simulated clock by `seconds` without moving any
    /// bytes (experiments and tests use this to age leases past their
    /// TTL). Accounted as injected latency on a synthetic `clock` link.
    pub fn advance_clock(&self, seconds: f64) {
        self.inner
            .metrics
            .lock()
            .record_injected_latency("clock", "clock", seconds);
    }

    /// Snapshot of the accumulated metrics.
    pub fn metrics(&self) -> NetworkMetrics {
        self.inner.metrics.lock().clone()
    }

    /// Clears accumulated metrics (start of a measured experiment).
    pub fn reset_metrics(&self) {
        self.inner.metrics.lock().reset();
    }
}

impl Default for SimNetwork {
    fn default() -> Self {
        SimNetwork::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::StatusCode;

    fn echo() -> Arc<dyn Endpoint> {
        Arc::new(|_net: &SimNetwork, req: HttpRequest| HttpResponse::ok(req.body))
    }

    #[test]
    fn bind_and_send() {
        let net = SimNetwork::new();
        net.bind("sdss", echo());
        let resp = net
            .send(
                "portal",
                &Url::parse("http://sdss/soap").unwrap(),
                HttpRequest::soap_post("/soap", "Query", "hello"),
            )
            .unwrap();
        assert_eq!(resp.status, StatusCode::Ok);
        assert_eq!(&resp.body[..], b"hello");
        let m = net.metrics();
        assert_eq!(m.link("portal", "sdss").messages, 1);
        assert_eq!(m.link("sdss", "portal").messages, 1);
        assert!(m.link("portal", "sdss").bytes > 5);
    }

    #[test]
    fn unreachable_host() {
        let net = SimNetwork::new();
        let err = net.send(
            "portal",
            &Url::parse("http://nowhere/x").unwrap(),
            HttpRequest::soap_post("/x", "a", ""),
        );
        assert!(matches!(err, Err(NetError::HostUnreachable { .. })));
    }

    #[test]
    fn unbind_takes_host_offline() {
        let net = SimNetwork::new();
        net.bind("n", echo());
        assert_eq!(net.hosts(), vec!["n".to_string()]);
        net.unbind("n");
        assert!(net
            .send(
                "c",
                &Url::parse("http://n/").unwrap(),
                HttpRequest::soap_post("/", "a", "")
            )
            .is_err());
    }

    #[test]
    fn chained_calls_are_accounted() {
        // a → b → c, handlers forward through the network.
        let net = SimNetwork::new();
        net.bind("c", echo());
        let forward = Arc::new(|net: &SimNetwork, req: HttpRequest| {
            let resp = net
                .send("b", &Url::parse("http://c/").unwrap(), req)
                .unwrap();
            HttpResponse::ok(resp.body)
        });
        net.bind("b", forward);
        let resp = net
            .send(
                "a",
                &Url::parse("http://b/").unwrap(),
                HttpRequest::soap_post("/", "x", "payload"),
            )
            .unwrap();
        assert_eq!(&resp.body[..], b"payload");
        let m = net.metrics();
        assert_eq!(m.link("a", "b").messages, 1);
        assert_eq!(m.link("b", "c").messages, 1);
        assert_eq!(m.link("c", "b").messages, 1);
        assert_eq!(m.link("b", "a").messages, 1);
        assert_eq!(m.total().messages, 4);
    }

    #[test]
    fn latency_model_accumulates_time() {
        let net = SimNetwork::with_model(CostModel {
            latency_s: 1.0,
            bytes_per_s: f64::INFINITY,
        });
        net.bind("n", echo());
        net.send(
            "c",
            &Url::parse("http://n/").unwrap(),
            HttpRequest::soap_post("/", "a", ""),
        )
        .unwrap();
        // Round trip = 2 messages = 2 simulated seconds.
        assert!((net.metrics().total().sim_seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn host_down_fault_fails_bound_host_then_recovers() {
        let net = SimNetwork::new();
        net.bind("n", echo());
        net.install_faults(FaultPlan::new().host_down_for("n", 2));
        let url = Url::parse("http://n/").unwrap();
        for _ in 0..2 {
            let err = net.send("c", &url, HttpRequest::soap_post("/", "a", "x"));
            assert!(matches!(err, Err(NetError::HostUnreachable { .. })));
        }
        let resp = net
            .send("c", &url, HttpRequest::soap_post("/", "a", "x"))
            .unwrap();
        assert_eq!(resp.status, StatusCode::Ok);
        let m = net.metrics();
        assert_eq!(m.fault_count("c", "n", "host-down"), 2);
        // Failed connections move no bytes: only the surviving round trip.
        assert_eq!(m.link("c", "n").messages, 1);
        assert!(!net.has_faults());
    }

    #[test]
    fn server_error_fault_short_circuits_endpoint() {
        let net = SimNetwork::new();
        net.bind("n", echo());
        net.install_faults(FaultPlan::new().server_errors("n", 1));
        let url = Url::parse("http://n/").unwrap();
        let resp = net
            .send("c", &url, HttpRequest::soap_post("/", "a", "x"))
            .unwrap();
        assert_eq!(resp.status, StatusCode::InternalServerError);
        assert_eq!(&resp.body[..], b"injected server error");
        assert_eq!(net.metrics().fault_count("c", "n", "http-500"), 1);
        // The request is consumed and the 500 comes back: a round trip.
        assert_eq!(net.metrics().total().messages, 2);
    }

    #[test]
    fn body_corruption_faults() {
        let net = SimNetwork::new();
        net.bind("n", echo());
        let url = Url::parse("http://n/").unwrap();
        net.install_faults(FaultPlan::new().truncated_bodies("n", 1));
        let resp = net
            .send("c", &url, HttpRequest::soap_post("/", "a", "0123456789"))
            .unwrap();
        assert_eq!(&resp.body[..], b"01234");
        net.install_faults(FaultPlan::new().garbage_bodies("n", 1));
        let resp = net
            .send("c", &url, HttpRequest::soap_post("/", "a", "0123456789"))
            .unwrap();
        assert!(std::str::from_utf8(&resp.body).is_err());
        let m = net.metrics();
        assert_eq!(m.fault_count("c", "n", "truncated-body"), 1);
        assert_eq!(m.fault_count("c", "n", "garbage-body"), 1);
    }

    #[test]
    fn injected_latency_and_retry_accounting() {
        let net = SimNetwork::new();
        net.bind("n", echo());
        net.install_faults(FaultPlan::new().added_latency("n", 0.5));
        net.send(
            "c",
            &Url::parse("http://n/").unwrap(),
            HttpRequest::soap_post("/", "a", ""),
        )
        .unwrap();
        assert!((net.metrics().link("c", "n").sim_seconds - 0.5).abs() < 1e-12);
        net.record_retry("c", "n", 0.05);
        let m = net.metrics();
        assert_eq!(m.retry("c", "n").retries, 1);
        assert!((m.retry("c", "n").backoff_seconds - 0.05).abs() < 1e-12);
        // Backoff advances the simulated clock too.
        assert!((m.link("c", "n").sim_seconds - 0.55).abs() < 1e-12);
        net.clear_faults();
        assert!(!net.has_faults());
    }

    #[test]
    fn clones_share_state() {
        let net = SimNetwork::new();
        let net2 = net.clone();
        net.bind("n", echo());
        assert_eq!(net2.hosts(), vec!["n".to_string()]);
        net2.send(
            "c",
            &Url::parse("http://n/").unwrap(),
            HttpRequest::soap_post("/", "a", ""),
        )
        .unwrap();
        assert_eq!(net.metrics().total().messages, 2);
        net.reset_metrics();
        assert_eq!(net2.metrics().total().messages, 0);
    }
}
