//! Property tests for the network substrate: framing round-trips and
//! conserved byte accounting.

use std::sync::Arc;

use proptest::prelude::*;
use skyquery_net::{Endpoint, HttpRequest, HttpResponse, Method, SimNetwork, Url};

fn header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,12}".prop_filter("not content-length", |s| {
        !s.eq_ignore_ascii_case("Content-Length")
    })
}

fn header_value() -> impl Strategy<Value = String> {
    // No CR/LF or leading/trailing whitespace (stripped by parsing).
    "[a-zA-Z0-9 /;=_.\"#-]{0,30}".prop_map(|s| s.trim().to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_roundtrip(
        path in "/[a-z0-9/]{0,20}",
        headers in proptest::collection::vec((header_name(), header_value()), 0..5),
        body in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let req = HttpRequest {
            method: Method::Post,
            path,
            headers,
            body: body.into(),
        };
        let back = HttpRequest::parse(&req.to_bytes()).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_roundtrip(
        headers in proptest::collection::vec((header_name(), header_value()), 0..5),
        body in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let resp = HttpResponse {
            status: skyquery_net::StatusCode::Ok,
            headers,
            body: body.into(),
        };
        let back = HttpResponse::parse(&resp.to_bytes()).unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn url_roundtrip(host in "[a-z][a-z0-9.]{0,15}", path in "/[a-z0-9/]{0,15}") {
        let u = Url::new(host, path);
        prop_assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
    }

    #[test]
    fn byte_accounting_conserved(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..10),
    ) {
        // Total bytes recorded must equal the sum of request + response
        // wire lengths, message count must be 2 per send.
        let net = SimNetwork::new();
        let echo: Arc<dyn Endpoint> =
            Arc::new(|_n: &SimNetwork, req: HttpRequest| HttpResponse::ok(req.body));
        net.bind("server", echo);
        let url = Url::new("server", "/");
        let mut expected_bytes = 0u64;
        for body in &payloads {
            let req = HttpRequest {
                method: Method::Post,
                path: "/".into(),
                headers: vec![],
                body: body.clone().into(),
            };
            expected_bytes += req.wire_len() as u64;
            let resp = net.send("client", &url, req).unwrap();
            expected_bytes += resp.wire_len() as u64;
        }
        let total = net.metrics().total();
        prop_assert_eq!(total.messages, payloads.len() as u64 * 2);
        prop_assert_eq!(total.bytes, expected_bytes);
    }
}
