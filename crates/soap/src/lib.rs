#![warn(missing_docs)]
//! # skyquery-soap — the Web-services message layer
//!
//! SkyQuery interoperates "using the emerging Web services standard"
//! (paper §3.1): SOAP 1.1 envelopes over HTTP, services described by WSDL.
//! This crate is that layer, from scratch on top of `skyquery-xml`:
//!
//! * [`envelope`] — SOAP `Envelope`/`Header`/`Body` encoding and strict
//!   decoding;
//! * [`rpc`] — method-call encoding with typed parameters (including whole
//!   result tables), responses, and `Fault`s;
//! * [`wsdl`] — generation of service descriptions for the four SkyNode
//!   services and the Portal services;
//! * [`chunk`] — the paper's §6 workaround: "The XML parser at the SkyNode
//!   would run out of memory while parsing SOAP messages of about 10 MB.
//!   We worked around by dividing large data sets into smaller chunks."
//!   [`chunk::MessageLimits`] models the parser limit; [`chunk::split_table`]
//!   and [`chunk::Reassembler`] implement the workaround, and
//!   [`chunk::split_table_zoned`] is the zone-aware variant whose
//!   [`chunk::ChunkManifest`] lets a receiver pipeline zone processing
//!   with the `FetchChunk` continuation.

pub mod chunk;
pub mod envelope;
pub mod rpc;
pub mod wsdl;

pub use chunk::{ChunkHeader, ChunkInfo, ChunkManifest, MessageLimits, Reassembler, ZoneRange};
pub use envelope::Envelope;
pub use rpc::{RpcCall, RpcResponse, SoapFault, SoapValue};
pub use wsdl::{Operation, ParamDef, WsdlBuilder};

/// The SOAP 1.1 envelope namespace.
pub const SOAP_ENV_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";
/// The namespace for SkyQuery federation methods.
pub const SKYQUERY_NS: &str = "urn:skyquery";

/// Errors from SOAP processing.
#[derive(Debug, Clone, PartialEq)]
pub enum SoapError {
    /// Underlying XML failure.
    Xml(skyquery_xml::XmlError),
    /// The message is XML but not a valid SOAP envelope / call / response.
    Protocol {
        /// The violated expectation.
        detail: String,
    },
    /// A message exceeded the configured parser limit (the 10 MB problem).
    MessageTooLarge {
        /// The encoded message size, bytes.
        size: usize,
        /// The parser's limit, bytes.
        limit: usize,
    },
    /// Chunk reassembly failure (missing/duplicate/mismatched chunks).
    Chunking {
        /// What went wrong.
        detail: String,
    },
}

impl From<skyquery_xml::XmlError> for SoapError {
    fn from(e: skyquery_xml::XmlError) -> Self {
        SoapError::Xml(e)
    }
}

impl std::fmt::Display for SoapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoapError::Xml(e) => write!(f, "XML error: {e}"),
            SoapError::Protocol { detail } => write!(f, "SOAP protocol error: {detail}"),
            SoapError::MessageTooLarge { size, limit } => write!(
                f,
                "SOAP message of {size} bytes exceeds parser limit of {limit} bytes"
            ),
            SoapError::Chunking { detail } => write!(f, "chunk reassembly error: {detail}"),
        }
    }
}

impl std::error::Error for SoapError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SoapError>;
