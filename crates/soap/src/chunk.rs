//! Chunked transfer of large result tables.
//!
//! The deployed SkyQuery hit a hard wall: "The XML parser at the SkyNode
//! would run out of memory while parsing SOAP messages of about 10 MB. We
//! worked around by dividing large data sets into smaller chunks" (§6).
//!
//! [`MessageLimits`] models the parser's capacity; senders use
//! [`split_table`] to produce chunks whose encoded envelopes stay under
//! the limit, tagging each with a [`ChunkHeader`]; receivers feed chunks
//! to a [`Reassembler`], which verifies sequence completeness and schema
//! consistency before yielding the whole table.

use skyquery_xml::VoTable;

use crate::SoapError;

/// The receiving parser's message-size capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageLimits {
    /// Maximum accepted envelope size in bytes.
    pub max_message_bytes: usize,
}

impl MessageLimits {
    /// The historical limit the paper reports (~10 MB).
    pub fn paper_2002() -> MessageLimits {
        MessageLimits {
            max_message_bytes: 10 * 1024 * 1024,
        }
    }

    /// A small limit for tests and benches.
    pub fn tiny(max_message_bytes: usize) -> MessageLimits {
        MessageLimits { max_message_bytes }
    }

    /// Checks an encoded message against the limit, mimicking the 2002
    /// parser's failure mode (an error instead of an OOM).
    pub fn admit(&self, encoded_len: usize) -> Result<(), SoapError> {
        if encoded_len > self.max_message_bytes {
            Err(SoapError::MessageTooLarge {
                size: encoded_len,
                limit: self.max_message_bytes,
            })
        } else {
            Ok(())
        }
    }
}

/// Sequence metadata accompanying each chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Zero-based index of this chunk.
    pub index: usize,
    /// Total number of chunks in the transfer.
    pub total: usize,
    /// A transfer id so interleaved transfers cannot mix.
    pub transfer_id: u64,
}

/// Splits a table into chunks whose *encoded* size stays under the limit.
///
/// The row budget is estimated from the actual encoded size of the full
/// table and then verified per chunk; if a pathological row still exceeds
/// the limit on its own, an error is returned (there is no way to ship it
/// through the 2002 parser).
pub fn split_table(
    table: &VoTable,
    limits: MessageLimits,
    transfer_id: u64,
) -> Result<Vec<(ChunkHeader, VoTable)>, SoapError> {
    // Fast path: already small enough.
    let full_len = table.to_xml().len();
    if full_len <= limits.max_message_bytes {
        return Ok(vec![(
            ChunkHeader {
                index: 0,
                total: 1,
                transfer_id,
            },
            table.clone(),
        )]);
    }
    if table.row_count() == 0 {
        // An empty table that still exceeds the limit means the schema
        // alone is too large — nothing to chunk.
        return Err(SoapError::MessageTooLarge {
            size: full_len,
            limit: limits.max_message_bytes,
        });
    }
    // Estimate rows per chunk from average encoded row size, with headroom.
    let header_len = {
        let empty = VoTable::new(table.name.clone(), table.columns.clone());
        empty.to_xml().len()
    };
    let avg_row = (full_len - header_len).max(1) as f64 / table.row_count() as f64;
    let budget = limits.max_message_bytes.saturating_sub(header_len);
    let mut rows_per_chunk = ((budget as f64 / avg_row) * 0.9) as usize;
    rows_per_chunk = rows_per_chunk.max(1);

    loop {
        let tables = table.chunk_rows(rows_per_chunk);
        // Verify every chunk admits; shrink and retry otherwise.
        let mut ok = true;
        for t in &tables {
            if t.to_xml().len() > limits.max_message_bytes {
                ok = false;
                break;
            }
        }
        if ok {
            let total = tables.len();
            return Ok(tables
                .into_iter()
                .enumerate()
                .map(|(index, t)| {
                    (
                        ChunkHeader {
                            index,
                            total,
                            transfer_id,
                        },
                        t,
                    )
                })
                .collect());
        }
        if rows_per_chunk == 1 {
            // A single row exceeds the parser limit.
            return Err(SoapError::Chunking {
                detail: "a single row exceeds the message size limit".into(),
            });
        }
        rows_per_chunk /= 2;
    }
}

/// Reassembles chunks into the original table.
#[derive(Debug)]
pub struct Reassembler {
    transfer_id: u64,
    total: usize,
    received: Vec<Option<VoTable>>,
    count: usize,
}

impl Reassembler {
    /// Starts a transfer from its first observed chunk header.
    pub fn new(header: ChunkHeader) -> Reassembler {
        Reassembler {
            transfer_id: header.transfer_id,
            total: header.total.max(1),
            received: vec![None; header.total.max(1)],
            count: 0,
        }
    }

    /// Accepts one chunk. Returns `true` when the transfer is complete.
    pub fn accept(&mut self, header: ChunkHeader, table: VoTable) -> Result<bool, SoapError> {
        if header.transfer_id != self.transfer_id {
            return Err(SoapError::Chunking {
                detail: format!(
                    "chunk from transfer {} fed to reassembler for {}",
                    header.transfer_id, self.transfer_id
                ),
            });
        }
        if header.total != self.total {
            return Err(SoapError::Chunking {
                detail: format!(
                    "chunk declares total {} but transfer started with {}",
                    header.total, self.total
                ),
            });
        }
        if header.index >= self.total {
            return Err(SoapError::Chunking {
                detail: format!(
                    "chunk index {} out of range 0..{}",
                    header.index, self.total
                ),
            });
        }
        if self.received[header.index].is_some() {
            return Err(SoapError::Chunking {
                detail: format!("duplicate chunk {}", header.index),
            });
        }
        self.received[header.index] = Some(table);
        self.count += 1;
        Ok(self.count == self.total)
    }

    /// Whether all chunks have arrived.
    pub fn is_complete(&self) -> bool {
        self.count == self.total
    }

    /// Yields the reassembled table; errors if incomplete or if chunk
    /// schemas disagree.
    pub fn finish(self) -> Result<VoTable, SoapError> {
        if !self.is_complete() {
            return Err(SoapError::Chunking {
                detail: format!("transfer incomplete: {}/{} chunks", self.count, self.total),
            });
        }
        let tables: Vec<VoTable> = self.received.into_iter().map(Option::unwrap).collect();
        VoTable::concat(tables).map_err(SoapError::Xml)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyquery_xml::{VoColumn, VoType};

    fn big_table(rows: usize) -> VoTable {
        let mut t = VoTable::new(
            "partial",
            vec![
                VoColumn::new("id", VoType::Id),
                VoColumn::new("payload", VoType::Text),
            ],
        );
        for i in 0..rows {
            t.push_row(vec![
                Some(i.to_string()),
                Some(format!("row-{i}-{}", "x".repeat(40))),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn small_table_single_chunk() {
        let t = big_table(3);
        let chunks = split_table(&t, MessageLimits::paper_2002(), 1).unwrap();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].0.total, 1);
        assert_eq!(chunks[0].1, t);
    }

    #[test]
    fn large_table_chunks_under_limit_and_reassembles() {
        let t = big_table(200);
        let limits = MessageLimits::tiny(2000);
        let chunks = split_table(&t, limits, 42).unwrap();
        assert!(chunks.len() > 1, "expected multiple chunks");
        for (_, c) in &chunks {
            assert!(c.to_xml().len() <= limits.max_message_bytes);
        }
        let mut r = Reassembler::new(chunks[0].0);
        // Deliver out of order.
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        order.reverse();
        let mut complete = false;
        for i in order {
            complete = r.accept(chunks[i].0, chunks[i].1.clone()).unwrap();
        }
        assert!(complete);
        assert_eq!(r.finish().unwrap(), t);
    }

    #[test]
    fn oversize_unchunked_message_rejected() {
        let t = big_table(200);
        let limits = MessageLimits::tiny(2000);
        assert!(limits.admit(t.to_xml().len()).is_err());
        assert!(limits.admit(100).is_ok());
    }

    #[test]
    fn single_giant_row_cannot_ship() {
        let mut t = VoTable::new("x", vec![VoColumn::new("blob", VoType::Text)]);
        t.push_row(vec![Some("y".repeat(5000))]).unwrap();
        let err = split_table(&t, MessageLimits::tiny(1000), 0).unwrap_err();
        assert!(matches!(err, SoapError::Chunking { .. }));
    }

    #[test]
    fn reassembler_rejects_duplicates_and_mixups() {
        let t = big_table(100);
        let chunks = split_table(&t, MessageLimits::tiny(2000), 7).unwrap();
        let mut r = Reassembler::new(chunks[0].0);
        r.accept(chunks[0].0, chunks[0].1.clone()).unwrap();
        // Duplicate.
        assert!(r.accept(chunks[0].0, chunks[0].1.clone()).is_err());
        // Wrong transfer id.
        let mut alien = chunks[1].0;
        alien.transfer_id = 99;
        assert!(r.accept(alien, chunks[1].1.clone()).is_err());
        // Wrong declared total.
        let mut liar = chunks[1].0;
        liar.total += 1;
        assert!(r.accept(liar, chunks[1].1.clone()).is_err());
        // Premature finish.
        assert!(!r.is_complete());
        assert!(r.finish().is_err());
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = VoTable::new("empty", vec![VoColumn::new("id", VoType::Id)]);
        let chunks = split_table(&t, MessageLimits::paper_2002(), 0).unwrap();
        assert_eq!(chunks.len(), 1);
        let mut r = Reassembler::new(chunks[0].0);
        assert!(r.accept(chunks[0].0, chunks[0].1.clone()).unwrap());
        assert_eq!(r.finish().unwrap().row_count(), 0);
    }
}
