//! Chunked transfer of large result tables.
//!
//! The deployed SkyQuery hit a hard wall: "The XML parser at the SkyNode
//! would run out of memory while parsing SOAP messages of about 10 MB. We
//! worked around by dividing large data sets into smaller chunks" (§6).
//!
//! [`MessageLimits`] models the parser's capacity; senders use
//! [`split_table`] to produce chunks whose encoded envelopes stay under
//! the limit, tagging each with a [`ChunkHeader`]; receivers feed chunks
//! to a [`Reassembler`], which verifies sequence completeness and schema
//! consistency before yielding the whole table.

use skyquery_xml::{Element, VoColumn, VoTable, VoType};

use crate::SoapError;

/// Name of the synthetic column zone-aware chunks carry in first
/// position: each row's index in the original (pre-split) table, so the
/// receiver can restore the sender's row order after the zone sort.
pub const SEQ_COLUMN: &str = "__seq";

/// The receiving parser's message-size capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageLimits {
    /// Maximum accepted envelope size in bytes.
    pub max_message_bytes: usize,
}

impl MessageLimits {
    /// The historical limit the paper reports (~10 MB).
    pub fn paper_2002() -> MessageLimits {
        MessageLimits {
            max_message_bytes: 10 * 1024 * 1024,
        }
    }

    /// A small limit for tests and benches.
    pub fn tiny(max_message_bytes: usize) -> MessageLimits {
        MessageLimits { max_message_bytes }
    }

    /// Checks an encoded message against the limit, mimicking the 2002
    /// parser's failure mode (an error instead of an OOM).
    pub fn admit(&self, encoded_len: usize) -> Result<(), SoapError> {
        if encoded_len > self.max_message_bytes {
            Err(SoapError::MessageTooLarge {
                size: encoded_len,
                limit: self.max_message_bytes,
            })
        } else {
            Ok(())
        }
    }
}

/// Sequence metadata accompanying each chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Zero-based index of this chunk.
    pub index: usize,
    /// Total number of chunks in the transfer.
    pub total: usize,
    /// A transfer id so interleaved transfers cannot mix.
    pub transfer_id: u64,
}

/// The inclusive declination-zone range a chunk covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneRange {
    /// Lowest zone index present in the chunk.
    pub lo: u32,
    /// Highest zone index present in the chunk.
    pub hi: u32,
}

/// Per-chunk metadata advertised up front by a chunked transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Row count of the chunk.
    pub rows: usize,
    /// Zone range covered (None for legacy byte-budget chunks).
    pub zones: Option<ZoneRange>,
}

/// The typed envelope of a chunked transfer: everything a receiver needs
/// to drive the `FetchChunk` continuation — the transfer id, the chunk
/// count and per-chunk row counts, and (for zone-aware transfers) each
/// chunk's declination-zone range, so the receiver can start processing
/// completed zones before later chunks arrive.
///
/// Replaces the untyped `chunked`/`transfer_id`/`chunks` result triple
/// the Cross match response used to carry.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkManifest {
    /// Transfer id the chunks must be fetched under.
    pub transfer_id: u64,
    /// Total rows across all chunks.
    pub total_rows: usize,
    /// Zone height the sender sorted by; `Some` marks a zone-aware
    /// transfer whose chunks carry the [`SEQ_COLUMN`].
    pub zone_height_deg: Option<f64>,
    /// One entry per chunk, in fetch order.
    pub chunks: Vec<ChunkInfo>,
}

impl ChunkManifest {
    /// A manifest for a legacy byte-budget split (no zone sort, no
    /// sequence column).
    pub fn legacy(transfer_id: u64, chunk_rows: &[usize]) -> ChunkManifest {
        ChunkManifest {
            transfer_id,
            total_rows: chunk_rows.iter().sum(),
            zone_height_deg: None,
            chunks: chunk_rows
                .iter()
                .map(|&rows| ChunkInfo { rows, zones: None })
                .collect(),
        }
    }

    /// Number of chunks in the transfer.
    pub fn total_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Whether chunks are zone-sorted and carry the [`SEQ_COLUMN`].
    pub fn is_zoned(&self) -> bool {
        self.zone_height_deg.is_some()
    }

    /// Serializes to the wire element.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("ChunkManifest")
            .with_attr("transfer_id", self.transfer_id.to_string())
            .with_attr("total_rows", self.total_rows.to_string());
        if let Some(h) = self.zone_height_deg {
            e = e.with_attr("zone_height_deg", format!("{h:?}"));
        }
        for c in &self.chunks {
            let mut ce = Element::new("Chunk").with_attr("rows", c.rows.to_string());
            if let Some(z) = c.zones {
                ce = ce
                    .with_attr("zone_lo", z.lo.to_string())
                    .with_attr("zone_hi", z.hi.to_string());
            }
            e = e.with_child(ce);
        }
        e
    }

    /// Parses the wire element.
    pub fn from_element(e: &Element) -> Result<ChunkManifest, SoapError> {
        if e.name != "ChunkManifest" {
            return Err(SoapError::Protocol {
                detail: format!("expected ChunkManifest element, found {}", e.name),
            });
        }
        let attr_u64 = |name: &str| -> Result<u64, SoapError> {
            e.attr(name)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| SoapError::Protocol {
                    detail: format!("ChunkManifest missing attribute {name}"),
                })
        };
        let transfer_id = attr_u64("transfer_id")?;
        let total_rows = attr_u64("total_rows")? as usize;
        let zone_height_deg = match e.attr("zone_height_deg") {
            Some(v) => Some(v.parse::<f64>().map_err(|_| SoapError::Protocol {
                detail: "bad zone_height_deg in ChunkManifest".into(),
            })?),
            None => None,
        };
        let mut chunks = Vec::new();
        for ce in e.children_named("Chunk") {
            let rows = ce
                .attr("rows")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| SoapError::Protocol {
                    detail: "Chunk missing rows".into(),
                })?;
            let zones = match (ce.attr("zone_lo"), ce.attr("zone_hi")) {
                (Some(lo), Some(hi)) => Some(ZoneRange {
                    lo: lo.parse().map_err(|_| SoapError::Protocol {
                        detail: "bad zone_lo".into(),
                    })?,
                    hi: hi.parse().map_err(|_| SoapError::Protocol {
                        detail: "bad zone_hi".into(),
                    })?,
                }),
                _ => None,
            };
            chunks.push(ChunkInfo { rows, zones });
        }
        if chunks.is_empty() {
            return Err(SoapError::Protocol {
                detail: "ChunkManifest has no chunks".into(),
            });
        }
        if chunks.iter().map(|c| c.rows).sum::<usize>() != total_rows {
            return Err(SoapError::Protocol {
                detail: "ChunkManifest row counts do not sum to total_rows".into(),
            });
        }
        Ok(ChunkManifest {
            transfer_id,
            total_rows,
            zone_height_deg,
            chunks,
        })
    }
}

/// Splits a table into chunks whose *encoded* size stays under the limit.
///
/// The row budget is estimated from the actual encoded size of the full
/// table and then verified per chunk; if a pathological row still exceeds
/// the limit on its own, an error is returned (there is no way to ship it
/// through the 2002 parser).
pub fn split_table(
    table: &VoTable,
    limits: MessageLimits,
    transfer_id: u64,
) -> Result<Vec<(ChunkHeader, VoTable)>, SoapError> {
    // Fast path: already small enough.
    let full_len = table.to_xml().len();
    if full_len <= limits.max_message_bytes {
        return Ok(vec![(
            ChunkHeader {
                index: 0,
                total: 1,
                transfer_id,
            },
            table.clone(),
        )]);
    }
    if table.row_count() == 0 {
        // An empty table that still exceeds the limit means the schema
        // alone is too large — nothing to chunk.
        return Err(SoapError::MessageTooLarge {
            size: full_len,
            limit: limits.max_message_bytes,
        });
    }
    // Estimate rows per chunk from average encoded row size, with headroom.
    let header_len = {
        let empty = VoTable::new(table.name.clone(), table.columns.clone());
        empty.to_xml().len()
    };
    let avg_row = (full_len - header_len).max(1) as f64 / table.row_count() as f64;
    let budget = limits.max_message_bytes.saturating_sub(header_len);
    let mut rows_per_chunk = ((budget as f64 / avg_row) * 0.9) as usize;
    rows_per_chunk = rows_per_chunk.max(1);

    loop {
        let tables = table.chunk_rows(rows_per_chunk);
        // Verify every chunk admits; shrink and retry otherwise.
        let mut ok = true;
        for t in &tables {
            if t.to_xml().len() > limits.max_message_bytes {
                ok = false;
                break;
            }
        }
        if ok {
            let total = tables.len();
            return Ok(tables
                .into_iter()
                .enumerate()
                .map(|(index, t)| {
                    (
                        ChunkHeader {
                            index,
                            total,
                            transfer_id,
                        },
                        t,
                    )
                })
                .collect());
        }
        if rows_per_chunk == 1 {
            // A single row exceeds the parser limit.
            return Err(SoapError::Chunking {
                detail: "a single row exceeds the message size limit".into(),
            });
        }
        rows_per_chunk /= 2;
    }
}

/// Splits a table into zone-aligned chunks under the byte limit.
///
/// `zones[i]` is the declination-zone label of row `i` (computed by the
/// caller from each tuple's maximum-likelihood position). Rows are
/// stable-sorted by zone and packed greedily so that **no zone is split
/// across chunks** — a chunk holds whole zones, except when a single
/// zone alone exceeds the byte budget and must be cut mid-zone. Each
/// chunk carries a leading [`SEQ_COLUMN`] with the row's original index,
/// letting the receiver restore the sender's row order exactly.
///
/// Returns the [`ChunkManifest`] (with per-chunk [`ZoneRange`]s) and the
/// chunk tables in fetch order.
pub fn split_table_zoned(
    table: &VoTable,
    limits: MessageLimits,
    transfer_id: u64,
    zones: &[u32],
    zone_height_deg: f64,
) -> Result<(ChunkManifest, Vec<(ChunkHeader, VoTable)>), SoapError> {
    if zones.len() != table.row_count() {
        return Err(SoapError::Chunking {
            detail: format!(
                "{} zone labels for a {}-row table",
                zones.len(),
                table.row_count()
            ),
        });
    }
    // Stable sort keeps original row order within each zone.
    let mut order: Vec<usize> = (0..table.row_count()).collect();
    order.sort_by_key(|&i| zones[i]);

    let mut columns = vec![VoColumn::new(SEQ_COLUMN, VoType::Id)];
    columns.extend(table.columns.iter().cloned());
    let make_chunk = |idxs: &[usize]| -> VoTable {
        let mut t = VoTable::new(table.name.clone(), columns.clone());
        for &i in idxs {
            let mut row = Vec::with_capacity(columns.len());
            row.push(Some(i.to_string()));
            row.extend(table.rows[i].iter().cloned());
            t.push_row(row).expect("augmented row matches columns");
        }
        t
    };
    let finish = |tables: Vec<VoTable>,
                  groups: Vec<Vec<usize>>|
     -> (ChunkManifest, Vec<(ChunkHeader, VoTable)>) {
        let total = tables.len();
        let manifest = ChunkManifest {
            transfer_id,
            total_rows: table.row_count(),
            zone_height_deg: Some(zone_height_deg),
            chunks: groups
                .iter()
                .map(|idxs| ChunkInfo {
                    rows: idxs.len(),
                    zones: match (idxs.first(), idxs.last()) {
                        (Some(&a), Some(&b)) => Some(ZoneRange {
                            lo: zones[a],
                            hi: zones[b],
                        }),
                        _ => None,
                    },
                })
                .collect(),
        };
        let chunks = tables
            .into_iter()
            .enumerate()
            .map(|(index, t)| {
                (
                    ChunkHeader {
                        index,
                        total,
                        transfer_id,
                    },
                    t,
                )
            })
            .collect();
        (manifest, chunks)
    };

    // Fast path: the whole (seq-augmented) table fits in one chunk.
    let full = make_chunk(&order);
    let full_len = full.to_xml().len();
    if full_len <= limits.max_message_bytes {
        return Ok(finish(vec![full], vec![order]));
    }
    if table.row_count() == 0 {
        return Err(SoapError::MessageTooLarge {
            size: full_len,
            limit: limits.max_message_bytes,
        });
    }

    // Estimate a row budget from average encoded row size, then pack
    // whole zone groups and verify actual chunk sizes, shrinking on
    // failure exactly like `split_table`.
    let header_len = VoTable::new(table.name.clone(), columns.clone())
        .to_xml()
        .len();
    let avg_row = (full_len - header_len).max(1) as f64 / table.row_count() as f64;
    let budget = limits.max_message_bytes.saturating_sub(header_len);
    let mut rows_per_chunk = (((budget as f64 / avg_row) * 0.9) as usize).max(1);

    loop {
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < order.len() {
            // One zone's run of rows.
            let start = i;
            let zone = zones[order[i]];
            while i < order.len() && zones[order[i]] == zone {
                i += 1;
            }
            let run = &order[start..i];
            if run.len() >= rows_per_chunk {
                // The zone alone fills (or overfills) a chunk: flush and
                // cut the zone itself into budget-sized pieces.
                if !current.is_empty() {
                    groups.push(std::mem::take(&mut current));
                }
                for piece in run.chunks(rows_per_chunk) {
                    groups.push(piece.to_vec());
                }
            } else if current.len() + run.len() > rows_per_chunk {
                groups.push(std::mem::take(&mut current));
                current.extend_from_slice(run);
            } else {
                current.extend_from_slice(run);
            }
        }
        if !current.is_empty() {
            groups.push(current);
        }

        let tables: Vec<VoTable> = groups.iter().map(|idxs| make_chunk(idxs)).collect();
        if tables
            .iter()
            .all(|t| t.to_xml().len() <= limits.max_message_bytes)
        {
            return Ok(finish(tables, groups));
        }
        if rows_per_chunk == 1 {
            return Err(SoapError::Chunking {
                detail: "a single row exceeds the message size limit".into(),
            });
        }
        rows_per_chunk /= 2;
    }
}

/// Splits a zone-aware chunk into its original-row indices and the
/// payload table with the [`SEQ_COLUMN`] removed.
pub fn take_seq_column(table: &VoTable) -> Result<(Vec<u64>, VoTable), SoapError> {
    let first = table.columns.first();
    if first.map(|c| c.name.as_str()) != Some(SEQ_COLUMN) {
        return Err(SoapError::Chunking {
            detail: format!(
                "zone-aware chunk is missing the leading {SEQ_COLUMN} column (found {:?})",
                first.map(|c| c.name.clone())
            ),
        });
    }
    let mut seqs = Vec::with_capacity(table.row_count());
    let mut out = VoTable::new(table.name.clone(), table.columns[1..].to_vec());
    for row in &table.rows {
        let seq = row
            .first()
            .and_then(|c| c.as_deref())
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| SoapError::Chunking {
                detail: format!("chunk row has a malformed {SEQ_COLUMN} cell"),
            })?;
        seqs.push(seq);
        out.push_row(row[1..].to_vec()).map_err(SoapError::Xml)?;
    }
    Ok((seqs, out))
}

/// Reassembles chunks into the original table.
#[derive(Debug)]
pub struct Reassembler {
    transfer_id: u64,
    total: usize,
    received: Vec<Option<VoTable>>,
    count: usize,
}

impl Reassembler {
    /// Starts a transfer from its first observed chunk header.
    pub fn new(header: ChunkHeader) -> Reassembler {
        Reassembler {
            transfer_id: header.transfer_id,
            total: header.total.max(1),
            received: vec![None; header.total.max(1)],
            count: 0,
        }
    }

    /// Accepts one chunk. Returns `true` when the transfer is complete.
    pub fn accept(&mut self, header: ChunkHeader, table: VoTable) -> Result<bool, SoapError> {
        if header.transfer_id != self.transfer_id {
            return Err(SoapError::Chunking {
                detail: format!(
                    "chunk from transfer {} fed to reassembler for {}",
                    header.transfer_id, self.transfer_id
                ),
            });
        }
        if header.total != self.total {
            return Err(SoapError::Chunking {
                detail: format!(
                    "chunk declares total {} but transfer started with {}",
                    header.total, self.total
                ),
            });
        }
        if header.index >= self.total {
            return Err(SoapError::Chunking {
                detail: format!(
                    "chunk index {} out of range 0..{}",
                    header.index, self.total
                ),
            });
        }
        if self.received[header.index].is_some() {
            return Err(SoapError::Chunking {
                detail: format!("duplicate chunk {}", header.index),
            });
        }
        self.received[header.index] = Some(table);
        self.count += 1;
        Ok(self.count == self.total)
    }

    /// Whether all chunks have arrived.
    pub fn is_complete(&self) -> bool {
        self.count == self.total
    }

    /// Yields the reassembled table; errors if incomplete or if chunk
    /// schemas disagree.
    pub fn finish(self) -> Result<VoTable, SoapError> {
        if !self.is_complete() {
            return Err(SoapError::Chunking {
                detail: format!("transfer incomplete: {}/{} chunks", self.count, self.total),
            });
        }
        let tables: Vec<VoTable> = self.received.into_iter().map(Option::unwrap).collect();
        VoTable::concat(tables).map_err(SoapError::Xml)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyquery_xml::{VoColumn, VoType};

    fn big_table(rows: usize) -> VoTable {
        let mut t = VoTable::new(
            "partial",
            vec![
                VoColumn::new("id", VoType::Id),
                VoColumn::new("payload", VoType::Text),
            ],
        );
        for i in 0..rows {
            t.push_row(vec![
                Some(i.to_string()),
                Some(format!("row-{i}-{}", "x".repeat(40))),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn small_table_single_chunk() {
        let t = big_table(3);
        let chunks = split_table(&t, MessageLimits::paper_2002(), 1).unwrap();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].0.total, 1);
        assert_eq!(chunks[0].1, t);
    }

    #[test]
    fn large_table_chunks_under_limit_and_reassembles() {
        let t = big_table(200);
        let limits = MessageLimits::tiny(2000);
        let chunks = split_table(&t, limits, 42).unwrap();
        assert!(chunks.len() > 1, "expected multiple chunks");
        for (_, c) in &chunks {
            assert!(c.to_xml().len() <= limits.max_message_bytes);
        }
        let mut r = Reassembler::new(chunks[0].0);
        // Deliver out of order.
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        order.reverse();
        let mut complete = false;
        for i in order {
            complete = r.accept(chunks[i].0, chunks[i].1.clone()).unwrap();
        }
        assert!(complete);
        assert_eq!(r.finish().unwrap(), t);
    }

    #[test]
    fn oversize_unchunked_message_rejected() {
        let t = big_table(200);
        let limits = MessageLimits::tiny(2000);
        assert!(limits.admit(t.to_xml().len()).is_err());
        assert!(limits.admit(100).is_ok());
    }

    #[test]
    fn single_giant_row_cannot_ship() {
        let mut t = VoTable::new("x", vec![VoColumn::new("blob", VoType::Text)]);
        t.push_row(vec![Some("y".repeat(5000))]).unwrap();
        let err = split_table(&t, MessageLimits::tiny(1000), 0).unwrap_err();
        assert!(matches!(err, SoapError::Chunking { .. }));
    }

    #[test]
    fn reassembler_rejects_duplicates_and_mixups() {
        let t = big_table(100);
        let chunks = split_table(&t, MessageLimits::tiny(2000), 7).unwrap();
        let mut r = Reassembler::new(chunks[0].0);
        r.accept(chunks[0].0, chunks[0].1.clone()).unwrap();
        // Duplicate.
        assert!(r.accept(chunks[0].0, chunks[0].1.clone()).is_err());
        // Wrong transfer id.
        let mut alien = chunks[1].0;
        alien.transfer_id = 99;
        assert!(r.accept(alien, chunks[1].1.clone()).is_err());
        // Wrong declared total.
        let mut liar = chunks[1].0;
        liar.total += 1;
        assert!(r.accept(liar, chunks[1].1.clone()).is_err());
        // Premature finish.
        assert!(!r.is_complete());
        assert!(r.finish().is_err());
    }

    /// Zone labels cycling through a few zones so runs interleave.
    fn zone_labels(rows: usize, zones: u32) -> Vec<u32> {
        (0..rows)
            .map(|i| (i as u32 * zones) / rows as u32)
            .collect()
    }

    #[test]
    fn manifest_roundtrip() {
        let m = ChunkManifest {
            transfer_id: 17,
            total_rows: 120,
            zone_height_deg: Some(0.25),
            chunks: vec![
                ChunkInfo {
                    rows: 70,
                    zones: Some(ZoneRange { lo: 890, hi: 901 }),
                },
                ChunkInfo {
                    rows: 50,
                    zones: Some(ZoneRange { lo: 902, hi: 950 }),
                },
            ],
        };
        let back = ChunkManifest::from_element(&m.to_element()).unwrap();
        assert_eq!(back, m);
        assert!(back.is_zoned());
        assert_eq!(back.total_chunks(), 2);

        let legacy = ChunkManifest::legacy(3, &[40, 40, 7]);
        let back = ChunkManifest::from_element(&legacy.to_element()).unwrap();
        assert_eq!(back, legacy);
        assert!(!back.is_zoned());
        assert_eq!(back.total_rows, 87);
        assert_eq!(back.chunks[0].zones, None);
    }

    #[test]
    fn manifest_rejects_malformed() {
        use skyquery_xml::Element;
        assert!(ChunkManifest::from_element(&Element::new("NotAManifest")).is_err());
        // No chunks.
        let empty = Element::new("ChunkManifest")
            .with_attr("transfer_id", "1")
            .with_attr("total_rows", "0");
        assert!(ChunkManifest::from_element(&empty).is_err());
        // Rows don't sum.
        let bad = Element::new("ChunkManifest")
            .with_attr("transfer_id", "1")
            .with_attr("total_rows", "10")
            .with_child(Element::new("Chunk").with_attr("rows", "3"));
        assert!(ChunkManifest::from_element(&bad).is_err());
    }

    #[test]
    fn zoned_split_respects_zone_boundaries_and_restores_order() {
        let t = big_table(200);
        let zones = zone_labels(200, 9);
        let limits = MessageLimits::tiny(2500);
        let (manifest, chunks) = split_table_zoned(&t, limits, 5, &zones, 0.1).unwrap();
        assert!(chunks.len() > 1, "expected multiple chunks");
        assert_eq!(manifest.total_chunks(), chunks.len());
        assert_eq!(manifest.total_rows, 200);
        assert!(manifest.is_zoned());

        let mut rows_by_seq: Vec<Option<Vec<Option<String>>>> = vec![None; 200];
        let mut prev_hi: Option<u32> = None;
        for ((header, chunk), info) in chunks.iter().zip(&manifest.chunks) {
            // Every chunk admits.
            assert!(chunk.to_xml().len() <= limits.max_message_bytes);
            assert_eq!(header.total, chunks.len());
            assert_eq!(header.transfer_id, 5);
            assert_eq!(chunk.row_count(), info.rows);
            let (seqs, payload) = take_seq_column(chunk).unwrap();
            assert_eq!(payload.columns, t.columns);
            let z = info.zones.unwrap();
            for (seq, row) in seqs.iter().zip(&payload.rows) {
                let zone = zones[*seq as usize];
                assert!(z.lo <= zone && zone <= z.hi, "row outside declared range");
                assert!(rows_by_seq[*seq as usize].is_none(), "duplicate seq {seq}");
                rows_by_seq[*seq as usize] = Some(row.clone());
            }
            // Zone ranges ascend and never overlap: once a later chunk
            // starts, it never re-opens an earlier zone unless that zone
            // itself was cut (lo == previous hi is the mid-zone case).
            if let Some(p) = prev_hi {
                assert!(z.lo >= p, "zone {} reopened after {}", z.lo, p);
            }
            prev_hi = Some(z.hi);
        }
        // The union of sequence numbers is exactly 0..200, and replaying
        // rows by seq restores the original table byte for byte.
        let restored: Vec<Vec<Option<String>>> =
            rows_by_seq.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(restored, t.rows);
    }

    #[test]
    fn zoned_split_small_table_single_chunk() {
        let t = big_table(3);
        let (manifest, chunks) =
            split_table_zoned(&t, MessageLimits::paper_2002(), 1, &[2, 0, 1], 0.1).unwrap();
        assert_eq!(chunks.len(), 1);
        let (seqs, payload) = take_seq_column(&chunks[0].1).unwrap();
        // Rows come zone-sorted: zones 0, 1, 2 are original rows 1, 2, 0.
        assert_eq!(seqs, vec![1, 2, 0]);
        assert_eq!(payload.rows[0], t.rows[1]);
        assert_eq!(manifest.chunks[0].zones, Some(ZoneRange { lo: 0, hi: 2 }));
    }

    #[test]
    fn zoned_split_oversized_zone_is_cut() {
        // All 200 rows in one zone: chunks must cut mid-zone but still fit.
        let t = big_table(200);
        let limits = MessageLimits::tiny(2500);
        let (manifest, chunks) = split_table_zoned(&t, limits, 2, &vec![7; 200], 0.1).unwrap();
        assert!(chunks.len() > 1);
        for (_, c) in &chunks {
            assert!(c.to_xml().len() <= limits.max_message_bytes);
        }
        for info in &manifest.chunks {
            assert_eq!(info.zones, Some(ZoneRange { lo: 7, hi: 7 }));
        }
    }

    #[test]
    fn zoned_split_errors() {
        let t = big_table(10);
        // Label count mismatch.
        assert!(matches!(
            split_table_zoned(&t, MessageLimits::paper_2002(), 0, &[1, 2], 0.1),
            Err(SoapError::Chunking { .. })
        ));
        // Single giant row cannot ship.
        let mut giant = VoTable::new("x", vec![VoColumn::new("blob", VoType::Text)]);
        giant.push_row(vec![Some("y".repeat(5000))]).unwrap();
        assert!(matches!(
            split_table_zoned(&giant, MessageLimits::tiny(1000), 0, &[0], 0.1),
            Err(SoapError::Chunking { .. })
        ));
    }

    #[test]
    fn take_seq_column_rejects_plain_chunks() {
        let t = big_table(5);
        assert!(take_seq_column(&t).is_err());
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = VoTable::new("empty", vec![VoColumn::new("id", VoType::Id)]);
        let chunks = split_table(&t, MessageLimits::paper_2002(), 0).unwrap();
        assert_eq!(chunks.len(), 1);
        let mut r = Reassembler::new(chunks[0].0);
        assert!(r.accept(chunks[0].0, chunks[0].1.clone()).unwrap());
        assert_eq!(r.finish().unwrap().row_count(), 0);
    }
}
