//! WSDL service descriptions.
//!
//! "WSDL consists of two distinct parts — service definition and service
//! implementation" (§3.1). [`WsdlBuilder`] generates a document with both:
//! abstract messages/portType (definition) and the SOAP/HTTP binding with
//! a concrete endpoint address (implementation). SkyNodes publish one of
//! these for their four services; the Portal publishes one for
//! Registration and SkyQuery.

use skyquery_xml::Element;

use crate::{SoapError, SKYQUERY_NS};

/// A named, typed parameter in an operation signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDef {
    /// Parameter name.
    pub name: String,
    /// One of the `SoapValue` type names: string, long, double, boolean,
    /// table, xml, nil.
    pub type_name: String,
    /// Whether the caller may omit the parameter (rendered as
    /// `minOccurs="0"` on the message part). Defaults to required.
    pub optional: bool,
}

impl ParamDef {
    /// A named, typed, required parameter.
    pub fn new(name: impl Into<String>, type_name: impl Into<String>) -> ParamDef {
        ParamDef {
            name: name.into(),
            type_name: type_name.into(),
            optional: false,
        }
    }

    /// Builder: marks the parameter optional.
    pub fn optional(mut self) -> ParamDef {
        self.optional = true;
        self
    }
}

/// One operation (method) of a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Operation (method) name.
    pub name: String,
    /// Input parameters.
    pub inputs: Vec<ParamDef>,
    /// Output results.
    pub outputs: Vec<ParamDef>,
    /// Human-readable description, embedded in the WSDL.
    pub documentation: String,
}

impl Operation {
    /// An operation with no parameters yet.
    pub fn new(name: impl Into<String>) -> Operation {
        Operation {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            documentation: String::new(),
        }
    }

    /// Builder: adds an input parameter.
    pub fn input(mut self, name: &str, ty: &str) -> Operation {
        self.inputs.push(ParamDef::new(name, ty));
        self
    }

    /// Builder: adds an input parameter the caller may omit (the job
    /// service's priority/quota-class/idempotency-key inputs).
    pub fn input_opt(mut self, name: &str, ty: &str) -> Operation {
        self.inputs.push(ParamDef::new(name, ty).optional());
        self
    }

    /// Builder: adds an output result.
    pub fn output(mut self, name: &str, ty: &str) -> Operation {
        self.outputs.push(ParamDef::new(name, ty));
        self
    }

    /// Builder: sets the documentation text.
    pub fn doc(mut self, text: impl Into<String>) -> Operation {
        self.documentation = text.into();
        self
    }
}

/// Builds a WSDL document for one service.
#[derive(Debug, Clone)]
pub struct WsdlBuilder {
    service: String,
    endpoint: String,
    operations: Vec<Operation>,
}

impl WsdlBuilder {
    /// A builder for `service` bound at `endpoint`.
    pub fn new(service: impl Into<String>, endpoint: impl Into<String>) -> WsdlBuilder {
        WsdlBuilder {
            service: service.into(),
            endpoint: endpoint.into(),
            operations: Vec::new(),
        }
    }

    /// Builder: adds an operation.
    pub fn operation(mut self, op: Operation) -> WsdlBuilder {
        self.operations.push(op);
        self
    }

    /// Generates the document.
    pub fn build(&self) -> Element {
        let mut defs = Element::new("wsdl:definitions")
            .with_attr("xmlns:wsdl", "http://schemas.xmlsoap.org/wsdl/")
            .with_attr("xmlns:soap", "http://schemas.xmlsoap.org/wsdl/soap/")
            .with_attr("xmlns:tns", SKYQUERY_NS)
            .with_attr("name", self.service.clone())
            .with_attr("targetNamespace", SKYQUERY_NS);

        // Service definition: messages and portType.
        for op in &self.operations {
            let mut input =
                Element::new("wsdl:message").with_attr("name", format!("{}Input", op.name));
            for p in &op.inputs {
                let mut part = Element::new("wsdl:part")
                    .with_attr("name", p.name.clone())
                    .with_attr("type", format!("sq:{}", p.type_name));
                if p.optional {
                    part = part.with_attr("minOccurs", "0");
                }
                input = input.with_child(part);
            }
            defs = defs.with_child(input);
            let mut output =
                Element::new("wsdl:message").with_attr("name", format!("{}Output", op.name));
            for p in &op.outputs {
                output = output.with_child(
                    Element::new("wsdl:part")
                        .with_attr("name", p.name.clone())
                        .with_attr("type", format!("sq:{}", p.type_name)),
                );
            }
            defs = defs.with_child(output);
        }
        let mut port =
            Element::new("wsdl:portType").with_attr("name", format!("{}PortType", self.service));
        for op in &self.operations {
            let mut o = Element::new("wsdl:operation").with_attr("name", op.name.clone());
            if !op.documentation.is_empty() {
                o = o.with_child(
                    Element::new("wsdl:documentation").with_text(op.documentation.clone()),
                );
            }
            o = o
                .with_child(
                    Element::new("wsdl:input")
                        .with_attr("message", format!("tns:{}Input", op.name)),
                )
                .with_child(
                    Element::new("wsdl:output")
                        .with_attr("message", format!("tns:{}Output", op.name)),
                );
            port = port.with_child(o);
        }
        defs = defs.with_child(port);

        // Service implementation: SOAP binding over HTTP plus the port
        // address.
        let mut binding = Element::new("wsdl:binding")
            .with_attr("name", format!("{}SoapBinding", self.service))
            .with_attr("type", format!("tns:{}PortType", self.service))
            .with_child(
                Element::new("soap:binding")
                    .with_attr("style", "rpc")
                    .with_attr("transport", "http://schemas.xmlsoap.org/soap/http"),
            );
        for op in &self.operations {
            binding = binding.with_child(
                Element::new("wsdl:operation")
                    .with_attr("name", op.name.clone())
                    .with_child(
                        Element::new("soap:operation")
                            .with_attr("soapAction", format!("{SKYQUERY_NS}#{}", op.name)),
                    ),
            );
        }
        defs = defs.with_child(binding);
        defs.with_child(
            Element::new("wsdl:service")
                .with_attr("name", self.service.clone())
                .with_child(
                    Element::new("wsdl:port")
                        .with_attr("name", format!("{}Port", self.service))
                        .with_attr("binding", format!("tns:{}SoapBinding", self.service))
                        .with_child(
                            Element::new("soap:address")
                                .with_attr("location", self.endpoint.clone()),
                        ),
                ),
        )
    }

    /// The document as XML text.
    pub fn to_xml(&self) -> String {
        self.build().to_pretty_xml()
    }
}

/// Extracts operation names from a WSDL document (discovery-side helper).
pub fn operation_names(wsdl: &Element) -> Result<Vec<String>, SoapError> {
    let port = wsdl
        .children_named("portType")
        .next()
        .ok_or_else(|| SoapError::Protocol {
            detail: "WSDL has no portType".into(),
        })?;
    Ok(port
        .children_named("operation")
        .filter_map(|o| o.attr("name").map(String::from))
        .collect())
}

/// Extracts the endpoint address from a WSDL document.
pub fn endpoint_address(wsdl: &Element) -> Result<String, SoapError> {
    wsdl.children_named("service")
        .next()
        .and_then(|s| s.children_named("port").next())
        .and_then(|p| p.children_named("address").next())
        .and_then(|a| a.attr("location").map(String::from))
        .ok_or_else(|| SoapError::Protocol {
            detail: "WSDL has no soap:address location".into(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skynode_wsdl() -> WsdlBuilder {
        WsdlBuilder::new("SkyNode", "http://sdss.skyquery.net/soap")
            .operation(
                Operation::new("Information")
                    .output("sigma_arcsec", "double")
                    .output("primary_table", "string")
                    .doc("Astronomy-specific constants of this archive"),
            )
            .operation(Operation::new("Metadata").output("catalog", "xml"))
            .operation(
                Operation::new("Query")
                    .input("sql", "string")
                    .output("count", "long"),
            )
            .operation(
                Operation::new("CrossMatch")
                    .input("plan", "xml")
                    .input("step", "long")
                    .output("partial", "table"),
            )
    }

    #[test]
    fn document_structure() {
        let doc = skynode_wsdl().build();
        assert_eq!(doc.name, "wsdl:definitions");
        assert_eq!(
            operation_names(&doc).unwrap(),
            vec!["Information", "Metadata", "Query", "CrossMatch"]
        );
        assert_eq!(
            endpoint_address(&doc).unwrap(),
            "http://sdss.skyquery.net/soap"
        );
        // 2 messages per operation + portType + binding + service.
        assert_eq!(doc.children.len(), 4 * 2 + 3);
    }

    #[test]
    fn xml_parses_back() {
        let xml = skynode_wsdl().to_xml();
        let doc = Element::parse(&xml).unwrap();
        assert_eq!(operation_names(&doc).unwrap().len(), 4);
    }

    #[test]
    fn soap_actions_in_binding() {
        let doc = skynode_wsdl().build();
        let binding = doc.children_named("binding").next().unwrap();
        let action = binding
            .children_named("operation")
            .next()
            .unwrap()
            .children_named("operation")
            .next()
            .unwrap()
            .attr("soapAction")
            .unwrap();
        assert_eq!(action, "urn:skyquery#Information");
    }

    #[test]
    fn helpers_reject_malformed() {
        let empty = Element::new("wsdl:definitions");
        assert!(operation_names(&empty).is_err());
        assert!(endpoint_address(&empty).is_err());
    }

    #[test]
    fn documentation_embedded() {
        let doc = skynode_wsdl().build();
        let xml = doc.to_xml();
        assert!(xml.contains("Astronomy-specific constants"));
    }
}
