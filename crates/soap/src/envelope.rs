//! SOAP 1.1 envelope encoding and decoding.

use skyquery_xml::Element;

use crate::{SoapError, SOAP_ENV_NS};

/// A SOAP envelope: optional header, mandatory body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The single element inside `<soap:Header>`, if any.
    pub header: Option<Element>,
    /// The single element inside `<soap:Body>`.
    pub body: Element,
}

impl Envelope {
    /// Wraps a body payload.
    pub fn new(body: Element) -> Envelope {
        Envelope { header: None, body }
    }

    /// Adds a header block.
    pub fn with_header(mut self, header: Element) -> Envelope {
        self.header = Some(header);
        self
    }

    /// Serializes to the on-the-wire XML document.
    pub fn to_xml(&self) -> String {
        let mut env = Element::new("soap:Envelope").with_attr("xmlns:soap", SOAP_ENV_NS);
        if let Some(h) = &self.header {
            env = env.with_child(Element::new("soap:Header").with_child(h.clone()));
        }
        env = env.with_child(Element::new("soap:Body").with_child(self.body.clone()));
        env.to_xml()
    }

    /// Parses and validates a wire document.
    pub fn parse(xml: &str) -> Result<Envelope, SoapError> {
        let root = Element::parse(xml)?;
        if !name_is(&root.name, "Envelope") {
            return Err(SoapError::Protocol {
                detail: format!("root element is {}, not Envelope", root.name),
            });
        }
        // The namespace declaration must be present and correct.
        let ns_ok = root
            .attributes
            .iter()
            .any(|(k, v)| (k == "xmlns" || k.starts_with("xmlns:")) && v == SOAP_ENV_NS);
        if !ns_ok {
            return Err(SoapError::Protocol {
                detail: "missing SOAP envelope namespace".into(),
            });
        }
        let header = root
            .child("Header")
            .and_then(|h| h.children.first())
            .cloned();
        let body_el = root.child("Body").ok_or_else(|| SoapError::Protocol {
            detail: "envelope has no Body".into(),
        })?;
        let body = body_el
            .children
            .first()
            .cloned()
            .ok_or_else(|| SoapError::Protocol {
                detail: "Body is empty".into(),
            })?;
        if body_el.children.len() > 1 {
            return Err(SoapError::Protocol {
                detail: "Body carries more than one payload element".into(),
            });
        }
        Ok(Envelope { header, body })
    }
}

fn name_is(actual: &str, wanted: &str) -> bool {
    actual == wanted
        || actual
            .rsplit_once(':')
            .is_some_and(|(_, local)| local == wanted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let env = Envelope::new(
            Element::new("m:CrossMatch")
                .with_attr("xmlns:m", "urn:skyquery")
                .with_leaf("threshold", "3.5"),
        );
        let xml = env.to_xml();
        assert!(xml.starts_with("<soap:Envelope"));
        let back = Envelope::parse(&xml).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn header_preserved() {
        let env =
            Envelope::new(Element::new("x")).with_header(Element::new("TraceId").with_text("abc"));
        let back = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(back.header.unwrap().text, "abc");
    }

    #[test]
    fn rejects_non_envelope() {
        assert!(Envelope::parse("<NotSoap/>").is_err());
    }

    #[test]
    fn rejects_missing_namespace() {
        assert!(
            Envelope::parse("<soap:Envelope><soap:Body><x/></soap:Body></soap:Envelope>").is_err()
        );
    }

    #[test]
    fn rejects_empty_or_crowded_body() {
        let empty = format!(
            r#"<soap:Envelope xmlns:soap="{SOAP_ENV_NS}"><soap:Body></soap:Body></soap:Envelope>"#
        );
        assert!(Envelope::parse(&empty).is_err());
        let two = format!(
            r#"<soap:Envelope xmlns:soap="{SOAP_ENV_NS}"><soap:Body><a/><b/></soap:Body></soap:Envelope>"#
        );
        assert!(Envelope::parse(&two).is_err());
        let none = format!(r#"<soap:Envelope xmlns:soap="{SOAP_ENV_NS}"/>"#);
        assert!(Envelope::parse(&none).is_err());
    }

    #[test]
    fn accepts_default_namespace_form() {
        let xml = format!(r#"<Envelope xmlns="{SOAP_ENV_NS}"><Body><x/></Body></Envelope>"#);
        let env = Envelope::parse(&xml).unwrap();
        assert_eq!(env.body.name, "x");
    }
}
