//! SOAP RPC: typed method calls, responses, and faults.
//!
//! Calls are encoded in the RPC style of early SOAP stacks: the body
//! element is the method name in the service namespace, each parameter a
//! child element with an `xsi:type`-like `sq:type` attribute. Result
//! tables ride as embedded VOTable elements — "the SkyNode returns this
//! result, as a serialized XML encoded SOAP message" (§5.3).

use skyquery_xml::{Element, VoTable};

use crate::envelope::Envelope;
use crate::{SoapError, SKYQUERY_NS};

/// A typed RPC parameter or result value.
#[derive(Debug, Clone, PartialEq)]
pub enum SoapValue {
    /// A string parameter.
    Str(String),
    /// A signed 64-bit integer parameter.
    Int(i64),
    /// A 64-bit float parameter.
    Float(f64),
    /// A boolean parameter.
    Bool(bool),
    /// A whole result table.
    Table(VoTable),
    /// An arbitrary XML payload (schemas, plans).
    Xml(Element),
    /// Explicit nil.
    Null,
}

impl SoapValue {
    fn type_name(&self) -> &'static str {
        match self {
            SoapValue::Str(_) => "string",
            SoapValue::Int(_) => "long",
            SoapValue::Float(_) => "double",
            SoapValue::Bool(_) => "boolean",
            SoapValue::Table(_) => "table",
            SoapValue::Xml(_) => "xml",
            SoapValue::Null => "nil",
        }
    }

    fn encode_into(&self, name: &str) -> Element {
        let e = Element::new(name).with_attr("sq:type", self.type_name());
        match self {
            SoapValue::Str(s) => e.with_text(s.clone()),
            SoapValue::Int(i) => e.with_text(i.to_string()),
            SoapValue::Float(x) => e.with_text(format!("{x:?}")),
            SoapValue::Bool(b) => e.with_text(b.to_string()),
            SoapValue::Table(t) => e.with_child(t.to_element()),
            SoapValue::Xml(x) => e.with_child(x.clone()),
            SoapValue::Null => e,
        }
    }

    fn decode(e: &Element) -> Result<SoapValue, SoapError> {
        let ty = e.attr("sq:type").ok_or_else(|| SoapError::Protocol {
            detail: format!("parameter {} missing sq:type", e.name),
        })?;
        let parse_err = |what: &str| SoapError::Protocol {
            detail: format!("parameter {} is not a valid {what}: {:?}", e.name, e.text),
        };
        Ok(match ty {
            "string" => SoapValue::Str(e.text.clone()),
            "long" => SoapValue::Int(e.text.parse().map_err(|_| parse_err("long"))?),
            "double" => SoapValue::Float(e.text.parse().map_err(|_| parse_err("double"))?),
            "boolean" => SoapValue::Bool(e.text.parse().map_err(|_| parse_err("boolean"))?),
            "table" => {
                let t = e.children.first().ok_or_else(|| SoapError::Protocol {
                    detail: format!("table parameter {} has no VOTABLE child", e.name),
                })?;
                SoapValue::Table(VoTable::from_element(t)?)
            }
            "xml" => {
                let x = e
                    .children
                    .first()
                    .cloned()
                    .ok_or_else(|| SoapError::Protocol {
                        detail: format!("xml parameter {} has no child", e.name),
                    })?;
                SoapValue::Xml(x)
            }
            "nil" => SoapValue::Null,
            other => {
                return Err(SoapError::Protocol {
                    detail: format!("unknown parameter type {other}"),
                })
            }
        })
    }

    /// String view (`None` on type mismatch).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            SoapValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view (`None` on type mismatch).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            SoapValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: floats directly, integers widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            SoapValue::Float(x) => Some(*x),
            SoapValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean view (`None` on type mismatch).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            SoapValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Table view (`None` on type mismatch).
    pub fn as_table(&self) -> Option<&VoTable> {
        match self {
            SoapValue::Table(t) => Some(t),
            _ => None,
        }
    }

    /// XML-payload view (`None` on type mismatch).
    pub fn as_xml(&self) -> Option<&Element> {
        match self {
            SoapValue::Xml(x) => Some(x),
            _ => None,
        }
    }
}

/// An RPC method call.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcCall {
    /// The invoked method name.
    pub method: String,
    /// Named, typed parameters in call order.
    pub params: Vec<(String, SoapValue)>,
}

impl RpcCall {
    /// A call with no parameters yet.
    pub fn new(method: impl Into<String>) -> RpcCall {
        RpcCall {
            method: method.into(),
            params: Vec::new(),
        }
    }

    /// Builder: appends a parameter.
    pub fn param(mut self, name: impl Into<String>, value: SoapValue) -> RpcCall {
        self.params.push((name.into(), value));
        self
    }

    /// Parameter by name.
    pub fn get(&self, name: &str) -> Option<&SoapValue> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Required parameter, with a protocol error naming it when absent.
    pub fn require(&self, name: &str) -> Result<&SoapValue, SoapError> {
        self.get(name).ok_or_else(|| SoapError::Protocol {
            detail: format!("call {} missing parameter {name}", self.method),
        })
    }

    /// The `SOAPAction` header value for this call.
    pub fn soap_action(&self) -> String {
        format!("{SKYQUERY_NS}#{}", self.method)
    }

    /// Encodes to a wire XML document.
    pub fn to_xml(&self) -> String {
        let mut m = Element::new(format!("sq:{}", self.method)).with_attr("xmlns:sq", SKYQUERY_NS);
        for (name, value) in &self.params {
            m = m.with_child(value.encode_into(name));
        }
        Envelope::new(m).to_xml()
    }

    /// Decodes a wire document into a call.
    pub fn parse(xml: &str) -> Result<RpcCall, SoapError> {
        let env = Envelope::parse(xml)?;
        let method = env
            .body
            .name
            .rsplit_once(':')
            .map(|(_, local)| local)
            .unwrap_or(&env.body.name)
            .to_string();
        let mut params = Vec::new();
        for child in &env.body.children {
            params.push((child.name.clone(), SoapValue::decode(child)?));
        }
        Ok(RpcCall { method, params })
    }
}

/// A successful RPC response: the method name plus named results.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcResponse {
    /// The method this responds to.
    pub method: String,
    /// Named, typed results.
    pub results: Vec<(String, SoapValue)>,
}

impl RpcResponse {
    /// A response with no results yet.
    pub fn new(method: impl Into<String>) -> RpcResponse {
        RpcResponse {
            method: method.into(),
            results: Vec::new(),
        }
    }

    /// Builder: appends a named result.
    pub fn result(mut self, name: impl Into<String>, value: SoapValue) -> RpcResponse {
        self.results.push((name.into(), value));
        self
    }

    /// Result by name.
    pub fn get(&self, name: &str) -> Option<&SoapValue> {
        self.results.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Required result, with a protocol error naming it when absent.
    pub fn require(&self, name: &str) -> Result<&SoapValue, SoapError> {
        self.get(name).ok_or_else(|| SoapError::Protocol {
            detail: format!("response {} missing result {name}", self.method),
        })
    }

    /// Encodes to a wire XML document.
    pub fn to_xml(&self) -> String {
        let mut m =
            Element::new(format!("sq:{}Response", self.method)).with_attr("xmlns:sq", SKYQUERY_NS);
        for (name, value) in &self.results {
            m = m.with_child(value.encode_into(name));
        }
        Envelope::new(m).to_xml()
    }

    /// Decodes a wire document into either a response or a fault.
    pub fn parse(xml: &str) -> Result<std::result::Result<RpcResponse, SoapFault>, SoapError> {
        let env = Envelope::parse(xml)?;
        let local = env
            .body
            .name
            .rsplit_once(':')
            .map(|(_, l)| l)
            .unwrap_or(&env.body.name);
        if local == "Fault" {
            return Ok(Err(SoapFault::from_element(&env.body)?));
        }
        let method = local
            .strip_suffix("Response")
            .ok_or_else(|| SoapError::Protocol {
                detail: format!("body element {local} is neither a Response nor a Fault"),
            })?
            .to_string();
        let mut results = Vec::new();
        for child in &env.body.children {
            results.push((child.name.clone(), SoapValue::decode(child)?));
        }
        Ok(Ok(RpcResponse { method, results }))
    }
}

/// A SOAP 1.1 fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoapFault {
    /// `Client`, `Server`, etc.
    pub code: String,
    /// Human-readable fault string.
    pub message: String,
    /// Optional detail (e.g. the failing SkyNode).
    pub detail: String,
}

impl SoapFault {
    /// A `Server`-code fault (the service failed).
    pub fn server(message: impl Into<String>) -> SoapFault {
        SoapFault {
            code: "Server".into(),
            message: message.into(),
            detail: String::new(),
        }
    }

    /// A `Client`-code fault (the request was bad).
    pub fn client(message: impl Into<String>) -> SoapFault {
        SoapFault {
            code: "Client".into(),
            message: message.into(),
            detail: String::new(),
        }
    }

    /// Builder: attaches detail text.
    pub fn with_detail(mut self, detail: impl Into<String>) -> SoapFault {
        self.detail = detail.into();
        self
    }

    /// Encodes to a wire XML document (ridden on HTTP 500).
    pub fn to_xml(&self) -> String {
        let f = Element::new("soap:Fault")
            .with_leaf("faultcode", format!("soap:{}", self.code))
            .with_leaf("faultstring", self.message.clone())
            .with_leaf("detail", self.detail.clone());
        Envelope::new(f).to_xml()
    }

    fn from_element(e: &Element) -> Result<SoapFault, SoapError> {
        let code_raw = e.child_text("faultcode").map_err(SoapError::Xml)?;
        let code = code_raw
            .rsplit_once(':')
            .map(|(_, l)| l)
            .unwrap_or(code_raw)
            .to_string();
        let message = e
            .child_text("faultstring")
            .map_err(SoapError::Xml)?
            .to_string();
        let detail = e
            .child("detail")
            .map(|d| d.text.clone())
            .unwrap_or_default();
        Ok(SoapFault {
            code,
            message,
            detail,
        })
    }
}

impl std::fmt::Display for SoapFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SOAP fault [{}]: {}", self.code, self.message)?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyquery_xml::{VoColumn, VoType};

    fn table() -> VoTable {
        let mut t = VoTable::new(
            "partial",
            vec![
                VoColumn::new("id", VoType::Id),
                VoColumn::new("ra", VoType::Float),
            ],
        );
        t.push_row(vec![Some("7".into()), Some("185.25".into())])
            .unwrap();
        t
    }

    #[test]
    fn call_roundtrip_all_types() {
        let call = RpcCall::new("CrossMatch")
            .param(
                "plan",
                SoapValue::Xml(Element::new("Plan").with_leaf("step", "1")),
            )
            .param("threshold", SoapValue::Float(3.5))
            .param("depth", SoapValue::Int(12))
            .param("verbose", SoapValue::Bool(true))
            .param("note", SoapValue::Str("hello <world>".into()))
            .param("partial", SoapValue::Table(table()))
            .param("missing", SoapValue::Null);
        let back = RpcCall::parse(&call.to_xml()).unwrap();
        assert_eq!(back, call);
        assert_eq!(back.require("threshold").unwrap().as_f64(), Some(3.5));
        assert_eq!(back.require("depth").unwrap().as_i64(), Some(12));
        assert_eq!(
            back.get("partial").unwrap().as_table().unwrap().row_count(),
            1
        );
        assert!(back.require("nope").is_err());
    }

    #[test]
    fn soap_action_format() {
        assert_eq!(RpcCall::new("Query").soap_action(), "urn:skyquery#Query");
    }

    #[test]
    fn response_roundtrip() {
        let resp = RpcResponse::new("Query").result("count", SoapValue::Int(538));
        let parsed = RpcResponse::parse(&resp.to_xml()).unwrap().unwrap();
        assert_eq!(parsed, resp);
        assert_eq!(parsed.require("count").unwrap().as_i64(), Some(538));
    }

    #[test]
    fn fault_roundtrip() {
        let fault = SoapFault::server("archive offline").with_detail("host sdss unreachable");
        let parsed = RpcResponse::parse(&fault.to_xml()).unwrap().unwrap_err();
        assert_eq!(parsed, fault);
        assert!(parsed.to_string().contains("archive offline"));
    }

    #[test]
    fn response_parse_rejects_non_response() {
        let call = RpcCall::new("Query").to_xml();
        assert!(RpcResponse::parse(&call).is_err());
    }

    #[test]
    fn float_params_roundtrip_exactly() {
        let x = 0.1 + 0.2; // classic non-representable sum
        let call = RpcCall::new("M").param("x", SoapValue::Float(x));
        let back = RpcCall::parse(&call.to_xml()).unwrap();
        assert_eq!(back.get("x").unwrap().as_f64(), Some(x));
    }

    #[test]
    fn decode_rejects_bad_types() {
        let xml = RpcCall::new("M")
            .param("x", SoapValue::Int(1))
            .to_xml()
            .replace(">1<", ">one<");
        assert!(RpcCall::parse(&xml).is_err());
        let xml2 = RpcCall::new("M")
            .param("x", SoapValue::Int(1))
            .to_xml()
            .replace("sq:type=\"long\"", "sq:type=\"mystery\"");
        assert!(RpcCall::parse(&xml2).is_err());
    }

    #[test]
    fn table_param_without_votable_rejected() {
        let xml = format!(
            r#"<soap:Envelope xmlns:soap="{}"><soap:Body><sq:M xmlns:sq="{}"><t sq:type="table"/></sq:M></soap:Body></soap:Envelope>"#,
            crate::SOAP_ENV_NS,
            SKYQUERY_NS
        );
        assert!(RpcCall::parse(&xml).is_err());
    }
}
