//! Property tests for the SOAP layer: calls, responses, faults, and
//! chunked transfers round-trip losslessly for arbitrary content.

use proptest::prelude::*;
use skyquery_soap::{
    chunk, MessageLimits, Reassembler, RpcCall, RpcResponse, SoapFault, SoapValue,
};
use skyquery_xml::{VoColumn, VoTable, VoType};

fn param_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,8}"
}

fn text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range('a', 'z'),
            Just('<'),
            Just('&'),
            Just('"'),
            Just(' '),
            Just('é'),
        ],
        0..20,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn soap_value() -> impl Strategy<Value = SoapValue> {
    prop_oneof![
        text().prop_map(SoapValue::Str),
        any::<i64>().prop_map(SoapValue::Int),
        proptest::num::f64::NORMAL.prop_map(SoapValue::Float),
        any::<bool>().prop_map(SoapValue::Bool),
        Just(SoapValue::Null),
        (0usize..20).prop_map(|n| {
            let mut t = VoTable::new("t", vec![VoColumn::new("v", VoType::Int)]);
            for i in 0..n {
                t.push_row(vec![Some(i.to_string())]).unwrap();
            }
            SoapValue::Table(t)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rpc_call_roundtrip(
        method in "[A-Z][a-zA-Z]{0,10}",
        params in proptest::collection::vec((param_name(), soap_value()), 0..6),
    ) {
        let mut call = RpcCall::new(method);
        for (n, v) in params {
            call = call.param(n, v);
        }
        let back = RpcCall::parse(&call.to_xml()).unwrap();
        prop_assert_eq!(back, call);
    }

    #[test]
    fn rpc_response_roundtrip(
        method in "[A-Z][a-zA-Z]{0,10}",
        results in proptest::collection::vec((param_name(), soap_value()), 0..6),
    ) {
        let mut resp = RpcResponse::new(method);
        for (n, v) in results {
            resp = resp.result(n, v);
        }
        let back = RpcResponse::parse(&resp.to_xml()).unwrap().unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn fault_roundtrip(msg in text(), detail in text()) {
        let fault = SoapFault::server(msg).with_detail(detail);
        let back = RpcResponse::parse(&fault.to_xml()).unwrap().unwrap_err();
        prop_assert_eq!(back, fault);
    }

    #[test]
    fn chunking_lossless_any_order(
        rows in 0usize..300,
        limit in 500usize..5000,
        order_seed in 0u64..1000,
    ) {
        let mut t = VoTable::new("big", vec![
            VoColumn::new("id", VoType::Id),
            VoColumn::new("payload", VoType::Text),
        ]);
        for i in 0..rows {
            t.push_row(vec![Some(i.to_string()), Some(format!("data-{i}"))]).unwrap();
        }
        let chunks = match chunk::split_table(&t, MessageLimits::tiny(limit), 9) {
            Ok(c) => c,
            // Schema alone exceeding the limit is a legitimate refusal.
            Err(_) => return Ok(()),
        };
        for (_, c) in &chunks {
            prop_assert!(c.to_xml().len() <= limit);
        }
        // Deterministic pseudo-shuffle of the delivery order.
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        let mut s = order_seed | 1;
        for i in (1..order.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mut r = Reassembler::new(chunks[0].0);
        let mut done = false;
        for &i in &order {
            done = r.accept(chunks[i].0, chunks[i].1.clone()).unwrap();
        }
        prop_assert!(done);
        prop_assert_eq!(r.finish().unwrap(), t);
    }

    #[test]
    fn message_limits_admit_boundary(limit in 1usize..100_000, len in 0usize..200_000) {
        let limits = MessageLimits::tiny(limit);
        prop_assert_eq!(limits.admit(len).is_ok(), len <= limit);
    }
}
