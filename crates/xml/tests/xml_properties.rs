//! Property tests: arbitrary element trees and tables survive
//! serialize → parse round-trips.

use proptest::prelude::*;
use skyquery_xml::votable::format_f64;
use skyquery_xml::{Element, VoColumn, VoTable, VoType};

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.-]{0,10}"
        .prop_filter("no leading digit variants", |s| !s.starts_with(['-', '.']))
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Printable text including XML-special characters; excludes control
    // chars and carriage returns (XML newline normalization is out of our
    // subset's scope).
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range('a', 'z'),
            proptest::char::range('A', 'Z'),
            proptest::char::range('0', '9'),
            Just('<'),
            Just('>'),
            Just('&'),
            Just('"'),
            Just('\''),
            Just(' '),
            Just('é'),
            Just('λ'),
        ],
        0..40,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (name_strategy(), text_strategy(), attrs_strategy()).prop_map(
        |(name, text, attributes)| Element {
            name,
            text,
            attributes,
            children: Vec::new(),
        },
    );
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            text_strategy(),
            attrs_strategy(),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, text, attributes, children)| Element {
                name,
                text,
                attributes,
                children,
            })
    })
}

fn attrs_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec((name_strategy(), text_strategy()), 0..3).prop_map(|attrs| {
        // XML forbids duplicate attribute names on one element.
        let mut seen = std::collections::HashSet::new();
        attrs
            .into_iter()
            .filter(|(n, _)| seen.insert(n.clone()))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn element_roundtrip(e in element_strategy()) {
        let xml = e.to_xml();
        let back = Element::parse(&xml).unwrap();
        prop_assert_eq!(back, normalize(e));
    }

    #[test]
    fn escaped_text_roundtrip(t in text_strategy()) {
        let e = Element::new("t").with_text(t.clone());
        let back = Element::parse(&e.to_xml()).unwrap();
        prop_assert_eq!(back.text, t);
    }

    #[test]
    fn float_format_roundtrips(x in proptest::num::f64::NORMAL | proptest::num::f64::ZERO | proptest::num::f64::SUBNORMAL) {
        let s = format_f64(x);
        prop_assert_eq!(s.parse::<f64>().unwrap(), x);
    }

    #[test]
    fn votable_roundtrip(
        n_cols in 1usize..5,
        rows in proptest::collection::vec(proptest::collection::vec(proptest::option::of(0i64..1000), 5), 0..20),
    ) {
        let cols: Vec<VoColumn> = (0..n_cols)
            .map(|i| VoColumn::new(format!("c{i}"), VoType::Int))
            .collect();
        let mut t = VoTable::new("p", cols);
        for row in rows {
            let cells = row.into_iter().take(n_cols)
                .map(|v| v.map(|x| x.to_string()))
                .collect::<Vec<_>>();
            if cells.len() == n_cols {
                t.push_row(cells).unwrap();
            }
        }
        let back = VoTable::parse(&t.to_xml()).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn votable_chunking_lossless(
        n_rows in 0usize..50,
        chunk in 1usize..10,
    ) {
        let mut t = VoTable::new("c", vec![VoColumn::new("n", VoType::Int)]);
        for i in 0..n_rows {
            t.push_row(vec![Some(i.to_string())]).unwrap();
        }
        let back = VoTable::concat(t.chunk_rows(chunk)).unwrap();
        prop_assert_eq!(back, t);
    }
}

/// Mirrors the DOM builder's whitespace rule: an element with child
/// elements discards whitespace-only text (formatting noise); leaves keep
/// their text verbatim.
fn normalize(mut e: Element) -> Element {
    e.children = e.children.into_iter().map(normalize).collect();
    if !e.children.is_empty() && e.text.trim().is_empty() {
        e.text.clear();
    }
    e
}
