//! VOTable-style tabular payloads.
//!
//! Partial cross-match results travel between SkyNodes as XML-encoded
//! tables (paper §5.3: "The SkyNode returns this result, as a serialized
//! XML encoded SOAP message"). The encoding here follows the spirit of the
//! VOTable format the Virtual Observatory adopted: a `FIELD` declaration
//! per column, then one `TR`/`TD` row group per tuple.
//!
//! Cells are typed text; `Float` cells use Rust's shortest round-trip
//! formatting so values survive serialize/parse exactly.

use crate::dom::Element;
use crate::XmlError;

/// Column types a VOTable payload can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoType {
    /// `boolean`.
    Bool,
    /// `long` (signed 64-bit).
    Int,
    /// `double`.
    Float,
    /// `char` (text).
    Text,
    /// `unsignedLong` — 64-bit unsigned identifier.
    Id,
}

impl VoType {
    /// The VOTable datatype name.
    pub fn as_str(self) -> &'static str {
        match self {
            VoType::Bool => "boolean",
            VoType::Int => "long",
            VoType::Float => "double",
            VoType::Text => "char",
            VoType::Id => "unsignedLong",
        }
    }

    /// Parses a VOTable datatype name.
    pub fn parse(s: &str) -> Option<VoType> {
        match s {
            "boolean" => Some(VoType::Bool),
            "long" => Some(VoType::Int),
            "double" => Some(VoType::Float),
            "char" => Some(VoType::Text),
            "unsignedLong" => Some(VoType::Id),
            _ => None,
        }
    }

    /// Validates that a non-null cell's text parses as this type.
    fn validate(self, text: &str) -> bool {
        match self {
            VoType::Bool => matches!(text, "true" | "false"),
            VoType::Int => text.parse::<i64>().is_ok(),
            VoType::Float => text.parse::<f64>().is_ok(),
            VoType::Text => true,
            VoType::Id => text.parse::<u64>().is_ok(),
        }
    }
}

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoColumn {
    /// Column name.
    pub name: String,
    /// Cell type.
    pub vtype: VoType,
}

impl VoColumn {
    /// A column declaration.
    pub fn new(name: impl Into<String>, vtype: VoType) -> VoColumn {
        VoColumn {
            name: name.into(),
            vtype,
        }
    }
}

/// A cell: `None` encodes SQL NULL.
pub type VoCell = Option<String>;

/// A typed table payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoTable {
    /// Table name (free-form label).
    pub name: String,
    /// Column declarations.
    pub columns: Vec<VoColumn>,
    /// Rows of typed-text cells.
    pub rows: Vec<Vec<VoCell>>,
}

impl VoTable {
    /// An empty table with the given columns.
    pub fn new(name: impl Into<String>, columns: Vec<VoColumn>) -> VoTable {
        VoTable {
            name: name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row, validating arity and cell types.
    pub fn push_row(&mut self, row: Vec<VoCell>) -> Result<(), XmlError> {
        if row.len() != self.columns.len() {
            return Err(XmlError::SchemaViolation {
                detail: format!(
                    "row arity {} != column count {} in table {}",
                    row.len(),
                    self.columns.len(),
                    self.name
                ),
            });
        }
        for (cell, col) in row.iter().zip(&self.columns) {
            if let Some(text) = cell {
                if !col.vtype.validate(text) {
                    return Err(XmlError::SchemaViolation {
                        detail: format!(
                            "cell {text:?} is not a valid {} for column {}",
                            col.vtype.as_str(),
                            col.name
                        ),
                    });
                }
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Encodes into an element tree.
    pub fn to_element(&self) -> Element {
        let mut table = Element::new("VOTABLE").with_attr("name", self.name.clone());
        for col in &self.columns {
            table = table.with_child(
                Element::new("FIELD")
                    .with_attr("name", col.name.clone())
                    .with_attr("datatype", col.vtype.as_str()),
            );
        }
        let mut data = Element::new("DATA");
        for row in &self.rows {
            let mut tr = Element::new("TR");
            for cell in row {
                let td = match cell {
                    Some(text) => Element::new("TD").with_text(text.clone()),
                    None => Element::new("TD").with_attr("null", "true"),
                };
                tr = tr.with_child(td);
            }
            data = data.with_child(tr);
        }
        table.with_child(data)
    }

    /// Serializes to compact XML.
    pub fn to_xml(&self) -> String {
        self.to_element().to_xml()
    }

    /// Decodes from an element tree.
    pub fn from_element(e: &Element) -> Result<VoTable, XmlError> {
        if e.name != "VOTABLE" {
            return Err(XmlError::SchemaViolation {
                detail: format!("expected VOTABLE root, found {}", e.name),
            });
        }
        let name = e.attr("name").unwrap_or("").to_string();
        let mut columns = Vec::new();
        for f in e.children_named("FIELD") {
            let cname = f.require_attr("name")?.to_string();
            let dt = f.require_attr("datatype")?;
            let vtype = VoType::parse(dt).ok_or_else(|| XmlError::SchemaViolation {
                detail: format!("unknown datatype {dt} for field {cname}"),
            })?;
            columns.push(VoColumn::new(cname, vtype));
        }
        let mut table = VoTable::new(name, columns);
        if let Some(data) = e.child("DATA") {
            for tr in data.children_named("TR") {
                let mut row = Vec::with_capacity(table.columns.len());
                for td in tr.children_named("TD") {
                    if td.attr("null") == Some("true") {
                        row.push(None);
                    } else {
                        row.push(Some(td.text.clone()));
                    }
                }
                table.push_row(row)?;
            }
        }
        Ok(table)
    }

    /// Parses from an XML string.
    pub fn parse(xml: &str) -> Result<VoTable, XmlError> {
        VoTable::from_element(&Element::parse(xml)?)
    }

    /// Splits this table into chunks of at most `rows_per_chunk` rows,
    /// each carrying the full column declaration — the unit of the SOAP
    /// chunking workaround.
    pub fn chunk_rows(&self, rows_per_chunk: usize) -> Vec<VoTable> {
        assert!(rows_per_chunk > 0);
        if self.rows.is_empty() {
            return vec![self.clone()];
        }
        self.rows
            .chunks(rows_per_chunk)
            .map(|chunk| VoTable {
                name: self.name.clone(),
                columns: self.columns.clone(),
                rows: chunk.to_vec(),
            })
            .collect()
    }

    /// Concatenates chunks back into one table, verifying identical
    /// schemas.
    pub fn concat(chunks: Vec<VoTable>) -> Result<VoTable, XmlError> {
        let mut iter = chunks.into_iter();
        let mut first = iter.next().ok_or_else(|| XmlError::SchemaViolation {
            detail: "cannot concat zero chunks".into(),
        })?;
        for chunk in iter {
            if chunk.columns != first.columns {
                return Err(XmlError::SchemaViolation {
                    detail: format!("chunk schema mismatch in table {}", first.name),
                });
            }
            first.rows.extend(chunk.rows);
        }
        Ok(first)
    }
}

/// Formats an f64 so it round-trips exactly through `parse::<f64>()`.
pub fn format_f64(x: f64) -> String {
    // Rust's Debug formatting for f64 is the shortest representation that
    // round-trips.
    format!("{x:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> VoTable {
        let mut t = VoTable::new(
            "partial",
            vec![
                VoColumn::new("object_id", VoType::Id),
                VoColumn::new("ra", VoType::Float),
                VoColumn::new("type", VoType::Text),
                VoColumn::new("good", VoType::Bool),
            ],
        );
        t.push_row(vec![
            Some("42".into()),
            Some(format_f64(185.000123456789)),
            Some("GALAXY".into()),
            Some("true".into()),
        ])
        .unwrap();
        t.push_row(vec![
            Some("43".into()),
            Some(format_f64(-0.5)),
            None,
            Some("false".into()),
        ])
        .unwrap();
        t
    }

    #[test]
    fn xml_roundtrip() {
        let t = demo();
        let back = VoTable::parse(&t.to_xml()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn float_cells_roundtrip_exactly() {
        for x in [0.1, 1.0 / 3.0, 185.000123456789, f64::MIN_POSITIVE, 1e300] {
            let s = format_f64(x);
            assert_eq!(s.parse::<f64>().unwrap(), x, "{s}");
        }
    }

    #[test]
    fn arity_and_type_validation() {
        let mut t = VoTable::new("x", vec![VoColumn::new("n", VoType::Int)]);
        assert!(t.push_row(vec![]).is_err());
        assert!(t.push_row(vec![Some("notanint".into())]).is_err());
        assert!(t.push_row(vec![Some("12".into())]).is_ok());
        assert!(t.push_row(vec![None]).is_ok());
    }

    #[test]
    fn null_cells_distinct_from_empty_text() {
        let mut t = VoTable::new("x", vec![VoColumn::new("s", VoType::Text)]);
        t.push_row(vec![None]).unwrap();
        t.push_row(vec![Some(String::new())]).unwrap();
        let back = VoTable::parse(&t.to_xml()).unwrap();
        assert_eq!(back.rows[0][0], None);
        assert_eq!(back.rows[1][0], Some(String::new()));
    }

    #[test]
    fn chunk_and_concat_roundtrip() {
        let mut t = VoTable::new("big", vec![VoColumn::new("n", VoType::Int)]);
        for i in 0..10 {
            t.push_row(vec![Some(i.to_string())]).unwrap();
        }
        let chunks = t.chunk_rows(3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].row_count(), 3);
        assert_eq!(chunks[3].row_count(), 1);
        let back = VoTable::concat(chunks).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn chunk_empty_table() {
        let t = VoTable::new("empty", vec![VoColumn::new("n", VoType::Int)]);
        let chunks = t.chunk_rows(5);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].row_count(), 0);
    }

    #[test]
    fn concat_rejects_mismatched_schemas() {
        let a = VoTable::new("a", vec![VoColumn::new("n", VoType::Int)]);
        let b = VoTable::new("a", vec![VoColumn::new("n", VoType::Float)]);
        assert!(VoTable::concat(vec![a, b]).is_err());
        assert!(VoTable::concat(vec![]).is_err());
    }

    #[test]
    fn parse_rejects_wrong_root_and_bad_datatype() {
        assert!(VoTable::parse("<NOTVOTABLE/>").is_err());
        assert!(VoTable::parse(
            r#"<VOTABLE name="x"><FIELD name="a" datatype="varchar"/></VOTABLE>"#
        )
        .is_err());
    }

    #[test]
    fn column_index_lookup() {
        let t = demo();
        assert_eq!(t.column_index("ra"), Some(1));
        assert_eq!(t.column_index("nope"), None);
    }
}
