//! A strict pull parser for the XML subset SkyQuery messages use.

use crate::escape::unescape;
use crate::XmlError;

/// An event produced by [`XmlReader::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" …>` (also produced for self-closing tags, followed
    /// immediately by the matching `EndElement`).
    StartElement {
        /// The element name as written (including any prefix).
        name: String,
        /// Attributes in document order, values unescaped.
        attributes: Vec<(String, String)>,
    },
    /// `</name>` or the synthetic close of a self-closing tag.
    EndElement {
        /// The closed element's name.
        name: String,
    },
    /// Unescaped character data (entities expanded, CDATA verbatim).
    /// Whitespace-only runs are reported as-is; structural consumers
    /// decide whether they are formatting noise.
    Text(String),
    /// End of input. Returned exactly once; the document must be balanced.
    Eof,
}

/// Pull parser over a complete in-memory document.
///
/// ```
/// use skyquery_xml::{XmlReader, XmlEvent};
/// let mut r = XmlReader::new("<a x=\"1\"><b>hi &amp; bye</b></a>");
/// assert!(matches!(r.next_event().unwrap(), XmlEvent::StartElement { .. }));
/// ```
#[derive(Debug)]
pub struct XmlReader<'a> {
    input: &'a [u8],
    pos: usize,
    stack: Vec<String>,
    /// Pending synthetic end element from a self-closing tag.
    pending_end: Option<String>,
    finished: bool,
}

impl<'a> XmlReader<'a> {
    /// A reader over a complete document.
    pub fn new(input: &'a str) -> XmlReader<'a> {
        XmlReader {
            input: input.as_bytes(),
            pos: 0,
            stack: Vec::new(),
            pending_end: None,
            finished: false,
        }
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn err(&self, detail: impl Into<String>) -> XmlError {
        XmlError::Malformed {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_until(&mut self, s: &str) -> Result<(), XmlError> {
        let bytes = s.as_bytes();
        while self.pos < self.input.len() {
            if self.input[self.pos..].starts_with(bytes) {
                self.pos += bytes.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(XmlError::UnexpectedEof {
            context: format!("scanning for {s}"),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let first = self.input[start];
        if first.is_ascii_digit() || first == b'-' || first == b'.' {
            return Err(self.err("names may not start with a digit, '-' or '.'"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    /// Produces the next event.
    pub fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            return Ok(XmlEvent::EndElement { name });
        }
        loop {
            if self.pos >= self.input.len() {
                if self.finished {
                    return Err(self.err("read past end of document"));
                }
                if let Some(open) = self.stack.last() {
                    return Err(XmlError::UnexpectedEof {
                        context: format!("element <{open}> never closed"),
                    });
                }
                self.finished = true;
                return Ok(XmlEvent::Eof);
            }
            if self.peek() == Some(b'<') {
                // Markup.
                if self.starts_with("<!--") {
                    self.skip_until("-->")?;
                    continue;
                }
                if self.starts_with("<![CDATA[") {
                    self.pos += "<![CDATA[".len();
                    let start = self.pos;
                    self.skip_until("]]>")?;
                    let raw = &self.input[start..self.pos - 3];
                    return Ok(XmlEvent::Text(String::from_utf8_lossy(raw).into_owned()));
                }
                if self.starts_with("<?") {
                    self.skip_until("?>")?;
                    continue;
                }
                if self.starts_with("<!") {
                    // DOCTYPE and friends: unsupported, skip to '>'.
                    self.skip_until(">")?;
                    continue;
                }
                if self.starts_with("</") {
                    self.pos += 2;
                    let name = self.read_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after close-tag name"));
                    }
                    self.pos += 1;
                    match self.stack.pop() {
                        Some(open) if open == name => return Ok(XmlEvent::EndElement { name }),
                        Some(open) => {
                            return Err(XmlError::TagMismatch {
                                expected: open,
                                found: name,
                            })
                        }
                        None => {
                            return Err(
                                self.err(format!("close tag </{name}> with no open element"))
                            )
                        }
                    }
                }
                // Start tag.
                self.pos += 1;
                let name = self.read_name()?;
                let mut attributes = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b'>') => {
                            self.pos += 1;
                            self.stack.push(name.clone());
                            return Ok(XmlEvent::StartElement { name, attributes });
                        }
                        Some(b'/') => {
                            self.pos += 1;
                            if self.peek() != Some(b'>') {
                                return Err(self.err("expected '>' after '/'"));
                            }
                            self.pos += 1;
                            self.stack.push(name.clone());
                            self.pending_end = Some(name.clone());
                            return Ok(XmlEvent::StartElement { name, attributes });
                        }
                        Some(_) => {
                            let aname = self.read_name()?;
                            self.skip_ws();
                            if self.peek() != Some(b'=') {
                                return Err(self.err(format!("attribute {aname} missing '='")));
                            }
                            self.pos += 1;
                            self.skip_ws();
                            let quote = match self.peek() {
                                Some(q @ (b'"' | b'\'')) => q,
                                _ => return Err(self.err("attribute value must be quoted")),
                            };
                            self.pos += 1;
                            let start = self.pos;
                            while self.peek().is_some_and(|c| c != quote) {
                                self.pos += 1;
                            }
                            if self.peek().is_none() {
                                return Err(XmlError::UnexpectedEof {
                                    context: format!("attribute {aname}"),
                                });
                            }
                            let raw =
                                String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                            self.pos += 1;
                            attributes.push((aname, unescape(&raw)?));
                        }
                        None => {
                            return Err(XmlError::UnexpectedEof {
                                context: format!("inside tag <{name}"),
                            })
                        }
                    }
                }
            }
            // Character data.
            let start = self.pos;
            while self.peek().is_some_and(|c| c != b'<') {
                self.pos += 1;
            }
            let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
            if self.stack.is_empty() {
                // Whitespace between top-level constructs is fine; anything
                // else is malformed.
                if raw.trim().is_empty() {
                    continue;
                }
                return Err(self.err("character data outside the root element"));
            }
            // Whitespace-only runs are reported too: only a consumer that
            // knows the element structure (e.g. the DOM builder) can tell
            // formatting noise from a meaningful all-space leaf value.
            return Ok(XmlEvent::Text(unescape(&raw)?));
        }
    }

    /// Collects all events until `Eof`, verifying well-formedness.
    pub fn read_all(mut self) -> Result<Vec<XmlEvent>, XmlError> {
        let mut out = Vec::new();
        loop {
            let ev = self.next_event()?;
            let done = ev == XmlEvent::Eof;
            out.push(ev);
            if done {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(s: &str) -> Vec<XmlEvent> {
        XmlReader::new(s).read_all().unwrap()
    }

    #[test]
    fn simple_nesting() {
        let evs = events(r#"<a x="1"><b>hi</b></a>"#);
        assert_eq!(
            evs,
            vec![
                XmlEvent::StartElement {
                    name: "a".into(),
                    attributes: vec![("x".into(), "1".into())]
                },
                XmlEvent::StartElement {
                    name: "b".into(),
                    attributes: vec![]
                },
                XmlEvent::Text("hi".into()),
                XmlEvent::EndElement { name: "b".into() },
                XmlEvent::EndElement { name: "a".into() },
                XmlEvent::Eof,
            ]
        );
    }

    #[test]
    fn self_closing_produces_both_events() {
        let evs = events("<a><b/></a>");
        assert_eq!(
            evs[1],
            XmlEvent::StartElement {
                name: "b".into(),
                attributes: vec![]
            }
        );
        assert_eq!(evs[2], XmlEvent::EndElement { name: "b".into() });
    }

    #[test]
    fn entities_expanded() {
        let evs = events("<a>x &amp; y &lt;z&gt;</a>");
        assert_eq!(evs[1], XmlEvent::Text("x & y <z>".into()));
    }

    #[test]
    fn attributes_unescaped_and_quoted_either_way() {
        let evs = events(r#"<a x="a&amp;b" y='c"d'/>"#);
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0], ("x".into(), "a&b".into()));
                assert_eq!(attributes[1], ("y".into(), "c\"d".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_declarations_doctype_skipped() {
        let evs = events("<?xml version=\"1.0\"?><!-- hello --><!DOCTYPE a><a><!-- inner -->t</a>");
        assert_eq!(evs.len(), 4); // start, text, end, eof
        assert_eq!(evs[1], XmlEvent::Text("t".into()));
    }

    #[test]
    fn cdata_is_verbatim() {
        let evs = events("<a><![CDATA[1 < 2 & 3]]></a>");
        assert_eq!(evs[1], XmlEvent::Text("1 < 2 & 3".into()));
    }

    #[test]
    fn whitespace_between_elements_reported() {
        let evs = events("<a>\n  <b>x</b>\n</a>");
        // The pull layer reports the formatting runs; the DOM builder is
        // responsible for discarding them.
        assert!(evs
            .iter()
            .any(|e| matches!(e, XmlEvent::Text(t) if t.trim().is_empty())));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = XmlReader::new("<a><b></a></b>").read_all().unwrap_err();
        assert!(matches!(err, XmlError::TagMismatch { .. }));
    }

    #[test]
    fn unclosed_rejected() {
        let err = XmlReader::new("<a><b>").read_all().unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn stray_close_rejected() {
        assert!(XmlReader::new("</a>").read_all().is_err());
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(XmlReader::new("hello<a/>").read_all().is_err());
        // but whitespace is fine
        assert!(XmlReader::new("  <a/>  ").read_all().is_ok());
    }

    #[test]
    fn bad_attribute_syntax_rejected() {
        assert!(XmlReader::new("<a x=1/>").read_all().is_err());
        assert!(XmlReader::new("<a x/>").read_all().is_err());
        assert!(XmlReader::new("<a 1x=\"y\"/>").read_all().is_err());
    }

    #[test]
    fn namespaced_names_pass_through() {
        let evs = events(r#"<soap:Envelope xmlns:soap="u"><soap:Body/></soap:Envelope>"#);
        match &evs[0] {
            XmlEvent::StartElement { name, .. } => assert_eq!(name, "soap:Envelope"),
            _ => panic!(),
        }
    }

    #[test]
    fn offset_reported_on_error() {
        let err = XmlReader::new("<a><b x=bad></b></a>")
            .read_all()
            .unwrap_err();
        match err {
            XmlError::Malformed { offset, .. } => assert!(offset > 0),
            other => panic!("unexpected {other:?}"),
        }
    }
}
