//! A small element tree for message construction and navigation.

use crate::reader::{XmlEvent, XmlReader};
use crate::writer::XmlWriter;
use crate::XmlError;

/// An XML element: name, attributes, child elements, and text content.
///
/// Mixed content is simplified: all text within an element is concatenated
/// into `text`, which is what SOAP-style protocols need.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Element name (possibly `prefix:local`).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<Element>,
    /// Concatenated text content.
    pub text: String,
}

impl Element {
    /// An empty element with the given name.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            ..Element::default()
        }
    }

    /// Builder: adds an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Element {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Builder: adds a child element.
    pub fn with_child(mut self, child: Element) -> Element {
        self.children.push(child);
        self
    }

    /// Builder: sets text content.
    pub fn with_text(mut self, text: impl Into<String>) -> Element {
        self.text = text.into();
        self
    }

    /// Builder: adds a `<name>text</name>` child.
    pub fn with_leaf(self, name: impl Into<String>, text: impl Into<String>) -> Element {
        self.with_child(Element::new(name).with_text(text))
    }

    /// The first child with the given name. Names match either exactly or
    /// ignoring a namespace prefix (`Body` matches `soap:Body`).
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| local_matches(&c.name, name))
    }

    /// All children with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children
            .iter()
            .filter(move |c| local_matches(&c.name, name))
    }

    /// Like [`Element::child`] but an error naming the missing path.
    pub fn require_child(&self, name: &str) -> Result<&Element, XmlError> {
        self.child(name).ok_or_else(|| XmlError::MissingNode {
            path: format!("{}/{}", self.name, name),
        })
    }

    /// Attribute value by name.
    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Like [`Element::attr`] but an error naming the missing attribute.
    pub fn require_attr(&self, name: &str) -> Result<&str, XmlError> {
        self.attr(name).ok_or_else(|| XmlError::MissingNode {
            path: format!("{}/@{}", self.name, name),
        })
    }

    /// Text of a required child leaf.
    pub fn child_text(&self, name: &str) -> Result<&str, XmlError> {
        self.require_child(name).map(|c| c.text.as_str())
    }

    /// Serializes compactly (wire form).
    pub fn to_xml(&self) -> String {
        let mut w = XmlWriter::new();
        self.write_into(&mut w);
        w.finish().expect("element trees are always balanced")
    }

    /// Serializes with indentation (debug form).
    pub fn to_pretty_xml(&self) -> String {
        let mut w = XmlWriter::pretty(2);
        w.declaration();
        self.write_into(&mut w);
        w.finish().expect("element trees are always balanced")
    }

    fn write_into(&self, w: &mut XmlWriter) {
        w.open(&self.name);
        for (k, v) in &self.attributes {
            w.attr(k, v);
        }
        if !self.text.is_empty() {
            w.text(&self.text);
        }
        for c in &self.children {
            c.write_into(w);
        }
        w.close().expect("balanced by construction");
    }

    /// Parses a document into its root element.
    pub fn parse(input: &str) -> Result<Element, XmlError> {
        let mut reader = XmlReader::new(input);
        // Find the root start element.
        let root = loop {
            match reader.next_event()? {
                XmlEvent::StartElement { name, attributes } => {
                    break Element {
                        name,
                        attributes,
                        children: Vec::new(),
                        text: String::new(),
                    }
                }
                XmlEvent::Eof => {
                    return Err(XmlError::UnexpectedEof {
                        context: "document has no root element".into(),
                    })
                }
                _ => {}
            }
        };
        let mut stack = vec![root];
        loop {
            match reader.next_event()? {
                XmlEvent::StartElement { name, attributes } => {
                    stack.push(Element {
                        name,
                        attributes,
                        children: Vec::new(),
                        text: String::new(),
                    });
                }
                XmlEvent::Text(t) => {
                    let top = stack.last_mut().expect("text implies open element");
                    top.text.push_str(&t);
                }
                XmlEvent::EndElement { .. } => {
                    let mut done = stack.pop().expect("reader guarantees balance");
                    // Whitespace around child elements is formatting noise
                    // (pretty printing); an all-space *leaf* keeps its text.
                    if !done.children.is_empty() && done.text.trim().is_empty() {
                        done.text.clear();
                    }
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(done),
                        None => {
                            // Root closed: consume trailing events to Eof.
                            loop {
                                match reader.next_event()? {
                                    XmlEvent::Eof => return Ok(done),
                                    XmlEvent::Text(t) if t.trim().is_empty() => {}
                                    other => {
                                        return Err(XmlError::Malformed {
                                            offset: reader.offset(),
                                            detail: format!(
                                                "content after root element: {other:?}"
                                            ),
                                        })
                                    }
                                }
                            }
                        }
                    }
                }
                XmlEvent::Eof => unreachable!("reader errors on unclosed elements"),
            }
        }
    }
}

/// Whether element name `actual` (possibly `prefix:local`) matches `wanted`
/// (compared against the full name and the local part).
fn local_matches(actual: &str, wanted: &str) -> bool {
    actual == wanted
        || actual
            .rsplit_once(':')
            .is_some_and(|(_, local)| local == wanted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("Envelope")
            .with_attr("xmlns:soap", "http://schemas.xmlsoap.org/soap/envelope/")
            .with_child(
                Element::new("Body")
                    .with_leaf("Method", "CrossMatch")
                    .with_child(
                        Element::new("Param")
                            .with_attr("name", "threshold")
                            .with_text("3.5"),
                    ),
            )
    }

    #[test]
    fn roundtrip_parse_serialize() {
        let e = sample();
        let xml = e.to_xml();
        let back = Element::parse(&xml).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn roundtrip_pretty() {
        let e = sample();
        let back = Element::parse(&e.to_pretty_xml()).unwrap();
        // Pretty printing introduces no semantic change for element-only
        // content; leaf text survives exactly.
        assert_eq!(
            back.child("Body").unwrap().child_text("Method").unwrap(),
            "CrossMatch"
        );
    }

    #[test]
    fn navigation() {
        let e = sample();
        let body = e.require_child("Body").unwrap();
        assert_eq!(body.child_text("Method").unwrap(), "CrossMatch");
        let p = body.require_child("Param").unwrap();
        assert_eq!(p.require_attr("name").unwrap(), "threshold");
        assert_eq!(p.text, "3.5");
        assert!(body.require_child("Nope").is_err());
        assert!(p.require_attr("nope").is_err());
    }

    #[test]
    fn namespace_prefix_matching() {
        let e = Element::parse(
            r#"<soap:Envelope xmlns:soap="u"><soap:Body>x</soap:Body></soap:Envelope>"#,
        )
        .unwrap();
        assert!(e.child("Body").is_some());
        assert!(e.child("soap:Body").is_some());
        assert_eq!(e.child("Body").unwrap().text, "x");
    }

    #[test]
    fn children_named_filters() {
        let e = Element::new("r")
            .with_leaf("x", "1")
            .with_leaf("y", "2")
            .with_leaf("x", "3");
        let xs: Vec<&str> = e.children_named("x").map(|c| c.text.as_str()).collect();
        assert_eq!(xs, vec!["1", "3"]);
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(Element::parse("<a/><b/>").is_err());
        assert!(Element::parse("<a/>junk").is_err());
        assert!(Element::parse("<a/>  ").is_ok());
    }

    #[test]
    fn parse_empty_input_fails() {
        assert!(Element::parse("").is_err());
        assert!(Element::parse("<!-- only a comment -->").is_err());
    }

    #[test]
    fn text_escaping_survives_roundtrip() {
        let e = Element::new("q").with_text(r#"a < b & "c" > 'd'"#);
        let back = Element::parse(&e.to_xml()).unwrap();
        assert_eq!(back.text, r#"a < b & "c" > 'd'"#);
    }
}
