//! Entity escaping and unescaping.

use crate::XmlError;

/// Escapes text content: `&`, `<`, `>` (the latter for `]]>` safety).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes attribute values (quoted with `"`): text escapes plus `"`.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Expands the five predefined entities plus decimal/hex character
/// references.
pub fn unescape(s: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((_, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        // Collect until ';'.
        let mut entity = String::new();
        let mut closed = false;
        for (_, e) in chars.by_ref() {
            if e == ';' {
                closed = true;
                break;
            }
            if entity.len() > 10 {
                break;
            }
            entity.push(e);
        }
        if !closed {
            return Err(XmlError::BadEntity { entity });
        }
        match entity.as_str() {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let code = if let Some(hex) = entity.strip_prefix("#x") {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = entity.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
                match code.and_then(char::from_u32) {
                    Some(ch) => out.push(ch),
                    None => return Err(XmlError::BadEntity { entity }),
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("a<b & c>d"), "a&lt;b &amp; c&gt;d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn attr_escaping_includes_quotes() {
        assert_eq!(
            escape_attr(r#"say "hi" & 'bye'"#),
            "say &quot;hi&quot; &amp; &apos;bye&apos;"
        );
    }

    #[test]
    fn unescape_roundtrips_escape() {
        for s in ["a<b & c>d", r#""quoted" & 'apos'"#, "plain", "<<>>&&"] {
            assert_eq!(unescape(&escape_attr(s)).unwrap(), s);
            assert_eq!(unescape(&escape_text(s)).unwrap(), s);
        }
    }

    #[test]
    fn character_references() {
        assert_eq!(unescape("&#65;&#x42;").unwrap(), "AB");
        assert_eq!(unescape("&#x1F600;").unwrap(), "\u{1F600}");
    }

    #[test]
    fn bad_entities_rejected() {
        assert!(unescape("&nosuch;").is_err());
        assert!(unescape("&unterminated").is_err());
        assert!(unescape("&#xZZ;").is_err());
        assert!(unescape("&#1114112;").is_err()); // beyond char::MAX
    }
}
