#![warn(missing_docs)]
//! # skyquery-xml — the XML substrate
//!
//! SkyQuery's components exchange everything — registrations, metadata,
//! queries, and partial cross-match results — as XML inside SOAP envelopes
//! (paper §3.1). This crate is a from-scratch XML 1.0 subset sufficient for
//! that traffic:
//!
//! * [`escape`] — text/attribute escaping,
//! * [`writer`] — a streaming, well-formedness-checking writer,
//! * [`reader`] — a pull parser producing [`reader::XmlEvent`]s,
//! * [`dom`] — a small element tree for convenient message construction,
//! * [`votable`] — tabular result-set encoding (columns + typed rows),
//!   modeled on the VOTable format astronomy archives adopted.
//!
//! The parser is deliberately strict about well-formedness (mismatched
//! tags, bad entities, stray `<`) and deliberately small: no DTDs, no
//! processing-instruction semantics, no namespace resolution beyond
//! verbatim prefixed names — mirroring the lightweight parsers of the 2002
//! SOAP stacks the paper describes (including their appetite for running
//! out of memory on 10 MB messages, which the SOAP crate's chunking
//! works around).

pub mod dom;
pub mod escape;
pub mod reader;
pub mod votable;
pub mod writer;

pub use dom::Element;
pub use escape::{escape_attr, escape_text, unescape};
pub use reader::{XmlEvent, XmlReader};
pub use votable::{VoColumn, VoTable, VoType};
pub use writer::XmlWriter;

/// Errors from XML reading or writing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// What was being parsed.
        context: String,
    },
    /// A syntax violation at a byte offset.
    Malformed {
        /// Byte offset of the violation.
        offset: usize,
        /// What went wrong.
        detail: String,
    },
    /// Close tag did not match the open tag.
    TagMismatch {
        /// The open element's name.
        expected: String,
        /// The close tag actually seen.
        found: String,
    },
    /// An unknown or bad entity reference.
    BadEntity {
        /// The entity text between `&` and `;`.
        entity: String,
    },
    /// Writer misuse (e.g. closing more elements than were opened).
    WriterMisuse {
        /// What was attempted.
        detail: String,
    },
    /// DOM navigation failure (missing child/attribute).
    MissingNode {
        /// The element/attribute path that was absent.
        path: String,
    },
    /// A VOTable payload didn't match its declared schema.
    SchemaViolation {
        /// The violated constraint.
        detail: String,
    },
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => {
                write!(f, "unexpected end of XML input in {context}")
            }
            XmlError::Malformed { offset, detail } => {
                write!(f, "malformed XML at byte {offset}: {detail}")
            }
            XmlError::TagMismatch { expected, found } => {
                write!(f, "tag mismatch: expected </{expected}>, found </{found}>")
            }
            XmlError::BadEntity { entity } => write!(f, "bad entity reference &{entity};"),
            XmlError::WriterMisuse { detail } => write!(f, "XML writer misuse: {detail}"),
            XmlError::MissingNode { path } => write!(f, "missing XML node: {path}"),
            XmlError::SchemaViolation { detail } => {
                write!(f, "VOTable schema violation: {detail}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, XmlError>;
