//! A streaming XML writer with well-formedness checking.

use crate::escape::{escape_attr, escape_text};
use crate::XmlError;

/// Streaming writer. Elements are opened with [`XmlWriter::open`] /
/// attributes added while the tag is still open, then content or
/// [`XmlWriter::close`]. `finish` verifies the document is balanced.
///
/// ```
/// use skyquery_xml::XmlWriter;
/// let mut w = XmlWriter::new();
/// w.open("Envelope").attr("xmlns", "http://schemas.xmlsoap.org/soap/envelope/");
/// w.open("Body");
/// w.text("hello & goodbye");
/// w.close().unwrap();
/// w.close().unwrap();
/// let xml = w.finish().unwrap();
/// assert!(xml.contains("hello &amp; goodbye"));
/// ```
#[derive(Debug)]
pub struct XmlWriter {
    buf: String,
    stack: Vec<String>,
    /// True when the current open tag has not yet been closed with `>`.
    tag_open: bool,
    indent: Option<usize>,
    /// True when the element content so far is only child elements (used
    /// for pretty printing).
    had_text: bool,
}

impl XmlWriter {
    /// Compact output (no whitespace) — the wire form.
    pub fn new() -> XmlWriter {
        XmlWriter {
            buf: String::new(),
            stack: Vec::new(),
            tag_open: false,
            indent: None,
            had_text: false,
        }
    }

    /// Pretty-printed output with the given indent width — the debug form.
    pub fn pretty(indent: usize) -> XmlWriter {
        XmlWriter {
            indent: Some(indent),
            ..XmlWriter::new()
        }
    }

    /// Writes the standard XML declaration. Call before any element.
    pub fn declaration(&mut self) -> &mut Self {
        self.buf
            .push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        self.newline();
        self
    }

    fn newline(&mut self) {
        if self.indent.is_some() {
            self.buf.push('\n');
        }
    }

    fn pad(&mut self) {
        if let Some(w) = self.indent {
            for _ in 0..(self.stack.len() * w) {
                self.buf.push(' ');
            }
        }
    }

    fn seal_tag(&mut self) {
        if self.tag_open {
            self.buf.push('>');
            self.tag_open = false;
        }
    }

    /// Opens an element.
    pub fn open(&mut self, name: &str) -> &mut Self {
        self.seal_tag();
        if !self.buf.is_empty() && !self.had_text {
            self.newline();
        }
        self.pad();
        self.buf.push('<');
        self.buf.push_str(name);
        self.stack.push(name.to_string());
        self.tag_open = true;
        self.had_text = false;
        self
    }

    /// Adds an attribute to the currently open tag.
    ///
    /// # Panics
    /// Panics (in debug builds) if no tag is open; in release the attribute
    /// is silently dropped rather than corrupting output.
    pub fn attr(&mut self, name: &str, value: &str) -> &mut Self {
        debug_assert!(self.tag_open, "attr() with no open tag");
        if self.tag_open {
            self.buf.push(' ');
            self.buf.push_str(name);
            self.buf.push_str("=\"");
            self.buf.push_str(&escape_attr(value));
            self.buf.push('"');
        }
        self
    }

    /// Writes escaped text content into the current element.
    pub fn text(&mut self, content: &str) -> &mut Self {
        self.seal_tag();
        self.buf.push_str(&escape_text(content));
        self.had_text = true;
        self
    }

    /// Writes pre-escaped/raw content (caller's responsibility).
    pub fn raw(&mut self, content: &str) -> &mut Self {
        self.seal_tag();
        self.buf.push_str(content);
        self.had_text = true;
        self
    }

    /// Closes the innermost element.
    pub fn close(&mut self) -> Result<&mut Self, XmlError> {
        let name = self.stack.pop().ok_or_else(|| XmlError::WriterMisuse {
            detail: "close() with no open element".into(),
        })?;
        if self.tag_open {
            // Empty element: self-close.
            self.buf.push_str("/>");
            self.tag_open = false;
        } else {
            if !self.had_text {
                self.newline();
                self.pad();
            }
            self.buf.push_str("</");
            self.buf.push_str(&name);
            self.buf.push('>');
        }
        self.had_text = false;
        Ok(self)
    }

    /// Convenience: `<name>text</name>`.
    pub fn leaf(&mut self, name: &str, text: &str) -> Result<&mut Self, XmlError> {
        self.open(name);
        if !text.is_empty() {
            self.text(text);
        }
        self.close()
    }

    /// Finishes the document, verifying all elements were closed.
    pub fn finish(self) -> Result<String, XmlError> {
        if let Some(unclosed) = self.stack.last() {
            return Err(XmlError::WriterMisuse {
                detail: format!("unclosed element <{unclosed}>"),
            });
        }
        Ok(self.buf)
    }

    /// Current output length in bytes (used by the chunking layer to
    /// respect message-size limits while streaming rows).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Default for XmlWriter {
    fn default() -> Self {
        XmlWriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_document() {
        let mut w = XmlWriter::new();
        w.open("root").attr("id", "1");
        w.leaf("child", "x & y").unwrap();
        w.open("empty");
        w.close().unwrap();
        w.close().unwrap();
        let xml = w.finish().unwrap();
        assert_eq!(
            xml,
            r#"<root id="1"><child>x &amp; y</child><empty/></root>"#
        );
    }

    #[test]
    fn declaration_prefix() {
        let mut w = XmlWriter::new();
        w.declaration();
        w.open("a");
        w.close().unwrap();
        assert!(w.finish().unwrap().starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    fn unbalanced_rejected() {
        let mut w = XmlWriter::new();
        w.open("a");
        assert!(w.finish().is_err());

        let mut w = XmlWriter::new();
        w.open("a");
        w.close().unwrap();
        assert!(w.close().is_err());
    }

    #[test]
    fn attr_escaping() {
        let mut w = XmlWriter::new();
        w.open("q").attr("sql", r#"SELECT "x" < 3"#);
        w.close().unwrap();
        let xml = w.finish().unwrap();
        assert!(xml.contains("&quot;x&quot; &lt; 3"));
    }

    #[test]
    fn pretty_output_indents() {
        let mut w = XmlWriter::pretty(2);
        w.open("a");
        w.open("b");
        w.leaf("c", "t").unwrap();
        w.close().unwrap();
        w.close().unwrap();
        let xml = w.finish().unwrap();
        assert!(xml.contains("\n  <b>"));
        assert!(xml.contains("\n    <c>"));
    }

    #[test]
    fn len_tracks_bytes() {
        let mut w = XmlWriter::new();
        assert!(w.is_empty());
        w.open("abc");
        assert!(w.len() >= 4);
    }
}
