//! Simulated buffer cache.
//!
//! The paper notes (§5.3) that the count-star performance queries "will
//! often warm the database cache on each SkyNode with index pages that
//! satisfy the main cross match query, and thus aid in reducing processing
//! time". A real buffer pool's behaviour is easy to lose inside an
//! all-in-memory engine, so we model it explicitly: rows live on fixed-size
//! *pages*; touching a page that is not resident counts a miss and charges a
//! simulated I/O penalty; an LRU of limited capacity holds resident pages.
//! Experiment E10 measures the warm-up effect through this model.

use std::collections::HashMap;

/// Identifier of a page: `(table epoch, page number)`. The epoch
/// distinguishes reincarnations of dropped temp tables.
pub type PageId = (u64, usize);

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Page accesses served from the cache.
    pub hits: u64,
    /// Page accesses that faulted the page in.
    pub misses: u64,
}

impl CacheStats {
    /// Total page accesses (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of accesses served from cache; 0 when untouched.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Total simulated access cost given a per-miss penalty, in abstract
    /// cost units (e.g. microseconds of disk time).
    pub fn cost(&self, miss_penalty: f64) -> f64 {
        self.hits as f64 + self.misses as f64 * miss_penalty
    }
}

/// A fixed-capacity LRU page cache.
///
/// The implementation favours clarity over constant factors: an access
/// counter orders recency and eviction scans for the minimum. Capacities in
/// this codebase are small (thousands of pages), and the simulation cost is
/// dwarfed by the scans it instruments.
#[derive(Debug, Clone)]
pub struct BufferCache {
    capacity: usize,
    rows_per_page: usize,
    clock: u64,
    resident: HashMap<PageId, u64>,
    stats: CacheStats,
}

impl BufferCache {
    /// A cache holding at most `capacity` pages of `rows_per_page` rows.
    pub fn new(capacity: usize, rows_per_page: usize) -> BufferCache {
        assert!(rows_per_page > 0, "rows_per_page must be positive");
        BufferCache {
            capacity: capacity.max(1),
            rows_per_page,
            clock: 0,
            resident: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Maximum resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows stored per page.
    pub fn rows_per_page(&self) -> usize {
        self.rows_per_page
    }

    /// The page a row lives on.
    pub fn page_of(&self, table_epoch: u64, row: usize) -> PageId {
        (table_epoch, row / self.rows_per_page)
    }

    /// Touches the page holding `row` of table `table_epoch`; returns
    /// whether it was a hit.
    pub fn touch_row(&mut self, table_epoch: u64, row: usize) -> bool {
        let page = self.page_of(table_epoch, row);
        self.touch_page(page)
    }

    /// Touches a page directly.
    pub fn touch_page(&mut self, page: PageId) -> bool {
        self.clock += 1;
        if let Some(stamp) = self.resident.get_mut(&page) {
            *stamp = self.clock;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            if self.resident.len() >= self.capacity {
                // Evict the least recently used page.
                if let Some((&lru, _)) = self.resident.iter().min_by_key(|(_, &stamp)| stamp) {
                    self.resident.remove(&lru);
                }
            }
            self.resident.insert(page, self.clock);
            false
        }
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears counters but keeps resident pages (for measuring a warm run).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Drops all resident pages and counters (a cold restart).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.stats = CacheStats::default();
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = BufferCache::new(8, 10);
        assert!(!c.touch_row(0, 5));
        assert!(c.touch_row(0, 5));
        assert!(c.touch_row(0, 9)); // same page (rows 0..10)
        assert!(!c.touch_row(0, 10)); // next page
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn lru_eviction() {
        let mut c = BufferCache::new(2, 1);
        c.touch_page((0, 0));
        c.touch_page((0, 1));
        c.touch_page((0, 0)); // refresh page 0
        c.touch_page((0, 2)); // evicts page 1 (LRU)
        assert!(c.touch_page((0, 0)), "page 0 should still be resident");
        assert!(!c.touch_page((0, 1)), "page 1 should have been evicted");
        assert_eq!(c.resident_pages(), 2);
    }

    #[test]
    fn warm_rerun_has_high_hit_ratio() {
        let mut c = BufferCache::new(100, 10);
        for r in 0..500 {
            c.touch_row(1, r);
        }
        let cold = c.stats();
        assert_eq!(cold.hit_ratio(), 0.9, "10 rows/page: 9 hits per page");
        c.reset_stats();
        for r in 0..500 {
            c.touch_row(1, r);
        }
        let warm = c.stats();
        assert_eq!(warm.misses, 0);
        assert_eq!(warm.hit_ratio(), 1.0);
        assert!(warm.cost(100.0) < cold.cost(100.0));
    }

    #[test]
    fn epochs_separate_tables() {
        let mut c = BufferCache::new(10, 10);
        c.touch_row(1, 0);
        assert!(!c.touch_row(2, 0), "different epoch, different page");
    }

    #[test]
    fn clear_is_cold() {
        let mut c = BufferCache::new(10, 10);
        c.touch_row(0, 0);
        c.clear();
        assert_eq!(c.resident_pages(), 0);
        assert!(!c.touch_row(0, 0));
    }

    #[test]
    fn stats_cost_model() {
        let s = CacheStats {
            hits: 10,
            misses: 5,
        };
        assert_eq!(s.accesses(), 15);
        assert!((s.cost(100.0) - (10.0 + 500.0)).abs() < 1e-12);
    }
}
