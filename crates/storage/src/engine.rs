//! The archive database: tables, indexes, temp tables, and the scans the
//! SkyNode wrapper runs against them.

use std::collections::HashMap;

use skyquery_htm::{RangeKind, SkyPoint};

use crate::cache::{BufferCache, CacheStats};
use crate::catalog::{Catalog, TableStats};
use crate::columnar::ColumnarPositions;
use crate::error::StorageError;
use crate::exec::{RangeSearchHit, ScanOptions};
use crate::index::{extract_position, BTreeIndex, HtmPositionIndex};
use crate::schema::TableSchema;
use crate::table::{Row, RowId, Table};
use crate::tile::ZoneTileSet;
use crate::value::Value;

/// One stored table with its indexes.
#[derive(Debug)]
struct TableEntry {
    table: Table,
    /// Cache epoch: distinguishes reincarnated temp tables in the buffer
    /// cache's page ids.
    epoch: u64,
    htm: Option<HtmPositionIndex>,
    btrees: HashMap<String, BTreeIndex>,
    /// Columnar SoA snapshot of the position columns for the cross-match
    /// kernel; rebuilt lazily and invalidated by any row insert.
    columnar: Option<ColumnarPositions>,
    /// Compressed zone tiles for the batch kernel; same lazy build and
    /// insert invalidation as the columnar snapshot.
    tiles: Option<ZoneTileSet>,
    /// Monotonic modification version: bumped by every insert, never
    /// reset. The generalization of the columnar/tile invalidation above
    /// — external caches key on this number to validate entries without
    /// re-reading rows. Tables are append-only with sequential row ids,
    /// so the version equals the row count and rows `[version..len)` of
    /// a later snapshot are exactly the delta since this one.
    version: u64,
    temp: bool,
}

/// An autonomous archive database.
///
/// This is what a SkyNode wraps: the paper's "database-specific API" maps to
/// these methods, and the wrapper's Web services translate SOAP calls into
/// them.
pub struct Database {
    name: String,
    tables: HashMap<String, TableEntry>,
    cache: BufferCache,
    next_epoch: u64,
    next_temp: u64,
}

impl Database {
    /// Creates a database with a default buffer cache (4096 pages × 64
    /// rows).
    pub fn new(name: impl Into<String>) -> Database {
        Database::with_cache(name, BufferCache::new(4096, 64))
    }

    /// Creates a database with an explicit buffer-cache configuration (the
    /// cache-warming experiments shrink the cache to force evictions).
    pub fn with_cache(name: impl Into<String>, cache: BufferCache) -> Database {
        Database {
            name: name.into(),
            tables: HashMap::new(),
            cache,
            next_epoch: 0,
            next_temp: 0,
        }
    }

    /// The database's name (the archive name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Creates a permanent table. If the schema declares position columns,
    /// an HTM index is maintained automatically.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), StorageError> {
        if self.tables.contains_key(&schema.name) {
            return Err(StorageError::TableExists {
                name: schema.name.clone(),
            });
        }
        let htm = schema
            .position
            .as_ref()
            .map(|p| HtmPositionIndex::new(p.htm_depth));
        let name = schema.name.clone();
        self.next_epoch += 1;
        self.tables.insert(
            name,
            TableEntry {
                table: Table::new(schema),
                epoch: self.next_epoch,
                htm,
                btrees: HashMap::new(),
                columnar: None,
                tiles: None,
                version: 0,
                temp: false,
            },
        );
        Ok(())
    }

    /// Creates a uniquely named temporary table (the cross-match stored
    /// procedure materializes incoming partial results into one). Returns
    /// the generated name.
    pub fn create_temp_table(&mut self, mut schema: TableSchema) -> Result<String, StorageError> {
        self.next_temp += 1;
        let name = format!("#tmp_{}_{}", schema.name, self.next_temp);
        schema.name = name.clone();
        let htm = schema
            .position
            .as_ref()
            .map(|p| HtmPositionIndex::new(p.htm_depth));
        self.next_epoch += 1;
        self.tables.insert(
            name.clone(),
            TableEntry {
                table: Table::new(schema),
                epoch: self.next_epoch,
                htm,
                btrees: HashMap::new(),
                columnar: None,
                tiles: None,
                version: 0,
                temp: true,
            },
        );
        Ok(name)
    }

    /// Drops a table (used for temp-table cleanup; also allowed for
    /// permanent tables).
    pub fn drop_table(&mut self, name: &str) -> Result<(), StorageError> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::UnknownTable {
                name: name.to_string(),
            })
    }

    /// Whether a table (permanent or temp) with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// All table names (including temp tables), sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// The table's schema.
    pub fn schema(&self, table: &str) -> Result<&TableSchema, StorageError> {
        self.entry(table).map(|e| e.table.schema())
    }

    /// Direct read-only access to a table.
    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.entry(name).map(|e| &e.table)
    }

    fn entry(&self, name: &str) -> Result<&TableEntry, StorageError> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable {
                name: name.to_string(),
            })
    }

    /// Inserts a row, updating all indexes.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<RowId, StorageError> {
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::UnknownTable {
                name: table.to_string(),
            })?;
        // Validate fully (schema conformance, then position extraction)
        // before mutating anything, so a rejected row leaves the table and
        // its indexes untouched.
        let row = entry.table.schema().conform_row(row)?;
        let position = match (&entry.htm, entry.table.schema().position.as_ref()) {
            (Some(_), Some(pos)) => {
                let ra_ci = entry.table.schema().column_index(&pos.ra).unwrap();
                let dec_ci = entry.table.schema().column_index(&pos.dec).unwrap();
                let (ra, dec) = extract_position(table, &row, ra_ci, dec_ci)?;
                Some(SkyPoint::from_radec_deg(ra, dec))
            }
            _ => None,
        };
        let rid = entry.table.insert_conformed(row);
        // Any mutation invalidates the columnar and tile snapshots and
        // advances the table's modification version.
        entry.columnar = None;
        entry.tiles = None;
        entry.version += 1;
        let stored = entry.table.row(rid).expect("row just inserted");
        if let (Some(htm), Some(p)) = (entry.htm.as_mut(), position) {
            htm.insert(p, rid);
        }
        for (col, idx) in entry.btrees.iter_mut() {
            let ci = entry.table.schema().column_index(col).unwrap();
            idx.insert(stored[ci].clone(), rid);
        }
        Ok(rid)
    }

    /// Bulk insert.
    pub fn insert_all<I>(&mut self, table: &str, rows: I) -> Result<usize, StorageError>
    where
        I: IntoIterator<Item = Row>,
    {
        let mut n = 0;
        for row in rows {
            self.insert(table, row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Builds (or rebuilds) a B-tree index over a column.
    pub fn create_btree_index(&mut self, table: &str, column: &str) -> Result<(), StorageError> {
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::UnknownTable {
                name: table.to_string(),
            })?;
        let idx = BTreeIndex::build(&entry.table, column)?;
        entry.btrees.insert(column.to_string(), idx);
        Ok(())
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &str) -> Result<usize, StorageError> {
        self.entry(table).map(|e| e.table.len())
    }

    /// Whether a B-tree index exists on `table.column`.
    pub fn has_btree_index(&self, table: &str, column: &str) -> bool {
        self.tables
            .get(table)
            .is_some_and(|e| e.btrees.contains_key(column))
    }

    /// Full-scan filter: returns ids of rows satisfying `pred`, charging
    /// the buffer cache per row when enabled.
    pub fn scan_filter<F>(
        &mut self,
        table: &str,
        opts: ScanOptions,
        mut pred: F,
    ) -> Result<Vec<RowId>, StorageError>
    where
        F: FnMut(&TableSchema, &Row) -> bool,
    {
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::UnknownTable {
                name: table.to_string(),
            })?;
        let epoch = entry.epoch;
        let mut out = Vec::new();
        for (rid, row) in entry.table.iter() {
            if opts.touch_cache {
                self.cache.touch_row(epoch, rid);
            }
            if pred(entry.table.schema(), row) {
                out.push(rid);
            }
        }
        Ok(out)
    }

    /// `SELECT count(*) WHERE pred` — the performance-query workhorse.
    pub fn count_where<F>(
        &mut self,
        table: &str,
        opts: ScanOptions,
        pred: F,
    ) -> Result<usize, StorageError>
    where
        F: FnMut(&TableSchema, &Row) -> bool,
    {
        Ok(self.scan_filter(table, opts, pred)?.len())
    }

    /// Circular range search over a position-indexed table: candidates come
    /// from the HTM cover; rows in partial trixels are distance re-tested.
    /// Results are sorted by row id and carry the true angular separation.
    pub fn range_search(
        &mut self,
        table: &str,
        center: SkyPoint,
        radius_rad: f64,
        opts: ScanOptions,
    ) -> Result<Vec<RangeSearchHit>, StorageError> {
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::UnknownTable {
                name: table.to_string(),
            })?;
        let htm = entry
            .htm
            .as_mut()
            .ok_or_else(|| StorageError::NoPositionIndex {
                table: table.to_string(),
            })?;
        let pos = entry
            .table
            .schema()
            .position
            .as_ref()
            .expect("htm index implies position metadata");
        let ra_ci = entry.table.schema().column_index(&pos.ra).unwrap();
        let dec_ci = entry.table.schema().column_index(&pos.dec).unwrap();
        let epoch = entry.epoch;

        let candidates = htm.search(center, radius_rad);
        if opts.touch_cache {
            for cand in &candidates {
                self.cache.touch_row(epoch, cand.row);
            }
        }
        resolve_range_candidates(&entry.table, ra_ci, dec_ci, center, radius_rad, &candidates)
    }

    /// [`Database::range_search`] plus the number of HTM candidates
    /// examined, so callers can report probe-pruning efficiency.
    pub fn range_search_counted(
        &mut self,
        table: &str,
        center: SkyPoint,
        radius_rad: f64,
        opts: ScanOptions,
    ) -> Result<(Vec<RangeSearchHit>, usize), StorageError> {
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::UnknownTable {
                name: table.to_string(),
            })?;
        let htm = entry
            .htm
            .as_mut()
            .ok_or_else(|| StorageError::NoPositionIndex {
                table: table.to_string(),
            })?;
        let pos = entry
            .table
            .schema()
            .position
            .as_ref()
            .expect("htm index implies position metadata");
        let ra_ci = entry.table.schema().column_index(&pos.ra).unwrap();
        let dec_ci = entry.table.schema().column_index(&pos.dec).unwrap();
        let epoch = entry.epoch;

        let candidates = htm.search(center, radius_rad);
        if opts.touch_cache {
            for cand in &candidates {
                self.cache.touch_row(epoch, cand.row);
            }
        }
        let examined = candidates.len();
        let hits =
            resolve_range_candidates(&entry.table, ra_ci, dec_ci, center, radius_rad, &candidates)?;
        Ok((hits, examined))
    }

    /// Builds (or keeps) the columnar position snapshot for `table` at the
    /// requested zone height. A no-op when a snapshot for the same
    /// requested height is already cached; any insert invalidates it.
    pub fn ensure_columnar(
        &mut self,
        table: &str,
        zone_height_deg: f64,
    ) -> Result<(), StorageError> {
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::UnknownTable {
                name: table.to_string(),
            })?;
        let pos = entry.table.schema().position.as_ref().ok_or_else(|| {
            StorageError::NoPositionIndex {
                table: table.to_string(),
            }
        })?;
        let ra_ci = entry.table.schema().column_index(&pos.ra).unwrap();
        let dec_ci = entry.table.schema().column_index(&pos.dec).unwrap();
        let stale = match &entry.columnar {
            Some(c) => c.requested_height_deg().to_bits() != zone_height_deg.to_bits(),
            None => true,
        };
        if stale {
            entry.columnar = Some(ColumnarPositions::build(
                &entry.table,
                ra_ci,
                dec_ci,
                zone_height_deg,
            )?);
        }
        Ok(())
    }

    /// The cached columnar snapshot for `table`, if one is valid. Borrowed
    /// immutably so it can coexist with [`Database::table`]; call
    /// [`Database::ensure_columnar`] first.
    pub fn columnar_positions(&self, table: &str) -> Option<&ColumnarPositions> {
        self.tables.get(table).and_then(|e| e.columnar.as_ref())
    }

    /// Builds (or keeps) the compressed zone-tile snapshot for `table` at
    /// the requested zone height. Returns whether a build happened (the
    /// `tile_builds` step counter); a no-op when a tile set for the same
    /// requested height is already cached. Any insert invalidates it.
    pub fn ensure_tiles(
        &mut self,
        table: &str,
        zone_height_deg: f64,
    ) -> Result<bool, StorageError> {
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::UnknownTable {
                name: table.to_string(),
            })?;
        let pos = entry.table.schema().position.as_ref().ok_or_else(|| {
            StorageError::NoPositionIndex {
                table: table.to_string(),
            }
        })?;
        let ra_ci = entry.table.schema().column_index(&pos.ra).unwrap();
        let dec_ci = entry.table.schema().column_index(&pos.dec).unwrap();
        let stale = match &entry.tiles {
            Some(t) => t.requested_height_deg().to_bits() != zone_height_deg.to_bits(),
            None => true,
        };
        if stale {
            entry.tiles = Some(ZoneTileSet::build(
                &entry.table,
                ra_ci,
                dec_ci,
                zone_height_deg,
            )?);
        }
        Ok(stale)
    }

    /// The cached zone-tile snapshot for `table`, if one is valid.
    /// Borrowed immutably so it can coexist with [`Database::table`];
    /// call [`Database::ensure_tiles`] first.
    pub fn zone_tiles(&self, table: &str) -> Option<&ZoneTileSet> {
        self.tables.get(table).and_then(|e| e.tiles.as_ref())
    }

    /// Region search over a position-indexed table: like
    /// [`Database::range_search`] but for any convex region (polygon AREA
    /// extension). Returns qualifying row ids in ascending order.
    pub fn region_search(
        &mut self,
        table: &str,
        region: &dyn skyquery_htm::ConvexRegion,
        opts: ScanOptions,
    ) -> Result<Vec<RowId>, StorageError> {
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::UnknownTable {
                name: table.to_string(),
            })?;
        let htm = entry
            .htm
            .as_mut()
            .ok_or_else(|| StorageError::NoPositionIndex {
                table: table.to_string(),
            })?;
        let pos = entry
            .table
            .schema()
            .position
            .as_ref()
            .expect("htm index implies position metadata");
        let ra_ci = entry.table.schema().column_index(&pos.ra).unwrap();
        let dec_ci = entry.table.schema().column_index(&pos.dec).unwrap();
        let epoch = entry.epoch;
        let mut rows = Vec::new();
        for cand in htm.search_region(region) {
            if opts.touch_cache {
                self.cache.touch_row(epoch, cand.row);
            }
            let row = entry.table.row(cand.row).expect("index row exists");
            match cand.kind {
                RangeKind::Full => rows.push(cand.row),
                RangeKind::Partial => {
                    let (ra, dec) = extract_position(table, row, ra_ci, dec_ci)?;
                    if region.contains(SkyPoint::from_radec_deg(ra, dec).to_vec3()) {
                        rows.push(cand.row);
                    }
                }
            }
        }
        rows.sort_unstable();
        Ok(rows)
    }

    /// Linear-scan range search (the no-HTM baseline for experiment E6).
    pub fn range_search_linear(
        &mut self,
        table: &str,
        center: SkyPoint,
        radius_rad: f64,
        opts: ScanOptions,
    ) -> Result<Vec<RangeSearchHit>, StorageError> {
        let entry = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::UnknownTable {
                name: table.to_string(),
            })?;
        let pos = entry.table.schema().position.as_ref().ok_or_else(|| {
            StorageError::NoPositionIndex {
                table: table.to_string(),
            }
        })?;
        let ra_ci = entry.table.schema().column_index(&pos.ra).unwrap();
        let dec_ci = entry.table.schema().column_index(&pos.dec).unwrap();
        let epoch = entry.epoch;
        let mut hits = Vec::new();
        for (rid, row) in entry.table.iter() {
            if opts.touch_cache {
                self.cache.touch_row(epoch, rid);
            }
            let (ra, dec) = extract_position(table, row, ra_ci, dec_ci)?;
            let sep = SkyPoint::from_radec_deg(ra, dec).separation(center);
            if sep <= radius_rad + 1e-15 {
                hits.push(RangeSearchHit {
                    row: rid,
                    separation_rad: sep,
                });
            }
        }
        Ok(hits)
    }

    /// Equality probe via a B-tree index if one exists, else a scan.
    pub fn lookup_eq(
        &mut self,
        table: &str,
        column: &str,
        value: &Value,
        opts: ScanOptions,
    ) -> Result<Vec<RowId>, StorageError> {
        let entry = self.entry(table)?;
        if let Some(idx) = entry.btrees.get(column) {
            let rids = idx.lookup(value).to_vec();
            if opts.touch_cache {
                let epoch = entry.epoch;
                for &rid in &rids {
                    self.cache.touch_row(epoch, rid);
                }
            }
            return Ok(rids);
        }
        let ci = entry.table.schema().column_index(column).ok_or_else(|| {
            StorageError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            }
        })?;
        self.scan_filter(table, opts, |_, row| row[ci].sql_eq(value).unwrap_or(false))
    }

    /// Buffer-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Clears the buffer-cache counters (pages stay resident).
    pub fn reset_cache_stats(&mut self) {
        self.cache.reset_stats();
    }

    /// Simulates a cold restart of the archive's buffer pool.
    pub fn cold_cache(&mut self) {
        self.cache.clear();
    }

    /// The table's monotonic modification version (bumped by every
    /// insert). The cross-match result cache keys on this number.
    pub fn table_version(&self, table: &str) -> Result<u64, StorageError> {
        self.entry(table).map(|e| e.version)
    }

    /// Catalog of all permanent tables — the Meta-data service payload.
    pub fn catalog(&self) -> Catalog {
        let mut tables: Vec<TableStats> = self
            .tables
            .values()
            .filter(|e| !e.temp)
            .map(|e| TableStats {
                schema: e.table.schema().clone(),
                row_count: e.table.len(),
                approx_bytes: e.table.approx_bytes(),
                version: e.version,
            })
            .collect();
        tables.sort_by(|a, b| a.schema.name.cmp(&b.schema.name));
        Catalog {
            database: self.name.clone(),
            tables,
        }
    }
}

/// Distance-tests HTM candidates against a table's stored positions,
/// returning qualifying hits sorted by row id. `Full`-kind candidates are
/// accepted outright; `Partial`-kind ones are re-tested against the
/// radius. Factored out of [`Database::range_search`] so the parallel
/// zone engine, probing per-zone indexes through shared references, runs
/// the exact same classification — the two paths must agree bit-for-bit.
pub fn resolve_range_candidates(
    table: &Table,
    ra_ci: usize,
    dec_ci: usize,
    center: SkyPoint,
    radius_rad: f64,
    candidates: &[crate::index::HtmCandidate],
) -> Result<Vec<RangeSearchHit>, StorageError> {
    let mut hits = Vec::new();
    resolve_range_candidates_into(
        table, ra_ci, dec_ci, center, radius_rad, candidates, &mut hits,
    )?;
    Ok(hits)
}

/// Buffer-reusing variant of [`resolve_range_candidates`]: clears `hits`
/// and fills it in place, so a long probe loop can amortize the hit
/// allocation the same way the columnar kernel's scratch does.
#[allow(clippy::too_many_arguments)] // mirrors resolve_range_candidates + sink
pub fn resolve_range_candidates_into(
    table: &Table,
    ra_ci: usize,
    dec_ci: usize,
    center: SkyPoint,
    radius_rad: f64,
    candidates: &[crate::index::HtmCandidate],
    hits: &mut Vec<RangeSearchHit>,
) -> Result<(), StorageError> {
    hits.clear();
    for cand in candidates {
        let row = table.row(cand.row).expect("index row exists");
        let (ra, dec) = extract_position(table.name(), row, ra_ci, dec_ci)?;
        let sep = SkyPoint::from_radec_deg(ra, dec).separation(center);
        match cand.kind {
            RangeKind::Full => hits.push(RangeSearchHit {
                row: cand.row,
                separation_rad: sep,
            }),
            RangeKind::Partial => {
                if sep <= radius_rad + 1e-15 {
                    hits.push(RangeSearchHit {
                        row: cand.row,
                        separation_rad: sep,
                    });
                }
            }
        }
    }
    hits.sort_by_key(|h| h.row);
    Ok(())
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("name", &self.name)
            .field("tables", &self.tables.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, PositionColumns};

    fn primary_schema() -> TableSchema {
        TableSchema::new(
            "photo_object",
            vec![
                ColumnDef::new("object_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
                ColumnDef::new("type", DataType::Text),
                ColumnDef::new("i_flux", DataType::Float),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 12))
        .unwrap()
    }

    fn demo_db() -> Database {
        let mut db = Database::new("SDSS");
        db.create_table(primary_schema()).unwrap();
        let rows = vec![
            (1u64, 185.0, -0.5, "GALAXY", 21.0),
            (2, 185.001, -0.5005, "STAR", 19.0),
            (3, 185.002, -0.499, "GALAXY", 22.5),
            (4, 200.0, 10.0, "GALAXY", 18.0),
            (5, 30.0, -30.0, "STAR", 17.0),
        ];
        for (id, ra, dec, ty, flux) in rows {
            db.insert(
                "photo_object",
                vec![
                    Value::Id(id),
                    Value::Float(ra),
                    Value::Float(dec),
                    Value::Text(ty.into()),
                    Value::Float(flux),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn create_insert_count() {
        let mut db = demo_db();
        assert_eq!(db.row_count("photo_object").unwrap(), 5);
        assert!(db.create_table(primary_schema()).is_err(), "duplicate");
        assert!(db.row_count("nope").is_err());
        let galaxies = db
            .count_where("photo_object", ScanOptions::default(), |s, row| {
                let ci = s.column_index("type").unwrap();
                row[ci]
                    .sql_eq(&Value::Text("GALAXY".into()))
                    .unwrap_or(false)
            })
            .unwrap();
        assert_eq!(galaxies, 3);
    }

    #[test]
    fn range_search_matches_linear_baseline() {
        let mut db = demo_db();
        let center = SkyPoint::from_radec_deg(185.0, -0.5);
        let radius = (10.0 / 60.0_f64).to_radians(); // 10 arcmin
        let fast = db
            .range_search("photo_object", center, radius, ScanOptions::untracked())
            .unwrap();
        let slow = db
            .range_search_linear("photo_object", center, radius, ScanOptions::untracked())
            .unwrap();
        let f: Vec<RowId> = fast.iter().map(|h| h.row).collect();
        let s: Vec<RowId> = slow.iter().map(|h| h.row).collect();
        assert_eq!(f, s);
        assert_eq!(f, vec![0, 1, 2]);
    }

    #[test]
    fn range_search_requires_position_index() {
        let mut db = Database::new("x");
        db.create_table(TableSchema::new(
            "plain",
            vec![ColumnDef::new("a", DataType::Int)],
        ))
        .unwrap();
        let err = db.range_search(
            "plain",
            SkyPoint::from_radec_deg(0.0, 0.0),
            0.1,
            ScanOptions::default(),
        );
        assert!(matches!(err, Err(StorageError::NoPositionIndex { .. })));
    }

    #[test]
    fn temp_table_lifecycle() {
        let mut db = Database::new("node");
        let schema = TableSchema::new(
            "partial_results",
            vec![
                ColumnDef::new("tuple_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 10))
        .unwrap();
        let t1 = db.create_temp_table(schema.clone()).unwrap();
        let t2 = db.create_temp_table(schema).unwrap();
        assert_ne!(t1, t2, "temp names must be unique");
        db.insert(
            &t1,
            vec![Value::Id(9), Value::Float(1.0), Value::Float(2.0)],
        )
        .unwrap();
        assert_eq!(db.row_count(&t1).unwrap(), 1);
        db.drop_table(&t1).unwrap();
        assert!(db.row_count(&t1).is_err());
        assert!(db.drop_table(&t1).is_err());
        // Temp tables are excluded from the catalog.
        assert!(db.catalog().tables.is_empty());
    }

    #[test]
    fn btree_speeds_equality_lookup() {
        let mut db = demo_db();
        db.create_btree_index("photo_object", "type").unwrap();
        let rids = db
            .lookup_eq(
                "photo_object",
                "type",
                &Value::Text("STAR".into()),
                ScanOptions::untracked(),
            )
            .unwrap();
        assert_eq!(rids, vec![1, 4]);
        // Index stays consistent across inserts.
        db.insert(
            "photo_object",
            vec![
                Value::Id(6),
                Value::Float(0.0),
                Value::Float(0.0),
                Value::Text("STAR".into()),
                Value::Float(1.0),
            ],
        )
        .unwrap();
        let rids = db
            .lookup_eq(
                "photo_object",
                "type",
                &Value::Text("STAR".into()),
                ScanOptions::untracked(),
            )
            .unwrap();
        assert_eq!(rids, vec![1, 4, 5]);
    }

    #[test]
    fn cache_warming_observable() {
        let mut db = demo_db();
        db.cold_cache();
        let center = SkyPoint::from_radec_deg(185.0, -0.5);
        let radius = (10.0 / 60.0_f64).to_radians();
        // Cold run: misses.
        db.range_search("photo_object", center, radius, ScanOptions::default())
            .unwrap();
        let cold = db.cache_stats();
        assert!(cold.misses > 0);
        // Warm re-run: all hits.
        db.reset_cache_stats();
        db.range_search("photo_object", center, radius, ScanOptions::default())
            .unwrap();
        let warm = db.cache_stats();
        assert_eq!(warm.misses, 0);
        assert!(warm.hits > 0);
    }

    #[test]
    fn catalog_reports_tables() {
        let db = demo_db();
        let cat = db.catalog();
        assert_eq!(cat.database, "SDSS");
        assert_eq!(cat.tables.len(), 1);
        assert_eq!(cat.tables[0].schema.name, "photo_object");
        assert_eq!(cat.tables[0].row_count, 5);
        assert!(cat.tables[0].approx_bytes > 0);
    }

    #[test]
    fn columnar_cache_built_reused_and_invalidated() {
        use crate::columnar::ProbeScratch;
        let mut db = demo_db();
        assert!(db.columnar_positions("photo_object").is_none());
        db.ensure_columnar("photo_object", 0.5).unwrap();
        let built = db.columnar_positions("photo_object").unwrap();
        assert_eq!(built.len(), 5);
        assert_eq!(built.requested_height_deg(), 0.5);

        // The columnar probe agrees with the HTM range search.
        let center = SkyPoint::from_radec_deg(185.0, -0.5);
        let radius = (10.0 / 60.0_f64).to_radians();
        let mut scratch = ProbeScratch::new();
        db.columnar_positions("photo_object")
            .unwrap()
            .probe(center, radius, &mut scratch);
        let htm = db
            .range_search("photo_object", center, radius, ScanOptions::untracked())
            .unwrap();
        assert_eq!(scratch.hits(), htm.as_slice());

        // A different requested height rebuilds; an insert invalidates.
        db.ensure_columnar("photo_object", 1.0).unwrap();
        assert_eq!(
            db.columnar_positions("photo_object")
                .unwrap()
                .requested_height_deg(),
            1.0
        );
        db.insert(
            "photo_object",
            vec![
                Value::Id(6),
                Value::Float(1.0),
                Value::Float(1.0),
                Value::Text("STAR".into()),
                Value::Float(1.0),
            ],
        )
        .unwrap();
        assert!(db.columnar_positions("photo_object").is_none());
        db.ensure_columnar("photo_object", 1.0).unwrap();
        assert_eq!(db.columnar_positions("photo_object").unwrap().len(), 6);
    }

    #[test]
    fn ensure_columnar_requires_position_metadata() {
        let mut db = Database::new("x");
        db.create_table(TableSchema::new(
            "plain",
            vec![ColumnDef::new("a", DataType::Int)],
        ))
        .unwrap();
        assert!(matches!(
            db.ensure_columnar("plain", 0.1),
            Err(StorageError::NoPositionIndex { .. })
        ));
        assert!(matches!(
            db.ensure_columnar("missing", 0.1),
            Err(StorageError::UnknownTable { .. })
        ));
    }

    #[test]
    fn range_search_counted_matches_range_search() {
        let mut db = demo_db();
        let center = SkyPoint::from_radec_deg(185.0, -0.5);
        let radius = (10.0 / 60.0_f64).to_radians();
        let plain = db
            .range_search("photo_object", center, radius, ScanOptions::untracked())
            .unwrap();
        let (counted, examined) = db
            .range_search_counted("photo_object", center, radius, ScanOptions::untracked())
            .unwrap();
        assert_eq!(plain, counted);
        assert!(examined >= counted.len());
    }

    #[test]
    fn insert_invalid_position_rejected() {
        let mut db = Database::new("x");
        db.create_table(primary_schema()).unwrap();
        let err = db.insert(
            "photo_object",
            vec![
                Value::Id(1),
                Value::Float(f64::INFINITY),
                Value::Float(0.0),
                Value::Text("GALAXY".into()),
                Value::Float(0.0),
            ],
        );
        assert!(matches!(err, Err(StorageError::InvalidPosition { .. })));
    }
}
