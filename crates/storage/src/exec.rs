//! Scan options and range-search results.

use crate::table::RowId;

/// Options controlling how scans charge the simulated buffer cache.
#[derive(Debug, Clone, Copy)]
pub struct ScanOptions {
    /// Whether row accesses touch the buffer cache (default true). Turned
    /// off for introspection that shouldn't perturb cache experiments.
    pub touch_cache: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions { touch_cache: true }
    }
}

impl ScanOptions {
    /// A scan that bypasses cache accounting.
    pub fn untracked() -> ScanOptions {
        ScanOptions { touch_cache: false }
    }
}

/// A verified hit from a circular range search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeSearchHit {
    /// The qualifying row.
    pub row: RowId,
    /// Angular separation from the search center, radians.
    pub separation_rad: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert!(ScanOptions::default().touch_cache);
        assert!(!ScanOptions::untracked().touch_cache);
    }

    #[test]
    fn hit_carries_separation() {
        let h = RangeSearchHit {
            row: 3,
            separation_rad: 0.001,
        };
        assert_eq!(h.row, 3);
        assert!(h.separation_rad > 0.0);
    }
}
