//! Storage engine error type.

/// Errors raised by the archive engine.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// Referenced table does not exist.
    UnknownTable {
        /// The missing table's name.
        name: String,
    },
    /// A table with this name already exists.
    TableExists {
        /// The conflicting name.
        name: String,
    },
    /// Referenced column does not exist in the table.
    UnknownColumn {
        /// The table searched.
        table: String,
        /// The missing column.
        column: String,
    },
    /// Row arity does not match the schema.
    ArityMismatch {
        /// The target table.
        table: String,
        /// The schema's column count.
        expected: usize,
        /// The row's value count.
        got: usize,
    },
    /// A NULL was inserted into a NOT NULL column.
    NullViolation {
        /// The target table.
        table: String,
        /// The NOT NULL column.
        column: String,
    },
    /// A value cannot be stored in / compared with the column type.
    TypeMismatch {
        /// What was attempted.
        context: String,
    },
    /// A position-indexed table received a row with non-finite or missing
    /// coordinates.
    InvalidPosition {
        /// The target table.
        table: String,
        /// The offending coordinate values.
        detail: String,
    },
    /// Range search requested on a table without a position index.
    NoPositionIndex {
        /// The table lacking position metadata.
        table: String,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownTable { name } => write!(f, "unknown table: {name}"),
            StorageError::TableExists { name } => write!(f, "table already exists: {name}"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            StorageError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "row arity mismatch for {table}: expected {expected}, got {got}"
            ),
            StorageError::NullViolation { table, column } => {
                write!(f, "NULL not allowed in {table}.{column}")
            }
            StorageError::TypeMismatch { context } => write!(f, "type mismatch: {context}"),
            StorageError::InvalidPosition { table, detail } => {
                write!(f, "invalid position in {table}: {detail}")
            }
            StorageError::NoPositionIndex { table } => {
                write!(f, "table {table} has no position index")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::UnknownColumn {
            table: "t".into(),
            column: "c".into(),
        };
        assert!(e.to_string().contains("t.c"));
        let e = StorageError::ArityMismatch {
            table: "t".into(),
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains("expected 3"));
    }
}
