//! Catalog snapshots: what the Meta-data service ships to the Portal.

use crate::schema::TableSchema;

/// Statistics and schema for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// The table's full schema.
    pub schema: TableSchema,
    /// Number of rows at snapshot time.
    pub row_count: usize,
    /// Approximate wire/memory size of the table, bytes.
    pub approx_bytes: usize,
    /// Monotonic modification version at snapshot time: bumped by every
    /// insert, never reset. Two snapshots with equal versions saw the
    /// same table contents (tables are append-only), so cached results
    /// keyed by this number validate without re-reading rows.
    pub version: u64,
}

/// A snapshot of an archive database's permanent tables.
///
/// When a SkyNode registers with the Portal, the Portal "calls the Meta-data
/// service … responsible for providing complete schema information to the
/// Portal, which the Portal catalogs" (§5.1). This is that payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    /// The archive database's name.
    pub database: String,
    /// Per-table schema and statistics, sorted by table name.
    pub tables: Vec<TableStats>,
}

impl Catalog {
    /// Stats for a table by name.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.iter().find(|t| t.schema.name == name)
    }

    /// Names of all cataloged tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.schema.name.as_str()).collect()
    }

    /// The first table carrying position metadata — by the paper's schema
    /// convention, the archive's primary table.
    pub fn primary_table(&self) -> Option<&TableStats> {
        self.tables.iter().find(|t| t.schema.position.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, PositionColumns};

    fn catalog() -> Catalog {
        let primary = TableSchema::new(
            "photo_primary",
            vec![
                ColumnDef::new("object_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 10))
        .unwrap();
        let spectra = TableSchema::new("spectra", vec![ColumnDef::new("object_id", DataType::Id)]);
        Catalog {
            database: "TWOMASS".into(),
            tables: vec![
                TableStats {
                    schema: spectra,
                    row_count: 10,
                    approx_bytes: 80,
                    version: 10,
                },
                TableStats {
                    schema: primary,
                    row_count: 100,
                    approx_bytes: 2400,
                    version: 100,
                },
            ],
        }
    }

    #[test]
    fn lookup_by_name() {
        let c = catalog();
        assert!(c.table("spectra").is_some());
        assert!(c.table("nope").is_none());
        assert_eq!(c.table_names(), vec!["spectra", "photo_primary"]);
    }

    #[test]
    fn primary_table_is_positioned() {
        let c = catalog();
        assert_eq!(c.primary_table().unwrap().schema.name, "photo_primary");
    }
}
