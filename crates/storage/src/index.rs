//! Secondary indexes: an ordered value index and the HTM position index.

use std::collections::BTreeMap;

use skyquery_htm::{ConvexRegion, Cover, Mesh, RangeKind, SkyPoint};

use crate::error::StorageError;
use crate::table::{RowId, Table};
use crate::value::Value;

/// A `Value` wrapper giving the total `key_cmp` ordering, so values can be
/// B-tree keys.
#[derive(Debug, Clone)]
pub struct Key(pub Value);

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.0.key_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key_cmp(&other.0)
    }
}

/// Borrowed-key view for probing the B-tree without cloning the probe
/// `Value`: both `Key` and a bare `Value` present themselves as
/// `dyn LookupKey`, and `BTreeMap` probes through
/// `Borrow<dyn LookupKey + '_>`.
trait LookupKey {
    fn value(&self) -> &Value;
}

impl LookupKey for Key {
    fn value(&self) -> &Value {
        &self.0
    }
}

impl LookupKey for Value {
    fn value(&self) -> &Value {
        self
    }
}

impl<'a> std::borrow::Borrow<dyn LookupKey + 'a> for Key {
    fn borrow(&self) -> &(dyn LookupKey + 'a) {
        self
    }
}

impl PartialEq for dyn LookupKey + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.value().key_cmp(other.value()) == std::cmp::Ordering::Equal
    }
}
impl Eq for dyn LookupKey + '_ {}
impl PartialOrd for dyn LookupKey + '_ {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for dyn LookupKey + '_ {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.value().key_cmp(other.value())
    }
}

/// An ordered index over one column, mapping value → row ids.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    column: String,
    map: BTreeMap<Key, Vec<RowId>>,
}

impl BTreeIndex {
    /// Builds an index over `column` from the current table contents.
    pub fn build(table: &Table, column: &str) -> Result<BTreeIndex, StorageError> {
        let ci =
            table
                .schema()
                .column_index(column)
                .ok_or_else(|| StorageError::UnknownColumn {
                    table: table.name().to_string(),
                    column: column.to_string(),
                })?;
        let mut map: BTreeMap<Key, Vec<RowId>> = BTreeMap::new();
        for (rid, row) in table.iter() {
            map.entry(Key(row[ci].clone())).or_default().push(rid);
        }
        Ok(BTreeIndex {
            column: column.to_string(),
            map,
        })
    }

    /// The indexed column's name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Registers a newly inserted row.
    pub fn insert(&mut self, value: Value, rid: RowId) {
        self.map.entry(Key(value)).or_default().push(rid);
    }

    /// Rows whose indexed value equals `v` (SQL semantics: NULL matches
    /// nothing). Probes through a borrowed key — no `Value` clone.
    pub fn lookup(&self, v: &Value) -> &[RowId] {
        if v.is_null() {
            return &[];
        }
        self.map
            .get(v as &dyn LookupKey)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Rows with indexed value in `[lo, hi]` (both optional, inclusive).
    /// NULLs never qualify. Bounds are compared through borrowed keys —
    /// no `Value` clones.
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<RowId> {
        use std::ops::Bound::*;
        // `key_cmp` sorts NULL first, so an open lower bound excludes the
        // NULL bucket by starting just above it.
        const NULL: Value = Value::Null;
        let lo_b: std::ops::Bound<&dyn LookupKey> = match lo {
            Some(v) => Included(v as &dyn LookupKey),
            None => Excluded(&NULL as &dyn LookupKey), // skip NULL bucket
        };
        let hi_b: std::ops::Bound<&dyn LookupKey> = match hi {
            Some(v) => Included(v as &dyn LookupKey),
            None => Unbounded,
        };
        let mut out = Vec::new();
        for (k, rids) in self.map.range::<dyn LookupKey, _>((lo_b, hi_b)) {
            if k.0.is_null() {
                continue;
            }
            out.extend_from_slice(rids);
        }
        out
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// A candidate produced by an HTM range probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtmCandidate {
    /// The candidate row.
    pub row: RowId,
    /// Whether the row's trixel was fully inside the search region (no
    /// distance re-test needed) or partial (must be re-tested).
    pub kind: RangeKind,
}

/// The HTM position index: rows sorted by the HTM ID of their position at a
/// fixed mesh depth. A circular range search covers the circle with ID
/// ranges and binary-searches this sorted list.
#[derive(Debug, Clone)]
pub struct HtmPositionIndex {
    mesh: Mesh,
    /// `(htm_id, row)` sorted by htm_id (then row).
    entries: Vec<(u64, RowId)>,
    /// True while `entries` is sorted; lazily restored after appends.
    sorted: bool,
}

impl HtmPositionIndex {
    /// An empty index at the given mesh depth.
    pub fn new(depth: u8) -> HtmPositionIndex {
        HtmPositionIndex {
            mesh: Mesh::new(depth),
            entries: Vec::new(),
            sorted: true,
        }
    }

    /// Builds the index from a table's position columns.
    pub fn build(table: &Table, depth: u8) -> Result<HtmPositionIndex, StorageError> {
        let pos =
            table
                .schema()
                .position
                .as_ref()
                .ok_or_else(|| StorageError::NoPositionIndex {
                    table: table.name().to_string(),
                })?;
        let ra_ci = table.schema().column_index(&pos.ra).unwrap();
        let dec_ci = table.schema().column_index(&pos.dec).unwrap();
        let mut idx = HtmPositionIndex::new(depth);
        for (rid, row) in table.iter() {
            let (ra, dec) = extract_position(table.name(), row, ra_ci, dec_ci)?;
            idx.insert(SkyPoint::from_radec_deg(ra, dec), rid);
        }
        idx.ensure_sorted();
        Ok(idx)
    }

    /// The index's mesh depth.
    pub fn depth(&self) -> u8 {
        self.mesh.depth()
    }

    /// The index's mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Number of indexed positions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers a row's position.
    pub fn insert(&mut self, p: SkyPoint, rid: RowId) {
        let id = self.mesh.locate(p).raw();
        if let Some(&(last, _)) = self.entries.last() {
            if id < last {
                self.sorted = false;
            }
        }
        self.entries.push((id, rid));
    }

    /// Restores the sorted order after out-of-order appends. A no-op when
    /// already sorted; `search` calls this lazily, and concurrent readers
    /// call it up front so [`HtmPositionIndex::search_sorted`] can probe
    /// through a shared reference.
    pub fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.entries.sort_unstable();
            self.sorted = true;
        }
    }

    /// Whether the entry list is currently in sorted order (and therefore
    /// searchable through [`HtmPositionIndex::search_sorted`]).
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Candidate rows for a circular search centered at `center` with
    /// radius `radius_rad`. `Full`-kind candidates are guaranteed inside;
    /// `Partial` ones must be distance-tested by the caller.
    pub fn search(&mut self, center: SkyPoint, radius_rad: f64) -> Vec<HtmCandidate> {
        self.ensure_sorted();
        let cover = Cover::circle(&self.mesh, center, radius_rad);
        self.candidates_from_cover(&cover)
    }

    /// Read-only variant of [`HtmPositionIndex::search`] for concurrent
    /// probing: the caller must have called
    /// [`HtmPositionIndex::ensure_sorted`] first (the parallel zone engine
    /// sorts each zone bucket once, then fans probes out across workers).
    ///
    /// # Panics
    ///
    /// Panics if the index has unsorted appends, since a binary search
    /// over an unsorted list would silently drop candidates.
    pub fn search_sorted(&self, center: SkyPoint, radius_rad: f64) -> Vec<HtmCandidate> {
        assert!(
            self.sorted,
            "HtmPositionIndex::search_sorted requires ensure_sorted() first"
        );
        let cover = Cover::circle(&self.mesh, center, radius_rad);
        self.candidates_from_cover(&cover)
    }

    /// Candidate rows for an arbitrary convex region (the §6 polygon
    /// extension uses this). Partial-kind candidates must be re-tested by
    /// the caller with the region's `contains`.
    pub fn search_region(&mut self, region: &dyn ConvexRegion) -> Vec<HtmCandidate> {
        self.ensure_sorted();
        let cover = Cover::region(&self.mesh, region);
        self.candidates_from_cover(&cover)
    }

    fn candidates_from_cover(&self, cover: &Cover) -> Vec<HtmCandidate> {
        let mut out = Vec::new();
        for cr in cover.ranges() {
            let lo = self.entries.partition_point(|&(id, _)| id < cr.range.lo);
            let hi = self.entries.partition_point(|&(id, _)| id <= cr.range.hi);
            for &(_, rid) in &self.entries[lo..hi] {
                out.push(HtmCandidate {
                    row: rid,
                    kind: cr.kind,
                });
            }
        }
        out
    }

    /// Number of index entries probed (not rows returned) for a search —
    /// the quantity HTM keeps small relative to a full scan.
    pub fn probe_cost(&mut self, center: SkyPoint, radius_rad: f64) -> usize {
        self.search(center, radius_rad).len()
    }
}

/// Pulls finite `(ra, dec)` out of a row.
pub(crate) fn extract_position(
    table: &str,
    row: &[Value],
    ra_ci: usize,
    dec_ci: usize,
) -> Result<(f64, f64), StorageError> {
    let ra = row[ra_ci].as_f64();
    let dec = row[dec_ci].as_f64();
    match (ra, dec) {
        (Some(ra), Some(dec)) if ra.is_finite() && dec.is_finite() => Ok((ra, dec)),
        _ => Err(StorageError::InvalidPosition {
            table: table.to_string(),
            detail: format!("ra={:?} dec={:?}", row[ra_ci], row[dec_ci]),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, PositionColumns, TableSchema};

    fn pos_table(points: &[(f64, f64)]) -> Table {
        let schema = TableSchema::new(
            "primary",
            vec![
                ColumnDef::new("object_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 10))
        .unwrap();
        let mut t = Table::new(schema);
        for (i, &(ra, dec)) in points.iter().enumerate() {
            t.insert(vec![
                Value::Id(i as u64),
                Value::Float(ra),
                Value::Float(dec),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn btree_lookup_and_range() {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("v", DataType::Text).nullable(),
            ],
        ));
        for i in 0..10i64 {
            t.insert(vec![Value::Int(i % 3), Value::Null]).unwrap();
        }
        let idx = BTreeIndex::build(&t, "k").unwrap();
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.lookup(&Value::Int(0)).len(), 4); // rows 0,3,6,9
        assert_eq!(idx.lookup(&Value::Int(5)).len(), 0);
        assert_eq!(idx.lookup(&Value::Null).len(), 0);
        let r = idx.range(Some(&Value::Int(1)), Some(&Value::Int(2)));
        assert_eq!(r.len(), 6);
        let all = idx.range(None, None);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn btree_range_skips_nulls() {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![ColumnDef::new("k", DataType::Int).nullable()],
        ));
        t.insert(vec![Value::Null]).unwrap();
        t.insert(vec![Value::Int(1)]).unwrap();
        let idx = BTreeIndex::build(&t, "k").unwrap();
        assert_eq!(idx.range(None, None), vec![1]);
    }

    #[test]
    fn btree_unknown_column() {
        let t = Table::new(TableSchema::new(
            "t",
            vec![ColumnDef::new("k", DataType::Int)],
        ));
        assert!(BTreeIndex::build(&t, "missing").is_err());
    }

    #[test]
    fn htm_search_finds_all_in_radius() {
        // A tight cluster plus distant points.
        let mut points = vec![
            (185.0, -0.5),
            (185.001, -0.5),
            (185.0, -0.501),
            (184.999, -0.499),
        ];
        points.extend([(30.0, 40.0), (200.0, 10.0), (185.0, 5.0)]);
        let t = pos_table(&points);
        let mut idx = HtmPositionIndex::build(&t, 12).unwrap();
        let center = SkyPoint::from_radec_deg(185.0, -0.5);
        let radius = 10.0 / 3600.0_f64; // 10 arcsec in degrees
        let cands = idx.search(center, radius.to_radians());
        // Verify: candidate set must include all 4 cluster rows.
        let rows: Vec<RowId> = cands.iter().map(|c| c.row).collect();
        for rid in 0..4 {
            assert!(rows.contains(&rid), "row {rid} missing from candidates");
        }
        // And must exclude the far points after a distance re-test.
        let confirmed: Vec<RowId> = cands
            .iter()
            .filter(|c| {
                let ra = t.value(c.row, "ra").unwrap().as_f64().unwrap();
                let dec = t.value(c.row, "dec").unwrap().as_f64().unwrap();
                SkyPoint::from_radec_deg(ra, dec).separation(center) <= radius.to_radians()
            })
            .map(|c| c.row)
            .collect();
        assert_eq!(confirmed.len(), 4);
    }

    #[test]
    fn htm_search_without_position_metadata_errors() {
        let t = Table::new(TableSchema::new(
            "noidx",
            vec![ColumnDef::new("x", DataType::Float)],
        ));
        assert!(matches!(
            HtmPositionIndex::build(&t, 8),
            Err(StorageError::NoPositionIndex { .. })
        ));
    }

    #[test]
    fn htm_incremental_insert_resorts() {
        let mut idx = HtmPositionIndex::new(10);
        // Insert in non-sorted sky order.
        idx.insert(SkyPoint::from_radec_deg(300.0, 50.0), 0);
        idx.insert(SkyPoint::from_radec_deg(10.0, -20.0), 1);
        idx.insert(SkyPoint::from_radec_deg(10.001, -20.0), 2);
        let cands = idx.search(SkyPoint::from_radec_deg(10.0, -20.0), 0.01);
        let rows: Vec<RowId> = cands.iter().map(|c| c.row).collect();
        assert!(rows.contains(&1) && rows.contains(&2));
        assert!(!rows.contains(&0));
    }

    #[test]
    fn search_sorted_matches_mutable_search() {
        let mut idx = HtmPositionIndex::new(10);
        idx.insert(SkyPoint::from_radec_deg(300.0, 50.0), 0);
        idx.insert(SkyPoint::from_radec_deg(10.0, -20.0), 1);
        idx.insert(SkyPoint::from_radec_deg(10.001, -20.0), 2);
        assert!(!idx.is_sorted());
        idx.ensure_sorted();
        assert!(idx.is_sorted());
        let center = SkyPoint::from_radec_deg(10.0, -20.0);
        let mut m = idx.clone();
        assert_eq!(idx.search_sorted(center, 0.01), m.search(center, 0.01));
    }

    #[test]
    #[should_panic(expected = "ensure_sorted")]
    fn search_sorted_rejects_unsorted_index() {
        let mut idx = HtmPositionIndex::new(10);
        idx.insert(SkyPoint::from_radec_deg(300.0, 50.0), 0);
        idx.insert(SkyPoint::from_radec_deg(10.0, -20.0), 1);
        idx.search_sorted(SkyPoint::from_radec_deg(10.0, -20.0), 0.01);
    }

    #[test]
    fn htm_probe_cost_much_less_than_table() {
        let mut points = Vec::new();
        // Spread 2000 points over the sky plus 5 in the target circle.
        for i in 0..2000 {
            let ra = (i as f64 * 0.18) % 360.0;
            let dec = ((i as f64 * 0.077) % 160.0) - 80.0;
            points.push((ra, dec));
        }
        for k in 0..5 {
            points.push((120.0 + k as f64 * 1e-4, 12.0));
        }
        let t = pos_table(&points);
        let mut idx = HtmPositionIndex::build(&t, 10).unwrap();
        let cost = idx.probe_cost(
            SkyPoint::from_radec_deg(120.0, 12.0),
            (30.0 / 3600.0_f64).to_radians(),
        );
        assert!(cost >= 5);
        assert!(cost < 200, "probe cost {cost} too close to full scan");
    }

    #[test]
    fn extract_position_rejects_nonfinite() {
        let row = vec![Value::Float(f64::NAN), Value::Float(0.0)];
        assert!(extract_position("t", &row, 0, 1).is_err());
        let row = vec![Value::Null, Value::Float(0.0)];
        assert!(extract_position("t", &row, 0, 1).is_err());
        let row = vec![Value::Float(10.0), Value::Float(0.0)];
        assert_eq!(extract_position("t", &row, 0, 1).unwrap(), (10.0, 0.0));
    }
}
