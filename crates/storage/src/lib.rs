#![warn(missing_docs)]
//! # skyquery-storage — the archive database substrate
//!
//! Every SkyNode in the SkyQuery federation wraps an autonomous archive
//! database (the paper's deployment used SQL Server instances hosting the
//! SDSS, 2MASS and FIRST catalogs). This crate is that substrate, built from
//! scratch: a small in-memory relational engine whose feature set is exactly
//! what the paper's Section 5 requires of a participating archive:
//!
//! * typed tables with a declared schema (a **primary table** storing the
//!   unique sky position of each object, plus secondary observation tables),
//! * ordinary predicate scans for the non-spatial query clauses,
//! * an **HTM position index** supporting efficient circular range searches
//!   (the `AREA` clause and the cross-match candidate lookups),
//! * **temporary tables** — the cross-match stored procedure materializes
//!   partial results arriving from the previous SkyNode into a temp table,
//!   joins, and drops it,
//! * a simulated **buffer cache**, so the paper's observation that
//!   performance queries "warm the database cache" (§5.3) is measurable.
//!
//! The engine is deliberately single-threaded per database; concurrency is
//! layered on by the federation crate, mirroring how each autonomous archive
//! manages its own DBMS.

pub mod cache;
pub mod catalog;
pub mod columnar;
pub mod engine;
pub mod error;
pub mod exec;
pub mod index;
pub mod schema;
pub mod table;
pub mod tile;
pub mod value;

pub use cache::{BufferCache, CacheStats};
pub use catalog::{Catalog, TableStats};
pub use columnar::{ColumnarPositions, ProbeScratch, ProbeStats};
pub use engine::{resolve_range_candidates, resolve_range_candidates_into, Database};
pub use error::StorageError;
pub use exec::{RangeSearchHit, ScanOptions};
pub use index::{BTreeIndex, HtmCandidate, HtmPositionIndex};
pub use schema::{ColumnDef, DataType, PositionColumns, TableSchema};
pub use table::{Row, RowId, Table};
pub use tile::{BatchScratch, BatchStats, ZoneTileSet};
pub use value::Value;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
