//! Row storage.

use crate::error::StorageError;
use crate::schema::TableSchema;
use crate::value::Value;

/// A row is an ordered vector of values matching the table schema.
pub type Row = Vec<Value>;

/// Index of a row within its table.
pub type RowId = usize;

/// An append-only in-memory table. Deletion is whole-table only (temp
/// tables are dropped, never trimmed), which keeps `RowId`s stable — the
/// property the HTM and B-tree indexes rely on.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validates and appends a row, returning its `RowId`.
    pub fn insert(&mut self, row: Row) -> Result<RowId, StorageError> {
        let row = self.schema.conform_row(row)?;
        self.rows.push(row);
        Ok(self.rows.len() - 1)
    }

    /// Appends a row that has already been validated against this table's
    /// schema (via [`TableSchema::conform_row`]). Callers that must run
    /// checks *between* validation and insertion (e.g. position extraction)
    /// use this to stay atomic.
    pub(crate) fn insert_conformed(&mut self, row: Row) -> RowId {
        debug_assert_eq!(row.len(), self.schema.arity());
        self.rows.push(row);
        self.rows.len() - 1
    }

    /// Appends many rows; stops at the first invalid row.
    pub fn insert_all<I>(&mut self, rows: I) -> Result<usize, StorageError>
    where
        I: IntoIterator<Item = Row>,
    {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// The row with the given id, if it exists.
    pub fn row(&self, id: RowId) -> Option<&Row> {
        self.rows.get(id)
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The value at `(row, column name)`.
    pub fn value(&self, id: RowId, column: &str) -> Option<&Value> {
        let ci = self.schema.column_index(column)?;
        self.rows.get(id).map(|r| &r[ci])
    }

    /// Iterator over `(RowId, &Row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().enumerate()
    }

    /// Approximate in-memory/wire footprint of the whole table in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::wire_size).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};

    fn table() -> Table {
        Table::new(TableSchema::new(
            "obj",
            vec![
                ColumnDef::new("id", DataType::Id),
                ColumnDef::new("mag", DataType::Float),
                ColumnDef::new("label", DataType::Text).nullable(),
            ],
        ))
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = table();
        let r0 = t
            .insert(vec![Value::Id(1), Value::Float(17.5), Value::Null])
            .unwrap();
        let r1 = t
            .insert(vec![Value::Id(2), Value::Int(18), Value::Text("x".into())])
            .unwrap();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(t.len(), 2);
        // Int(18) coerced into Float column.
        assert_eq!(t.value(1, "mag"), Some(&Value::Float(18.0)));
        assert_eq!(t.value(0, "label"), Some(&Value::Null));
        assert_eq!(t.value(0, "missing"), None);
        assert_eq!(t.row(5), None);
    }

    #[test]
    fn insert_all_stops_on_error() {
        let mut t = table();
        let res = t.insert_all(vec![
            vec![Value::Id(1), Value::Float(1.0), Value::Null],
            vec![Value::Null, Value::Float(2.0), Value::Null], // null id
            vec![Value::Id(3), Value::Float(3.0), Value::Null],
        ]);
        assert!(res.is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn approx_bytes_grows() {
        let mut t = table();
        let empty = t.approx_bytes();
        t.insert(vec![
            Value::Id(1),
            Value::Float(1.0),
            Value::Text("hello".into()),
        ])
        .unwrap();
        assert!(t.approx_bytes() > empty);
    }
}
