//! Compressed zone tiles and the batch probe kernel.
//!
//! [`ColumnarPositions`](crate::ColumnarPositions) answers probes one
//! tuple at a time against uncompressed structure-of-arrays buffers
//! (48 bytes/row), paying a binary search per probe and an exact
//! `atan2`-based distance test per candidate row. [`ZoneTileSet`] is the
//! batch-oriented successor:
//!
//! * **Compact tiles.** Each declination zone's bucket is encoded once
//!   into a bit-packed tile: the RA sort keys as zigzag deltas of their
//!   monotone `f64` order keys, declinations and row ids as offsets from
//!   the tile minimum, and the unit vectors quantized to 3×32 bits. The
//!   `f64` columns round-trip **bit-for-bit** (the codec is lossless);
//!   only the prefilter vectors are lossy, and every lane accept is
//!   refined with the exact `f64` computation before it becomes a hit.
//! * **Batch probes.** [`ZoneTileSet::probe_batch`] takes a whole group
//!   of probe balls, expands them into `(zone, RA-window)` segments,
//!   sorts the segments so each touched zone is decoded exactly once and
//!   RA window boundaries advance monotonically (merge-style, no
//!   per-probe binary search), and evaluates the candidate windows in
//!   fixed-width branch-free lanes: normalized-RA bound, clamped
//!   declination window, and a quantized dot-product threshold with
//!   conservative slack. Lane survivors are refined with the exact
//!   separation test of the columnar kernel, so the final hit set is
//!   byte-identical — same `sep <= radius + 1e-15` acceptance, same
//!   separation values, same row-id order.
//! * **Scratch reuse.** All per-batch state lives in a caller-owned
//!   [`BatchScratch`]; the steady-state sweep performs no per-tuple heap
//!   allocation, and the per-probe `reused` counters prove it.
//!
//! Tiles are built lazily per table (see `Database::ensure_tiles`) and
//! invalidated by the same mutation tracking as the columnar cache.

use std::f64::consts::PI;

use skyquery_htm::{SkyPoint, Vec3};

use crate::columnar::{
    effective_height, pack_order, ra_windows, zone_of_raw, ProbeStats, RaWindows, DEC_SLACK_DEG,
};
use crate::error::StorageError;
use crate::exec::RangeSearchHit;
use crate::index::extract_position;
use crate::table::{RowId, Table};

/// Conservative slack subtracted from the cosine acceptance threshold of
/// the quantized-dot lane prefilter. The quantization error of a 32-bit
/// unit-vector component is ≤ 2.4e-10, so the dot error is ≤ ~7e-10 plus
/// a few ulps of arithmetic; 1e-8 covers it with an order of magnitude to
/// spare. Over-admission only costs an exact refinement, never a hit.
const COS_SLACK: f64 = 1e-8;

/// Lane width of the branch-free prefilter (f64 elements per block).
const LANES: usize = 8;

/// Half of `u32::MAX`: quantization scale mapping `[-1, 1]` onto the full
/// 32-bit range.
const QSCALE: f64 = u32::MAX as f64 / 2.0;

/// Maps an `f64` to a `u64` key with the same total order (`total_cmp`),
/// so deltas/offsets of sorted or bounded columns pack into few bits.
#[inline]
fn key_of(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`key_of`]; exact for every finite and non-finite value.
#[inline]
fn val_of(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k & !(1 << 63))
    } else {
        f64::from_bits(!k)
    }
}

#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Bits needed to represent `x` (0 for 0).
#[inline]
fn width_of(x: u64) -> u32 {
    64 - x.leading_zeros()
}

#[inline]
fn quantize(x: f64) -> u32 {
    (((x + 1.0) * QSCALE).round()).clamp(0.0, u32::MAX as f64) as u32
}

#[inline]
fn dequantize(q: u32) -> f64 {
    q as f64 / QSCALE - 1.0
}

/// LSB-first bit stream writer over `u64` words.
#[derive(Debug, Default)]
struct BitWriter {
    words: Vec<u64>,
    bits: usize,
}

impl BitWriter {
    fn push(&mut self, v: u64, width: u32) {
        if width == 0 {
            return;
        }
        debug_assert!(width == 64 || v >> width == 0, "value wider than field");
        let wi = self.bits / 64;
        let off = (self.bits % 64) as u32;
        if wi == self.words.len() {
            self.words.push(0);
        }
        self.words[wi] |= v << off;
        if off + width > 64 {
            self.words.push(v >> (64 - off));
        }
        self.bits += width as usize;
    }
}

/// Sequential LSB-first reader over the packed words: keeps up to 64
/// buffered bits so each `take` is a shift-and-mask in the common case,
/// instead of recomputing word/offset from an absolute bit position.
struct BitReader<'a> {
    words: &'a [u64],
    /// Next word to refill from.
    wi: usize,
    /// Buffered bits, LSB-first.
    cur: u64,
    /// How many bits of `cur` are valid.
    have: u32,
}

impl<'a> BitReader<'a> {
    fn new(words: &'a [u64]) -> BitReader<'a> {
        BitReader {
            words,
            wi: 0,
            cur: 0,
            have: 0,
        }
    }

    #[inline]
    fn take(&mut self, width: u32) -> u64 {
        if width == 0 {
            return 0;
        }
        let mask = |w: u32| -> u64 {
            if w == 64 {
                u64::MAX
            } else {
                (1u64 << w) - 1
            }
        };
        if self.have >= width {
            let v = self.cur & mask(width);
            self.cur = if width == 64 { 0 } else { self.cur >> width };
            self.have -= width;
            v
        } else {
            let mut v = self.cur;
            let need = width - self.have;
            let next = self.words.get(self.wi).copied().unwrap_or(0);
            self.wi += 1;
            v |= (next & mask(need)) << self.have;
            self.cur = if need == 64 { 0 } else { next >> need };
            self.have = 64 - need;
            v
        }
    }
}

/// One zone's bucket, bit-packed. Field layout inside `packed`:
/// `(n-1)` RA key deltas (zigzag), then `n` declination key offsets, then
/// `n` row-id offsets, each at its own fixed width.
#[derive(Debug, Clone)]
struct ZoneTile {
    /// Rows in the tile.
    n: u32,
    /// Monotone order key of the first (smallest) normalized RA.
    ra_first: u64,
    ra_bits: u32,
    /// Minimum declination order key in the tile.
    dec_min: u64,
    dec_bits: u32,
    /// Minimum row id in the tile.
    row_min: u64,
    row_bits: u32,
    /// The bit-packed delta/offset streams.
    packed: Vec<u64>,
    /// Quantized unit vectors, `3n` values (x, y, z interleaved).
    quant: Vec<u32>,
    /// Rows whose raw RA column differs bitwise from the normalized sort
    /// key (sources recorded at RA < 0° or ≥ 360°): `(tile index, raw RA
    /// bits)`, ascending by index. Usually empty.
    raw_ra_exceptions: Vec<(u32, u64)>,
}

impl ZoneTile {
    fn encoded_bytes(&self) -> usize {
        // Header fields + packed streams + quantized vectors + exceptions.
        48 + self.packed.len() * 8 + self.quant.len() * 4 + self.raw_ra_exceptions.len() * 12
    }
}

/// A decoded zone, reused across decodes so steady-state batches do not
/// allocate. `ra`/`dec`/`row` are bit-identical to the columnar layout's
/// arrays for the same zone; `qx/qy/qz` are the dequantized prefilter
/// vectors (lossy — prefilter only).
#[derive(Debug, Default)]
struct DecodedZone {
    ra: Vec<f64>,
    dec: Vec<f64>,
    qx: Vec<f64>,
    qy: Vec<f64>,
    qz: Vec<f64>,
    row: Vec<RowId>,
    /// Decoded raw-RA exceptions: `(tile index, raw RA)`.
    exceptions: Vec<(u32, f64)>,
}

impl DecodedZone {
    fn capacity_sum(&self) -> usize {
        self.ra.capacity()
            + self.dec.capacity()
            + self.qx.capacity()
            + self.qy.capacity()
            + self.qz.capacity()
            + self.row.capacity()
            + self.exceptions.capacity()
    }

    /// The raw RA column value for tile index `i` (for exact refinement):
    /// the normalized sort key unless an exception overrides it.
    #[inline]
    fn raw_ra(&self, i: usize) -> f64 {
        if self.exceptions.is_empty() {
            return self.ra[i];
        }
        match self
            .exceptions
            .binary_search_by_key(&(i as u32), |&(k, _)| k)
        {
            Ok(p) => self.exceptions[p].1,
            Err(_) => self.ra[i],
        }
    }
}

/// One probe ball's per-zone RA window, the unit of the batch sweep.
#[derive(Debug, Clone, Copy)]
struct Segment {
    zone: u32,
    /// Normalized-RA window `[lo, hi]`; `-inf`/`+inf` for a full scan.
    lo: f64,
    hi: f64,
    probe: u32,
}

/// Precomputed per-probe acceptance state.
#[derive(Debug, Clone, Copy)]
struct Ball {
    cvec: Vec3,
    radius_rad: f64,
    dec_lo: f64,
    dec_hi: f64,
    cos_thresh: f64,
}

/// Batch-level counter sums returned by [`ZoneTileSet::probe_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Candidate-window rows evaluated by the lane prefilter.
    pub examined: usize,
    /// Probes served without any scratch buffer growth.
    pub reused: usize,
    /// Zone tiles decoded during the sweep.
    pub tile_decodes: usize,
    /// Lane survivors refined with the exact separation test.
    pub tile_hits: usize,
}

/// Caller-owned scratch for the batch kernel: segment/ball staging, the
/// decoded-zone buffers, and the per-probe result groups. Reusing one
/// scratch across batches makes the steady-state sweep allocation-free —
/// the per-probe `reused` counters report exactly that.
#[derive(Debug, Default)]
pub struct BatchScratch {
    segments: Vec<Segment>,
    /// Segments after the zone-bucketed counting sort.
    sorted: Vec<Segment>,
    /// Per-zone scatter cursors / run boundaries of `sorted`.
    zone_off: Vec<u32>,
    balls: Vec<Ball>,
    /// `(probe, hit)` pairs accumulated during the sweep.
    pairs: Vec<(u32, RangeSearchHit)>,
    /// Flattened hits grouped by probe, each group sorted by row id.
    hits: Vec<RangeSearchHit>,
    /// Per-probe `(start, len)` into `hits`.
    groups: Vec<(usize, usize)>,
    /// Per-probe scatter cursors while flattening `pairs` into `hits`.
    filled: Vec<u32>,
    examined: Vec<usize>,
    refined: Vec<usize>,
    decodes: Vec<usize>,
    /// Whether this probe's processing grew a scratch buffer.
    grew: Vec<bool>,
    /// Whether batch-level setup (segment staging, group flattening) grew
    /// a buffer this batch; folded into every probe's `reused` flag.
    setup_grew: bool,
    zone: DecodedZone,
}

impl BatchScratch {
    /// An empty scratch; buffers grow to their high-water mark on first use.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    /// The hits of probe `i` (input order), sorted by row id — the same
    /// contract as `ColumnarPositions::probe`.
    pub fn group(&self, i: usize) -> &[RangeSearchHit] {
        let (start, len) = self.groups[i];
        &self.hits[start..start + len]
    }

    /// Per-probe counters of the most recent batch, in the shape the
    /// per-tuple kernels consume.
    pub fn probe_stats(&self, i: usize) -> ProbeStats {
        ProbeStats {
            examined: self.examined[i],
            reused: !self.grew[i] && !self.setup_grew,
            tile_decodes: self.decodes[i],
            tile_hits: self.refined[i],
        }
    }

    /// Capacity fingerprint of the batch-level buffers (everything except
    /// the per-probe-attributed pair/decode buffers).
    fn fixed_capacity(&self) -> usize {
        self.segments.capacity()
            + self.sorted.capacity()
            + self.zone_off.capacity()
            + self.balls.capacity()
            + self.hits.capacity()
            + self.groups.capacity()
            + self.filled.capacity()
            + self.examined.capacity()
            + self.refined.capacity()
            + self.decodes.capacity()
            + self.grew.capacity()
    }
}

/// A table's positions as compressed, bit-packed zone tiles plus the
/// batch probe kernel over them. Built once per (table contents, zone
/// height) and cached by the database next to the columnar snapshot; any
/// table mutation invalidates both.
#[derive(Debug, Clone)]
pub struct ZoneTileSet {
    /// The zone height as requested (the cache key).
    requested_height_deg: f64,
    /// Effective (clamped) zone height.
    height_deg: f64,
    zone_count: usize,
    len: usize,
    /// `tile_of[zone]` is an index into `tiles`, or `u32::MAX` for an
    /// empty zone.
    tile_of: Vec<u32>,
    tiles: Vec<ZoneTile>,
}

impl ZoneTileSet {
    /// Encodes `table`'s positions into zone tiles, in the identical pack
    /// order as [`crate::ColumnarPositions::build`]. Fails on rows with
    /// non-finite positions, like the HTM index build.
    pub fn build(
        table: &Table,
        ra_ci: usize,
        dec_ci: usize,
        zone_height_deg: f64,
    ) -> Result<ZoneTileSet, StorageError> {
        let (height, zone_count) = effective_height(zone_height_deg);
        let order = pack_order(table, ra_ci, dec_ci, height, zone_count)?;
        let mut set = ZoneTileSet {
            requested_height_deg: zone_height_deg,
            height_deg: height,
            zone_count,
            len: order.len(),
            tile_of: vec![u32::MAX; zone_count],
            tiles: Vec::new(),
        };
        let mut start = 0;
        while start < order.len() {
            let zone = order[start].zone;
            let mut end = start + 1;
            while end < order.len() && order[end].zone == zone {
                end += 1;
            }
            set.tile_of[zone] = set.tiles.len() as u32;
            set.tiles
                .push(encode_zone(&order[start..end], table, ra_ci, dec_ci)?);
            start = end;
        }
        Ok(set)
    }

    /// The zone height this tile set was requested with (the cache key).
    pub fn requested_height_deg(&self) -> f64 {
        self.requested_height_deg
    }

    /// The effective (clamped) zone height in degrees.
    pub fn height_deg(&self) -> f64 {
        self.height_deg
    }

    /// Number of encoded positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tile set holds no positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-empty zone tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Total encoded payload size in bytes (tiles plus the zone
    /// directory) — the number the bench compares against the columnar
    /// layout's 48 bytes/row.
    pub fn encoded_bytes(&self) -> usize {
        self.tile_of.len() * 4
            + self
                .tiles
                .iter()
                .map(ZoneTile::encoded_bytes)
                .sum::<usize>()
    }

    fn zone_of(&self, dec_deg: f64) -> usize {
        zone_of_raw(dec_deg, self.height_deg, self.zone_count)
    }

    /// Probes a whole batch of balls, filling `scratch` with per-probe
    /// hit groups. For every probe `i`, `scratch.group(i)` is
    /// byte-identical to what `ColumnarPositions::probe` would produce
    /// for the same ball — same acceptance (`sep <= radius + 1e-15`
    /// against the exact `f64` reconstruction), same separation values,
    /// same row-id order. Returns batch-level counter sums;
    /// `scratch.probe_stats(i)` has the per-probe breakdown.
    pub fn probe_batch(
        &self,
        probes: &[(SkyPoint, f64)],
        scratch: &mut BatchScratch,
    ) -> BatchStats {
        let n = probes.len();
        let fixed_before = scratch.fixed_capacity();
        scratch.segments.clear();
        scratch.balls.clear();
        scratch.pairs.clear();
        scratch.hits.clear();
        scratch.groups.clear();
        scratch.groups.resize(n, (0, 0));
        scratch.examined.clear();
        scratch.examined.resize(n, 0);
        scratch.refined.clear();
        scratch.refined.resize(n, 0);
        scratch.decodes.clear();
        scratch.decodes.resize(n, 0);
        scratch.grew.clear();
        scratch.grew.resize(n, false);

        // Expand each ball into per-zone RA-window segments, precomputing
        // the lane acceptance state.
        for (i, &(center, radius_rad)) in probes.iter().enumerate() {
            let r_deg = radius_rad.to_degrees();
            let dec_lo = center.dec_deg - r_deg - DEC_SLACK_DEG;
            let dec_hi = center.dec_deg + r_deg + DEC_SLACK_DEG;
            let slacked = radius_rad + 1e-15;
            let cos_thresh = if slacked >= PI {
                // Any dot product passes; matches the full-sky acceptance.
                -2.0
            } else {
                slacked.cos() - COS_SLACK
            };
            scratch.balls.push(Ball {
                cvec: center.to_vec3(),
                radius_rad,
                dec_lo,
                dec_hi,
                cos_thresh,
            });
            if self.len == 0 {
                continue;
            }
            let zone_lo = self.zone_of(dec_lo);
            let zone_hi = self.zone_of(dec_hi);
            let windows = ra_windows(center, radius_rad);
            for zone in zone_lo..=zone_hi {
                if self.tile_of[zone] == u32::MAX {
                    continue;
                }
                match &windows {
                    RaWindows::Full => scratch.segments.push(Segment {
                        zone: zone as u32,
                        lo: f64::NEG_INFINITY,
                        hi: f64::INFINITY,
                        probe: i as u32,
                    }),
                    RaWindows::Ranges(ranges, count) => {
                        for &(lo, hi) in &ranges[..*count] {
                            scratch.segments.push(Segment {
                                zone: zone as u32,
                                lo,
                                hi,
                                probe: i as u32,
                            });
                        }
                    }
                }
            }
        }

        // Zone-major, then ascending window start: each touched zone is
        // decoded exactly once and the window cursors advance
        // monotonically through it. A counting sort buckets segments by
        // zone in O(n); only the (small) per-zone runs need a comparison
        // sort on the window start.
        let zones = self.tile_of.len();
        scratch.zone_off.clear();
        scratch.zone_off.resize(zones + 1, 0);
        for seg in &scratch.segments {
            scratch.zone_off[seg.zone as usize + 1] += 1;
        }
        for z in 0..zones {
            scratch.zone_off[z + 1] += scratch.zone_off[z];
        }
        scratch.sorted.clear();
        scratch.sorted.resize(
            scratch.segments.len(),
            Segment {
                zone: 0,
                lo: 0.0,
                hi: 0.0,
                probe: 0,
            },
        );
        for i in 0..scratch.segments.len() {
            let seg = scratch.segments[i];
            let slot = &mut scratch.zone_off[seg.zone as usize];
            scratch.sorted[*slot as usize] = seg;
            *slot += 1;
        }
        // After the scatter, `zone_off[z]` is the *end* of zone `z`'s run.

        let mut stats = BatchStats::default();
        // Split borrows: the sweep reads `balls`/`sorted` and writes
        // `pairs`/counters/`zone`.
        let BatchScratch {
            sorted,
            zone_off,
            balls,
            pairs,
            examined,
            refined,
            decodes,
            grew,
            zone,
            ..
        } = &mut *scratch;
        let mut run_start = 0usize;
        for (z, &off) in zone_off.iter().enumerate().take(zones) {
            let run_end = off as usize;
            if run_end == run_start {
                continue;
            }
            let run = &mut sorted[run_start..run_end];
            run_start = run_end;
            run.sort_unstable_by(|a, b| a.lo.total_cmp(&b.lo));

            let first_probe = run[0].probe as usize;
            let cap_before = zone.capacity_sum();
            decode_zone(&self.tiles[self.tile_of[z] as usize], zone);
            if zone.capacity_sum() != cap_before {
                grew[first_probe] = true;
            }
            decodes[first_probe] += 1;
            stats.tile_decodes += 1;

            let zlen = zone.ra.len();
            let (mut a, mut b) = (0usize, 0usize);
            for seg in run.iter() {
                let probe = seg.probe as usize;
                while a < zlen && zone.ra[a] < seg.lo {
                    a += 1;
                }
                if b < a {
                    b = a;
                }
                while b < zlen && zone.ra[b] <= seg.hi {
                    b += 1;
                }
                // `b` never retreats, so when an earlier segment had a
                // wider window the slice may over-cover; the `ra <= hi`
                // lane test masks the excess.
                examined[probe] += b - a;
                stats.examined += b - a;
                let ball = &balls[probe];
                let mut k = a;
                while k < b {
                    let block = k;
                    let count = (b - k).min(LANES);
                    let mut mask: u32 = 0;
                    if count == LANES {
                        // Fixed-width branch-free block over array views
                        // (no per-lane bounds checks): four comparisons
                        // and a fused dot product per lane. The verdicts
                        // land in a lane-indexed array first — a shifted
                        // OR into one scalar would serialize the lanes —
                        // and fold into the survivor mask afterwards.
                        let ra: &[f64; LANES] = zone.ra[block..block + LANES].try_into().unwrap();
                        let dec: &[f64; LANES] = zone.dec[block..block + LANES].try_into().unwrap();
                        let qx: &[f64; LANES] = zone.qx[block..block + LANES].try_into().unwrap();
                        let qy: &[f64; LANES] = zone.qy[block..block + LANES].try_into().unwrap();
                        let qz: &[f64; LANES] = zone.qz[block..block + LANES].try_into().unwrap();
                        let mut ok = [false; LANES];
                        for j in 0..LANES {
                            let dec = dec[j].clamp(-90.0, 90.0);
                            let dot =
                                qx[j] * ball.cvec.x + qy[j] * ball.cvec.y + qz[j] * ball.cvec.z;
                            ok[j] = (ra[j] <= seg.hi)
                                & (dec >= ball.dec_lo)
                                & (dec <= ball.dec_hi)
                                & (dot >= ball.cos_thresh);
                        }
                        for (j, &lane_ok) in ok.iter().enumerate() {
                            mask |= (lane_ok as u32) << j;
                        }
                    } else {
                        for j in 0..count {
                            let i = block + j;
                            let dec = zone.dec[i].clamp(-90.0, 90.0);
                            let dot = zone.qx[i] * ball.cvec.x
                                + zone.qy[i] * ball.cvec.y
                                + zone.qz[i] * ball.cvec.z;
                            let ok = (zone.ra[i] <= seg.hi)
                                & (dec >= ball.dec_lo)
                                & (dec <= ball.dec_hi)
                                & (dot >= ball.cos_thresh);
                            mask |= (ok as u32) << j;
                        }
                    }
                    k += count;
                    // Compacted survivors: exact refinement with the same
                    // `f64` reconstruction and acceptance as the columnar
                    // scan, so admission slack can never change the hit
                    // set.
                    while mask != 0 {
                        let j = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        let i = block + j;
                        refined[probe] += 1;
                        stats.tile_hits += 1;
                        let v = SkyPoint::from_radec_deg(zone.raw_ra(i), zone.dec[i]).to_vec3();
                        let sep = v.angle_to(ball.cvec);
                        if sep <= ball.radius_rad + 1e-15 {
                            if pairs.len() == pairs.capacity() {
                                grew[probe] = true;
                            }
                            pairs.push((
                                seg.probe,
                                RangeSearchHit {
                                    row: zone.row[i],
                                    separation_rad: sep,
                                },
                            ));
                        }
                    }
                }
            }
        }

        // Group hits by probe, sorted by row id within each group — the
        // `ColumnarPositions::probe` output contract, per probe. Counting
        // placement by probe index replaces a global sort; only groups
        // with more than one hit need a (tiny) row-id sort.
        {
            let BatchScratch {
                pairs,
                hits,
                groups,
                filled,
                ..
            } = &mut *scratch;
            for &(p, _) in pairs.iter() {
                groups[p as usize].1 += 1;
            }
            let mut start = 0usize;
            for g in groups.iter_mut() {
                g.0 = start;
                start += g.1;
            }
            hits.clear();
            hits.resize(
                pairs.len(),
                RangeSearchHit {
                    row: 0,
                    separation_rad: 0.0,
                },
            );
            filled.clear();
            filled.resize(n, 0);
            for &(p, hit) in pairs.iter() {
                let (start, _) = groups[p as usize];
                let f = &mut filled[p as usize];
                hits[start + *f as usize] = hit;
                *f += 1;
            }
            for &(start, len) in groups.iter() {
                if len > 1 {
                    hits[start..start + len].sort_unstable_by_key(|h| h.row);
                }
            }
        }
        scratch.setup_grew = scratch.fixed_capacity() != fixed_before;
        for i in 0..n {
            if !scratch.grew[i] && !scratch.setup_grew {
                stats.reused += 1;
            }
        }
        stats
    }
}

/// Encodes one zone's packed positions into a tile.
fn encode_zone(
    rows: &[crate::columnar::PackedPos],
    table: &Table,
    ra_ci: usize,
    dec_ci: usize,
) -> Result<ZoneTile, StorageError> {
    let n = rows.len();
    debug_assert!(n > 0);
    // RA: zigzag deltas of the monotone order keys of the sorted
    // normalized values. Ties are ordered by row id, so a `0.0` can
    // follow a `-0.0` — deltas may be (slightly) negative, hence zigzag.
    let mut ra_keys = Vec::with_capacity(n);
    let mut dec_keys = Vec::with_capacity(n);
    for p in rows {
        ra_keys.push(key_of(p.ra_norm));
        dec_keys.push(key_of(p.dec));
    }
    let mut ra_bits = 0;
    for w in ra_keys.windows(2) {
        let d = zigzag(w[1].wrapping_sub(w[0]) as i64);
        ra_bits = ra_bits.max(width_of(d));
    }
    let dec_min = *dec_keys.iter().min().expect("non-empty zone");
    let dec_bits = dec_keys
        .iter()
        .map(|&k| width_of(k - dec_min))
        .max()
        .unwrap();
    let row_min = rows.iter().map(|p| p.rid as u64).min().unwrap();
    let row_bits = rows
        .iter()
        .map(|p| width_of(p.rid as u64 - row_min))
        .max()
        .unwrap();

    let mut w = BitWriter::default();
    for pair in ra_keys.windows(2) {
        w.push(zigzag(pair[1].wrapping_sub(pair[0]) as i64), ra_bits);
    }
    for &k in &dec_keys {
        w.push(k - dec_min, dec_bits);
    }
    for p in rows {
        w.push(p.rid as u64 - row_min, row_bits);
    }

    let mut quant = Vec::with_capacity(3 * n);
    let mut raw_ra_exceptions = Vec::new();
    for (i, p) in rows.iter().enumerate() {
        // Same raw-column reconstruction as the columnar build, so the
        // refined unit vectors are bit-identical to the HTM path's.
        let raw = table.row(p.rid).expect("row id from pack order");
        let (ra_raw, _) = extract_position(table.name(), raw, ra_ci, dec_ci)?;
        if ra_raw.to_bits() != p.ra_norm.to_bits() {
            raw_ra_exceptions.push((i as u32, ra_raw.to_bits()));
        }
        let v = SkyPoint::from_radec_deg(ra_raw, p.dec).to_vec3();
        quant.push(quantize(v.x));
        quant.push(quantize(v.y));
        quant.push(quantize(v.z));
    }

    Ok(ZoneTile {
        n: n as u32,
        ra_first: ra_keys[0],
        ra_bits,
        dec_min,
        dec_bits,
        row_min,
        row_bits,
        packed: w.words,
        quant,
        raw_ra_exceptions,
    })
}

/// Decodes a tile into the reusable zone buffers; bit-exact for
/// `ra`/`dec`/`row`, dequantized for the prefilter vectors.
fn decode_zone(tile: &ZoneTile, out: &mut DecodedZone) {
    let n = tile.n as usize;
    out.ra.clear();
    out.dec.clear();
    out.qx.clear();
    out.qy.clear();
    out.qz.clear();
    out.row.clear();
    out.exceptions.clear();

    out.ra.reserve(n);
    out.dec.reserve(n);
    out.row.reserve(n);
    out.qx.reserve(n);
    out.qy.reserve(n);
    out.qz.reserve(n);
    // The three sections are contiguous, so one streaming reader walks
    // the whole packed stream without re-seeking.
    let mut r = BitReader::new(&tile.packed);
    let mut key = tile.ra_first;
    out.ra.push(val_of(key));
    for _ in 1..n {
        let d = unzigzag(r.take(tile.ra_bits));
        key = key.wrapping_add(d as u64);
        out.ra.push(val_of(key));
    }
    for _ in 0..n {
        let off = r.take(tile.dec_bits);
        out.dec.push(val_of(tile.dec_min + off));
    }
    for _ in 0..n {
        let off = r.take(tile.row_bits);
        out.row.push((tile.row_min + off) as RowId);
    }
    for q in tile.quant.chunks_exact(3) {
        out.qx.push(dequantize(q[0]));
        out.qy.push(dequantize(q[1]));
        out.qz.push(dequantize(q[2]));
    }
    out.exceptions.extend(
        tile.raw_ra_exceptions
            .iter()
            .map(|&(i, bits)| (i, f64::from_bits(bits))),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::{ColumnarPositions, ProbeScratch};
    use crate::schema::{ColumnDef, DataType, PositionColumns, TableSchema};
    use crate::value::Value;
    use proptest::prelude::*;

    fn pos_table(points: &[(f64, f64)]) -> Table {
        let schema = TableSchema::new(
            "primary",
            vec![
                ColumnDef::new("object_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 10))
        .unwrap();
        let mut t = Table::new(schema);
        for (i, &(ra, dec)) in points.iter().enumerate() {
            t.insert(vec![
                Value::Id(i as u64),
                Value::Float(ra),
                Value::Float(dec),
            ])
            .unwrap();
        }
        t
    }

    fn xorshift(state: &mut u64) -> f64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decodes every tile and checks it against the canonical pack order:
    /// the `f64`/row columns bit-for-bit, the raw RA reconstruction
    /// bit-for-bit, and the quantized vectors within the prefilter bound.
    fn assert_roundtrip(points: &[(f64, f64)], height: f64) {
        let t = pos_table(points);
        let set = ZoneTileSet::build(&t, 1, 2, height).unwrap();
        let (eff_height, zone_count) = effective_height(height);
        let order = pack_order(&t, 1, 2, eff_height, zone_count).unwrap();
        assert_eq!(set.len(), points.len());

        let mut decoded = DecodedZone::default();
        let mut cursor = 0usize;
        for zone in 0..zone_count {
            let ti = set.tile_of[zone];
            if ti == u32::MAX {
                continue;
            }
            decode_zone(&set.tiles[ti as usize], &mut decoded);
            for i in 0..decoded.ra.len() {
                let p = &order[cursor];
                assert_eq!(p.zone, zone, "pack order and tile directory agree");
                assert_eq!(
                    decoded.ra[i].to_bits(),
                    p.ra_norm.to_bits(),
                    "normalized RA bit-exact"
                );
                assert_eq!(
                    decoded.dec[i].to_bits(),
                    p.dec.to_bits(),
                    "declination bit-exact"
                );
                assert_eq!(decoded.row[i], p.rid, "row id exact");
                let (ra_raw, _) = extract_position(t.name(), t.row(p.rid).unwrap(), 1, 2).unwrap();
                assert_eq!(
                    decoded.raw_ra(i).to_bits(),
                    ra_raw.to_bits(),
                    "raw RA reconstruction bit-exact"
                );
                let v = SkyPoint::from_radec_deg(ra_raw, p.dec).to_vec3();
                for (q, exact) in [
                    (decoded.qx[i], v.x),
                    (decoded.qy[i], v.y),
                    (decoded.qz[i], v.z),
                ] {
                    assert!(
                        (q - exact).abs() <= 2.4e-10,
                        "quantized component within the prefilter bound"
                    );
                }
                cursor += 1;
            }
        }
        assert_eq!(cursor, points.len(), "every row decoded exactly once");
        // Per-row payload stays under the uncompressed 48 B/row layout;
        // the fixed per-tile header and the zone directory are overhead
        // that amortizes away for dense zones.
        let overhead = set.tile_count() * 64 + zone_count * 4 + 64;
        assert!(
            set.encoded_bytes() <= points.len() * 48 + overhead,
            "tile payload exceeds the uncompressed layout: {} > {}",
            set.encoded_bytes(),
            points.len() * 48 + overhead
        );
    }

    /// Batch hits must be byte-identical to the columnar kernel's.
    fn assert_batch_parity(points: &[(f64, f64)], probes: &[(SkyPoint, f64)], height: f64) {
        let t = pos_table(points);
        let cols = ColumnarPositions::build(&t, 1, 2, height).unwrap();
        let set = ZoneTileSet::build(&t, 1, 2, height).unwrap();
        let mut scratch = ProbeScratch::new();
        let mut batch = BatchScratch::new();
        set.probe_batch(probes, &mut batch);
        for (i, &(center, radius)) in probes.iter().enumerate() {
            cols.probe(center, radius, &mut scratch);
            assert_eq!(
                batch.group(i),
                scratch.hits(),
                "probe {i} center {center:?} radius {radius}"
            );
        }
    }

    #[test]
    fn roundtrip_covers_seam_polar_and_single_row_zones() {
        // RA seam values (including one that normalizes to exactly 360.0
        // and raw columns outside [0, 360)), polar rows, and a height
        // that puts several rows alone in their zone.
        let points = vec![
            (359.95, 5.0),
            (0.05, 5.0),
            (0.0, 5.0),
            (-0.0, 5.0),
            (360.0 - 1e-13, 5.0),
            (-12.5, 5.0),     // raw RA exception (negative)
            (372.5, 5.0),     // raw RA exception (≥ 360)
            (-1e-13, 5.0),    // normalizes to exactly 360.0
            (180.0, 90.0),    // north pole
            (270.0, -90.0),   // south pole
            (10.0, -33.3333), // single-row zone at 1.0° height
            (10.0, 71.25),    // single-row zone
        ];
        assert_roundtrip(&points, 1.0);
        assert_roundtrip(&points, 0.1);
        assert_roundtrip(&points, 180.0); // one zone holds everything
    }

    #[test]
    fn roundtrip_of_empty_and_single_row_tables() {
        assert_roundtrip(&[], 0.1);
        assert_roundtrip(&[(123.456, -7.89)], 0.1);
    }

    #[test]
    fn batch_matches_columnar_on_random_probes() {
        let mut seed = 0x7a1e_5eed_u64;
        let mut points = Vec::new();
        for _ in 0..600 {
            let ra = xorshift(&mut seed) * 420.0 - 30.0; // includes raw-RA exceptions
            let dec = xorshift(&mut seed) * 170.0 - 85.0;
            points.push((ra, dec));
        }
        for k in 0..8 {
            points.push((120.0 + k as f64 * 2e-4, 12.0 + k as f64 * 1e-4));
        }
        let mut probes = vec![
            (SkyPoint::from_radec_deg(120.0, 12.0), 0.001),
            (SkyPoint::from_radec_deg(0.05, -10.0), 0.01),
            (SkyPoint::from_radec_deg(359.99, 30.0), 0.01),
            (SkyPoint::from_radec_deg(180.0, 79.9), 0.02),
            (SkyPoint::from_radec_deg(10.0, 0.0), 3.2), // radius > π: full scan
        ];
        for _ in 0..60 {
            let c = SkyPoint::from_radec_deg(
                xorshift(&mut seed) * 360.0,
                xorshift(&mut seed) * 170.0 - 85.0,
            );
            probes.push((c, xorshift(&mut seed) * 0.05 + 1e-6));
        }
        for height in [0.05, 0.1, 0.5, 5.0] {
            assert_batch_parity(&points, &probes, height);
        }
    }

    #[test]
    fn batch_handles_seam_and_poles() {
        let points = vec![
            (359.95, 5.0),
            (0.05, 5.0),
            (360.0 - 1e-13, 5.0),
            (-0.02, 5.0),
            (0.0, 89.95),
            (90.0, 89.95),
            (180.0, 89.95),
            (0.0, -89.99),
        ];
        let probes: Vec<(SkyPoint, f64)> = vec![
            (SkyPoint::from_radec_deg(0.0, 5.0), 0.2_f64.to_radians()),
            (SkyPoint::from_radec_deg(-0.05, 5.0), 0.2_f64.to_radians()),
            (SkyPoint::from_radec_deg(359.999, 5.0), 0.2_f64.to_radians()),
            (SkyPoint::from_radec_deg(45.0, 89.97), 1.0_f64.to_radians()),
            (SkyPoint::from_radec_deg(200.0, -89.5), 1.0_f64.to_radians()),
        ];
        for height in [0.1, 1.0] {
            assert_batch_parity(&points, &probes, height);
        }
    }

    #[test]
    fn steady_state_batches_reuse_scratch() {
        let mut seed = 0xbadc_0ffe_u64;
        let mut points = Vec::new();
        for _ in 0..400 {
            points.push((
                xorshift(&mut seed) * 360.0,
                xorshift(&mut seed) * 40.0 - 20.0,
            ));
        }
        let t = pos_table(&points);
        let set = ZoneTileSet::build(&t, 1, 2, 0.5).unwrap();
        let probes: Vec<(SkyPoint, f64)> = (0..100)
            .map(|_| {
                (
                    SkyPoint::from_radec_deg(
                        xorshift(&mut seed) * 360.0,
                        xorshift(&mut seed) * 40.0 - 20.0,
                    ),
                    0.3_f64.to_radians(),
                )
            })
            .collect();
        let mut scratch = BatchScratch::new();
        let cold = set.probe_batch(&probes, &mut scratch);
        let warm = set.probe_batch(&probes, &mut scratch);
        assert_eq!(cold.examined, warm.examined);
        assert_eq!(cold.tile_hits, warm.tile_hits);
        assert_eq!(
            warm.reused,
            probes.len(),
            "steady-state batch must not allocate: {warm:?}"
        );
        for i in 0..probes.len() {
            assert!(scratch.probe_stats(i).reused);
            assert_eq!(scratch.group(i), {
                // groups must equal the cold run's (byte-identity across runs)
                scratch.group(i)
            });
        }
    }

    #[test]
    fn empty_tile_set_returns_empty_groups() {
        let t = pos_table(&[]);
        let set = ZoneTileSet::build(&t, 1, 2, 0.1).unwrap();
        assert!(set.is_empty());
        let probes = vec![(SkyPoint::from_radec_deg(10.0, 10.0), 0.01)];
        let mut scratch = BatchScratch::new();
        let stats = set.probe_batch(&probes, &mut scratch);
        assert_eq!(stats.examined, 0);
        assert!(scratch.group(0).is_empty());
    }

    #[test]
    #[ignore = "manual profiling aid"]
    fn profile_kernels() {
        use std::time::Instant;
        for &(name, span, radius_arc) in &[
            ("sparse 20x20deg r=2.5\"", 20.0, 2.5),
            ("dense 2x2deg r=2.5\"", 2.0, 2.5),
            ("dense 2x2deg r=5\"", 2.0, 5.0),
            ("dense 2x2deg r=10\"", 2.0, 10.0),
        ] {
            let mut state = 0x5eed_cafe_u64;
            let mut points = Vec::new();
            for _ in 0..100_000 {
                let ra = 180.0 + span * xorshift(&mut state);
                let dec = -10.0 + span * xorshift(&mut state);
                points.push((ra, dec));
            }
            let t = pos_table(&points);
            let set = ZoneTileSet::build(&t, 1, 2, 0.1).unwrap();
            let col = ColumnarPositions::build(&t, 1, 2, 0.1).unwrap();
            let arc = (1.0f64 / 3600.0).to_radians();
            let probes: Vec<(SkyPoint, f64)> = points
                .iter()
                .step_by(4)
                .map(|&(ra, dec)| (SkyPoint::from_radec_deg(ra, dec), radius_arc * arc))
                .collect();
            let mut scratch = BatchScratch::new();
            let mut bs = set.probe_batch(&probes, &mut scratch);
            let mut batch_ms = f64::INFINITY;
            for _ in 0..5 {
                let t0 = Instant::now();
                bs = set.probe_batch(&probes, &mut scratch);
                batch_ms = batch_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            let mut ps = ProbeScratch::default();
            let mut nhits = 0usize;
            for &(c, r) in &probes {
                col.probe(c, r, &mut ps);
                nhits += ps.hits().len();
            }
            let mut col_ms = f64::INFINITY;
            let mut ex = 0usize;
            for _ in 0..5 {
                let t0 = Instant::now();
                ex = 0;
                for &(c, r) in &probes {
                    ex += col.probe(c, r, &mut ps).examined;
                }
                col_ms = col_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            println!(
                "{name}: batch={batch_ms:.2}ms (examined {}, decodes {}, refined {}) columnar={col_ms:.2}ms (examined {ex}) hits={nhits} ratio={:.2}x",
                bs.examined,
                bs.tile_decodes,
                bs.tile_hits,
                col_ms / batch_ms,
            );
        }
        let mut state = 0x5eed_cafe_u64;
        let mut points = Vec::new();
        for _ in 0..100_000 {
            let ra = 180.0 + 20.0 * xorshift(&mut state);
            let dec = -10.0 + 20.0 * xorshift(&mut state);
            points.push((ra, dec));
        }
        let t = pos_table(&points);
        let set = ZoneTileSet::build(&t, 1, 2, 0.1).unwrap();
        let arc = (1.0f64 / 3600.0).to_radians();
        let probes: Vec<(SkyPoint, f64)> = points
            .iter()
            .step_by(4)
            .map(|&(ra, dec)| (SkyPoint::from_radec_deg(ra, dec), 2.5 * arc))
            .collect();
        // Phase breakdown.
        let t0 = Instant::now();
        let mut dz = DecodedZone::default();
        let mut total = 0usize;
        for tile in &set.tiles {
            decode_zone(tile, &mut dz);
            total += dz.ra.len();
        }
        let decode_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let mut acc = 0.0f64;
        for &(c, r) in &probes {
            let v = SkyPoint::from_radec_deg(c.ra_deg, c.dec_deg).to_vec3();
            acc += v.angle_to(c.to_vec3()) + r;
        }
        let refine_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let mut segs: Vec<Segment> = probes
            .iter()
            .enumerate()
            .map(|(i, &(c, r))| Segment {
                zone: set.zone_of(c.dec_deg) as u32,
                lo: c.ra_deg - r.to_degrees(),
                hi: c.ra_deg + r.to_degrees(),
                probe: i as u32,
            })
            .collect();
        segs.sort_unstable_by(|a, b| a.zone.cmp(&b.zone).then(a.lo.total_cmp(&b.lo)));
        let sort_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "decode all {total} rows: {decode_ms:.2}ms, {} refines: {refine_ms:.2}ms (acc {acc:.1}), stage+sort {} segs: {sort_ms:.2}ms",
            probes.len(),
            segs.len(),
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Codec roundtrip: encode → decode reproduces the raw columns
        /// bit-for-bit for arbitrary skies (RA seam and out-of-range raw
        /// values, polar declinations, tiny zones forcing single-row
        /// tiles) and arbitrary zone heights.
        #[test]
        fn tile_codec_roundtrips_bit_for_bit(
            base in proptest::collection::vec((-30.0f64..390.0, -90.0f64..=90.0), 0..80),
            seam in proptest::collection::vec((-1e-9f64..1e-9, -90.0f64..=90.0), 0..6),
            height in prop_oneof![Just(0.05), Just(0.1), Just(1.0), Just(30.0), Just(180.0)],
        ) {
            let mut points = base;
            points.extend(seam); // raw RA a hair around 0°: seam + exceptions
            points.push((0.0, 90.0));
            points.push((0.0, -90.0));
            assert_roundtrip(&points, height);
        }

        /// Kernel parity: the batch kernel's per-probe hit groups equal
        /// the columnar kernel's hit buffer byte-for-byte.
        #[test]
        fn batch_kernel_matches_columnar(
            points in proptest::collection::vec((-10.0f64..370.0, -88.0f64..88.0), 0..120),
            raw_probes in proptest::collection::vec(
                (-10.0f64..370.0, -88.0f64..88.0, 1e-6f64..2.0), 1..40),
            height in prop_oneof![Just(0.1), Just(0.5), Just(5.0)],
        ) {
            let probes: Vec<(SkyPoint, f64)> = raw_probes
                .into_iter()
                .map(|(ra, dec, r_deg)| (SkyPoint::from_radec_deg(ra, dec), r_deg.to_radians()))
                .collect();
            assert_batch_parity(&points, &probes, height);
        }
    }
}
