//! Runtime values and their comparison semantics.

use crate::schema::DataType;

/// A single cell value.
///
/// Comparison semantics follow SQL-ish conventions restricted to what the
/// SkyQuery dialect needs: `Null` compares equal to nothing (use
/// [`Value::sql_eq`] / [`Value::sql_cmp`]); integers and floats compare
/// numerically across types.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Unsigned 64-bit identifier: object IDs and HTM IDs.
    Id(u64),
}

impl Value {
    /// The data type this value naturally carries, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Id(_) => Some(DataType::Id),
        }
    }

    /// Whether this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Id(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Integer view, when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Id(u) => i64::try_from(*u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// Text view, for text values only.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, for booleans only.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Identifier view: `Id` directly, or a non-negative `Int`.
    pub fn as_id(&self) -> Option<u64> {
        match self {
            Value::Id(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// SQL equality: `Null` never equals anything (including `Null`);
    /// numerics compare across Int/Float/Id.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == std::cmp::Ordering::Equal)
    }

    /// SQL three-valued comparison: `None` when either side is `Null` or
    /// the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total ordering for index keys and sorting: `Null` sorts first, then
    /// booleans, then numerics (cross-type), then text. NaN sorts after all
    /// other floats. Unlike [`Value::sql_cmp`] this is total.
    pub fn key_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) | Id(_) => 2,
                Text(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let x = a.as_f64().unwrap();
                let y = b.as_f64().unwrap();
                x.partial_cmp(&y).unwrap_or_else(|| {
                    // NaN handling: NaN == NaN, NaN > everything else.
                    match (x.is_nan(), y.is_nan()) {
                        (true, true) => Equal,
                        (true, false) => Greater,
                        (false, true) => Less,
                        (false, false) => unreachable!(),
                    }
                })
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Whether this value can be stored in a column of type `ty`.
    /// `Int` widens into `Float`; `Int`≥0 narrows into `Id`.
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Bool(_), DataType::Bool) => true,
            (Value::Int(_), DataType::Int) => true,
            (Value::Int(_), DataType::Float) => true,
            (Value::Int(i), DataType::Id) => *i >= 0,
            (Value::Float(_), DataType::Float) => true,
            (Value::Text(_), DataType::Text) => true,
            (Value::Id(_), DataType::Id) => true,
            (Value::Id(u), DataType::Int) => i64::try_from(*u).is_ok(),
            _ => false,
        }
    }

    /// Coerces the value into the column type where [`Value::conforms_to`]
    /// allows, returning the stored representation.
    pub fn coerce(self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (v @ Value::Bool(_), DataType::Bool) => Some(v),
            (v @ Value::Int(_), DataType::Int) => Some(v),
            (Value::Int(i), DataType::Float) => Some(Value::Float(i as f64)),
            (Value::Int(i), DataType::Id) if i >= 0 => Some(Value::Id(i as u64)),
            (v @ Value::Float(_), DataType::Float) => Some(v),
            (v @ Value::Text(_), DataType::Text) => Some(v),
            (v @ Value::Id(_), DataType::Id) => Some(v),
            (Value::Id(u), DataType::Int) => i64::try_from(u).ok().map(Value::Int),
            _ => None,
        }
    }

    /// Approximate wire size in bytes, used by the network cost model.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Id(_) => 8,
            Value::Float(_) => 8,
            Value::Text(s) => s.len() + 4,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => write!(f, "{s}"),
            Value::Id(u) => write!(f, "{u}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Text(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Text(s)
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Value {
        Value::Id(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn null_never_sql_equal() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn cross_type_numeric_compare() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Id(7).sql_cmp(&Value::Int(6)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn text_and_numeric_incomparable() {
        assert_eq!(Value::Text("a".into()).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn key_cmp_total_ordering() {
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Float(0.5),
            Value::Int(1),
            Value::Id(2),
            Value::Float(f64::NAN),
            Value::Text("a".into()),
            Value::Text("b".into()),
        ];
        // key_cmp must be reflexive-equal and antisymmetric over this set.
        for a in &vals {
            assert_eq!(a.key_cmp(a), Ordering::Equal);
            for b in &vals {
                let ab = a.key_cmp(b);
                let ba = b.key_cmp(a);
                assert_eq!(ab, ba.reverse(), "{a:?} vs {b:?}");
            }
        }
        // Sorting should put them in rank order: Null, bools, numerics, text.
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.key_cmp(b));
        assert!(sorted[0].is_null());
        assert!(matches!(sorted.last().unwrap(), Value::Text(_)));
    }

    #[test]
    fn nan_sorts_after_numbers() {
        let mut v = [
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Float(-1.0),
        ];
        v.sort_by(|a, b| a.key_cmp(b));
        assert_eq!(v[0], Value::Float(-1.0));
        assert!(matches!(v[2], Value::Float(x) if x.is_nan()));
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            Value::Int(3).coerce(DataType::Float),
            Some(Value::Float(3.0))
        );
        assert_eq!(Value::Int(3).coerce(DataType::Id), Some(Value::Id(3)));
        assert_eq!(Value::Int(-3).coerce(DataType::Id), None);
        assert_eq!(Value::Text("x".into()).coerce(DataType::Int), None);
        assert_eq!(Value::Null.coerce(DataType::Text), Some(Value::Null));
        assert_eq!(Value::Id(u64::MAX).coerce(DataType::Int), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Text("GALAXY".into()).to_string(), "GALAXY");
    }

    #[test]
    fn wire_size_accounts_for_text() {
        assert_eq!(Value::Int(1).wire_size(), 8);
        assert_eq!(Value::Text("abcd".into()).wire_size(), 8);
        assert_eq!(Value::Null.wire_size(), 1);
    }
}
