//! Table schemas.
//!
//! SkyNode databases "usually have very similar logical schemas" (§5.1): a
//! primary table stores each object's unique sky position; secondary tables
//! store other observations. [`PositionColumns`] records which columns of a
//! table carry the position so the engine can maintain an HTM index.

use crate::error::StorageError;

/// Column data types supported by the archive engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// Signed 64-bit integer.
    Int,
    /// 64-bit floating point.
    Float,
    /// UTF-8 text.
    Text,
    /// Unsigned 64-bit identifier (object IDs, HTM IDs).
    Id,
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Id => "ID",
        };
        write!(f, "{s}")
    }
}

impl DataType {
    /// Parses the textual form produced by `Display` (case-insensitive).
    pub fn parse(s: &str) -> Option<DataType> {
        match s.to_ascii_uppercase().as_str() {
            "BOOL" => Some(DataType::Bool),
            "INT" => Some(DataType::Int),
            "FLOAT" => Some(DataType::Float),
            "TEXT" => Some(DataType::Text),
            "ID" => Some(DataType::Id),
            _ => None,
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Stored type.
    pub dtype: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl ColumnDef {
    /// A NOT NULL column of the given type.
    pub fn new(name: impl Into<String>, dtype: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// Marks the column as allowing NULLs.
    pub fn nullable(mut self) -> ColumnDef {
        self.nullable = true;
        self
    }
}

/// Which columns of a table carry the object's sky position.
///
/// When present, the engine maintains an HTM index over `(ra, dec)` at the
/// given mesh depth, enabling the range searches of §5.4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionColumns {
    /// Name of the right-ascension column (degrees, FLOAT).
    pub ra: String,
    /// Name of the declination column (degrees, FLOAT).
    pub dec: String,
    /// HTM mesh depth for the position index.
    pub htm_depth: u8,
}

impl PositionColumns {
    /// Names the position columns and the index depth.
    pub fn new(ra: impl Into<String>, dec: impl Into<String>, htm_depth: u8) -> Self {
        PositionColumns {
            ra: ra.into(),
            dec: dec.into(),
            htm_depth,
        }
    }
}

/// A table schema: named, ordered columns plus optional position metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Position metadata, when this is a primary (sky-position) table.
    pub position: Option<PositionColumns>,
}

impl TableSchema {
    /// A schema without position metadata.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> TableSchema {
        TableSchema {
            name: name.into(),
            columns,
            position: None,
        }
    }

    /// Attaches position metadata (making this a "primary table" in the
    /// paper's sense), validating the referenced columns exist and are
    /// FLOAT typed.
    pub fn with_position(mut self, pos: PositionColumns) -> Result<TableSchema, StorageError> {
        for col in [&pos.ra, &pos.dec] {
            match self.column(col) {
                None => {
                    return Err(StorageError::UnknownColumn {
                        table: self.name.clone(),
                        column: col.clone(),
                    })
                }
                Some(def) if def.dtype != DataType::Float => {
                    return Err(StorageError::TypeMismatch {
                        context: format!(
                            "position column {col} of table {} must be FLOAT, is {}",
                            self.name, def.dtype
                        ),
                    })
                }
                Some(_) => {}
            }
        }
        self.position = Some(pos);
        Ok(self)
    }

    /// Index of a column by name (case-sensitive), if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Validates that a row conforms to this schema (arity, types,
    /// nullability) and coerces values into column storage types.
    pub fn conform_row(&self, row: Vec<crate::Value>) -> Result<Vec<crate::Value>, StorageError> {
        if row.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                table: self.name.clone(),
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        row.into_iter()
            .zip(&self.columns)
            .map(|(v, col)| {
                if v.is_null() && !col.nullable {
                    return Err(StorageError::NullViolation {
                        table: self.name.clone(),
                        column: col.name.clone(),
                    });
                }
                v.coerce(col.dtype)
                    .ok_or_else(|| StorageError::TypeMismatch {
                        context: format!("column {}.{} expects {}", self.name, col.name, col.dtype),
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn demo_schema() -> TableSchema {
        TableSchema::new(
            "photo_object",
            vec![
                ColumnDef::new("object_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
                ColumnDef::new("type", DataType::Text).nullable(),
            ],
        )
    }

    #[test]
    fn column_lookup() {
        let s = demo_schema();
        assert_eq!(s.column_index("ra"), Some(1));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.column("type").unwrap().dtype, DataType::Text);
        assert_eq!(s.arity(), 4);
    }

    #[test]
    fn with_position_validates() {
        let ok = demo_schema().with_position(PositionColumns::new("ra", "dec", 10));
        assert!(ok.is_ok());
        let bad_col = demo_schema().with_position(PositionColumns::new("nope", "dec", 10));
        assert!(matches!(bad_col, Err(StorageError::UnknownColumn { .. })));
        let bad_type = demo_schema().with_position(PositionColumns::new("object_id", "dec", 10));
        assert!(matches!(bad_type, Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn conform_row_checks_arity_nullability_types() {
        let s = demo_schema();
        let ok = s.conform_row(vec![
            Value::Int(5),
            Value::Float(185.0),
            Value::Float(-0.5),
            Value::Null,
        ]);
        // Int(5) coerces to Id(5) for the ID column.
        assert_eq!(ok.unwrap()[0], Value::Id(5));

        let short = s.conform_row(vec![Value::Int(5)]);
        assert!(matches!(short, Err(StorageError::ArityMismatch { .. })));

        let null_id = s.conform_row(vec![
            Value::Null,
            Value::Float(0.0),
            Value::Float(0.0),
            Value::Null,
        ]);
        assert!(matches!(null_id, Err(StorageError::NullViolation { .. })));

        let bad_type = s.conform_row(vec![
            Value::Int(1),
            Value::Text("x".into()),
            Value::Float(0.0),
            Value::Null,
        ]);
        assert!(matches!(bad_type, Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn datatype_parse_roundtrip() {
        for ty in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Id,
        ] {
            assert_eq!(DataType::parse(&ty.to_string()), Some(ty));
        }
        assert_eq!(DataType::parse("VARCHAR"), None);
    }
}
