//! Columnar position cache: structure-of-arrays buffers for the
//! cross-match kernel.
//!
//! The XMATCH hot loop probes one small sky ball per incoming tuple. The
//! HTM path answers each probe with a fresh trixel cover plus a candidate
//! `Vec` — correct, but allocation-heavy and branchy. [`ColumnarPositions`]
//! packs a table's positions once into contiguous `f64` arrays (unit-vector
//! `x/y/z` plus the raw `ra/dec`), sorted by declination zone and then by
//! normalized right ascension, so a probe becomes:
//!
//! 1. a declination window → a contiguous range of zone buckets,
//! 2. per zone, a binary-searched RA window (split in two at the 0°/360°
//!    wrap), and
//! 3. a branch-light exact distance test over the surviving slice.
//!
//! Hits land in a caller-owned [`ProbeScratch`], so the steady-state match
//! loop performs no per-tuple heap allocation. The zone bucketing replicates
//! `zones::ZoneMap` (same constants, same rounding) without a crate
//! dependency in that direction — the zones crate keeps an agreement test.
//!
//! Output contract: for any probe, the hit set is byte-identical to
//! [`crate::resolve_range_candidates`] over an HTM candidate superset —
//! same `sep <= radius + 1e-15` acceptance, same separation values (the
//! stored unit vectors are exactly `SkyPoint::from_radec_deg(..).to_vec3()`),
//! same row-id ordering.

use std::f64::consts::PI;

use skyquery_htm::{SkyPoint, Vec3};

use crate::error::StorageError;
use crate::exec::RangeSearchHit;
use crate::index::extract_position;
use crate::table::{RowId, Table};
use crate::value::Value;

/// Zone height used when the requested height is non-finite or ≤ 0.
/// Mirrors `skyquery_core::plan::DEFAULT_ZONE_HEIGHT_DEG`.
const DEFAULT_ZONE_HEIGHT_DEG: f64 = 0.1;

/// Smallest admissible zone height. Mirrors `zones::zonemap::MIN_HEIGHT_DEG`.
const MIN_HEIGHT_DEG: f64 = 1e-4;

/// Slack added to the declination window, in degrees. The acceptance test
/// admits `sep <= radius + 1e-15` rad, so a hit's declination can exceed
/// the nominal window by at most ~6e-14 degrees; 1e-9 covers that plus
/// the degree/radian conversion rounding with orders of magnitude to spare.
pub(crate) const DEC_SLACK_DEG: f64 = 1e-9;

/// Relative inflation of the probe radius before computing the RA window,
/// absorbing rounding in the window formula itself.
const RA_SAFETY: f64 = 1.0 + 1e-9;

/// Absolute inflation of the probe radius (radians) before computing the
/// RA window.
const RA_SLACK_RAD: f64 = 1e-12;

/// Absolute padding of the RA half-window, in degrees.
const RA_PAD_DEG: f64 = 1e-7;

/// Per-probe counters reported by [`ColumnarPositions::probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProbeStats {
    /// Rows whose exact separation was computed (the candidate window).
    pub examined: usize,
    /// Whether the probe completed without growing the scratch buffers —
    /// i.e. a zero-allocation probe.
    pub reused: bool,
    /// Compressed zone tiles decoded on behalf of this probe (batch
    /// kernel only; always zero for the columnar and HTM paths).
    pub tile_decodes: usize,
    /// Tile-lane candidates that survived the vectorized prefilter and
    /// went to exact refinement (batch kernel only).
    pub tile_hits: usize,
}

/// Reusable per-worker scratch for the columnar kernel: the candidate/hit
/// staging buffer plus a carried-value staging buffer for tuple extension.
/// Reusing one scratch across probes makes the steady-state loop
/// allocation-free once the buffers reach their high-water mark.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    hits: Vec<RangeSearchHit>,
    values: Vec<Value>,
}

impl ProbeScratch {
    /// An empty scratch; buffers grow to their high-water mark on first use.
    pub fn new() -> ProbeScratch {
        ProbeScratch::default()
    }

    /// The hits produced by the most recent probe, sorted by row id.
    pub fn hits(&self) -> &[RangeSearchHit] {
        &self.hits
    }

    /// Mutable access to the hit buffer, for probe paths (like the HTM
    /// fallback) that fill it externally.
    pub fn hits_mut(&mut self) -> &mut Vec<RangeSearchHit> {
        &mut self.hits
    }

    /// Splits the scratch into the (read-only) hit slice and the
    /// (mutable) carried-value staging buffer, so tuple extension can
    /// stage values while iterating hits.
    pub fn parts(&mut self) -> (&[RangeSearchHit], &mut Vec<Value>) {
        (&self.hits, &mut self.values)
    }
}

/// Structure-of-arrays snapshot of a table's positions, bucketed by
/// declination zone and RA-sorted within each bucket. Built once per
/// (table contents, zone height) and cached by the database; any table
/// mutation invalidates it.
#[derive(Debug, Clone)]
pub struct ColumnarPositions {
    /// The zone height as requested (the cache key — may differ from the
    /// effective height after clamping/fallback).
    requested_height_deg: f64,
    /// Effective (clamped) zone height used for bucketing.
    height_deg: f64,
    zone_count: usize,
    /// `zone_starts[z]..zone_starts[z+1]` is zone `z`'s slice of the
    /// arrays below; length `zone_count + 1`.
    zone_starts: Vec<usize>,
    /// Unit-vector components, exactly `from_radec_deg(ra, dec).to_vec3()`.
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    /// Right ascension normalized into `[0, 360]` degrees (the sort key
    /// within a zone; `rem_euclid` can round up to exactly 360).
    ra_deg: Vec<f64>,
    /// Raw declination in degrees.
    dec_deg: Vec<f64>,
    /// Row id of each packed position.
    row: Vec<RowId>,
}

impl ColumnarPositions {
    /// Packs `table`'s positions. `ra_ci`/`dec_ci` are the position column
    /// indexes; `zone_height_deg` is the requested zone height (clamped
    /// exactly like `zones::ZoneMap`). Fails on rows with non-finite
    /// positions, like the HTM index build.
    pub fn build(
        table: &Table,
        ra_ci: usize,
        dec_ci: usize,
        zone_height_deg: f64,
    ) -> Result<ColumnarPositions, StorageError> {
        let (height, zone_count) = effective_height(zone_height_deg);
        let order = pack_order(table, ra_ci, dec_ci, height, zone_count)?;
        let n = order.len();
        let mut cols = ColumnarPositions {
            requested_height_deg: zone_height_deg,
            height_deg: height,
            zone_count,
            zone_starts: vec![0; zone_count + 1],
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            z: Vec::with_capacity(n),
            ra_deg: Vec::with_capacity(n),
            dec_deg: Vec::with_capacity(n),
            row: Vec::with_capacity(n),
        };
        let mut counts = vec![0usize; zone_count];
        for p in &order {
            counts[p.zone] += 1;
            // Rebuild the unit vector from the *raw* column values so the
            // stored components are bit-identical to what the HTM path
            // computes per probe. `ra_norm` only orders the bucket.
            let raw = table.row(p.rid).expect("row id from iteration");
            let (ra_raw, _) = extract_position(table.name(), raw, ra_ci, dec_ci)?;
            let v = SkyPoint::from_radec_deg(ra_raw, p.dec).to_vec3();
            cols.x.push(v.x);
            cols.y.push(v.y);
            cols.z.push(v.z);
            cols.ra_deg.push(p.ra_norm);
            cols.dec_deg.push(p.dec);
            cols.row.push(p.rid);
        }
        for (z, &count) in counts.iter().enumerate() {
            cols.zone_starts[z + 1] = cols.zone_starts[z] + count;
        }
        Ok(cols)
    }

    /// The zone height this cache was requested with (the cache key).
    pub fn requested_height_deg(&self) -> f64 {
        self.requested_height_deg
    }

    /// The effective (clamped) zone height in degrees.
    pub fn height_deg(&self) -> f64 {
        self.height_deg
    }

    /// Number of declination zones.
    pub fn zone_count(&self) -> usize {
        self.zone_count
    }

    /// Number of packed positions.
    pub fn len(&self) -> usize {
        self.row.len()
    }

    /// Whether the cache holds no positions.
    pub fn is_empty(&self) -> bool {
        self.row.is_empty()
    }

    /// The zone bucket a declination falls in under this layout. Exposed
    /// so the zone engine can assert its own `ZoneMap` bucketing (a
    /// deliberate re-derivation — the crates must not depend on each
    /// other) stays identical to this one.
    pub fn zone_of_dec(&self, dec_deg: f64) -> usize {
        self.zone_of(dec_deg)
    }

    fn zone_of(&self, dec_deg: f64) -> usize {
        zone_of_raw(dec_deg, self.height_deg, self.zone_count)
    }

    /// Probes the ball around `center` with radius `radius_rad`, filling
    /// `scratch` with hits (`sep <= radius + 1e-15`, sorted by row id —
    /// the [`crate::resolve_range_candidates`] contract). Returns per-probe
    /// counters.
    pub fn probe(
        &self,
        center: SkyPoint,
        radius_rad: f64,
        scratch: &mut ProbeScratch,
    ) -> ProbeStats {
        let cap_before = scratch.hits.capacity();
        scratch.hits.clear();
        let cvec = center.to_vec3();
        let r_deg = radius_rad.to_degrees();
        let zone_lo = self.zone_of(center.dec_deg - r_deg - DEC_SLACK_DEG);
        let zone_hi = self.zone_of(center.dec_deg + r_deg + DEC_SLACK_DEG);
        let windows = ra_windows(center, radius_rad);
        let mut examined = 0usize;
        for zone in zone_lo..=zone_hi {
            let (zs, ze) = (self.zone_starts[zone], self.zone_starts[zone + 1]);
            if zs == ze {
                continue;
            }
            match &windows {
                RaWindows::Full => examined += self.scan(zs, ze, cvec, radius_rad, scratch),
                RaWindows::Ranges(ranges, n) => {
                    let ras = &self.ra_deg[zs..ze];
                    for &(lo, hi) in &ranges[..*n] {
                        let a = zs + ras.partition_point(|&r| r < lo);
                        let b = zs + ras.partition_point(|&r| r <= hi);
                        examined += self.scan(a, b, cvec, radius_rad, scratch);
                    }
                }
            }
        }
        scratch.hits.sort_unstable_by_key(|h| h.row);
        ProbeStats {
            examined,
            reused: scratch.hits.capacity() == cap_before,
            ..ProbeStats::default()
        }
    }

    /// Exact distance test over the packed slice `[a, b)`.
    fn scan(
        &self,
        a: usize,
        b: usize,
        cvec: Vec3,
        radius_rad: f64,
        scratch: &mut ProbeScratch,
    ) -> usize {
        for i in a..b {
            let v = Vec3::new(self.x[i], self.y[i], self.z[i]);
            // Row vector first, center second — the argument order of
            // `SkyPoint::separation`, which the HTM path uses.
            let sep = v.angle_to(cvec);
            if sep <= radius_rad + 1e-15 {
                scratch.hits.push(RangeSearchHit {
                    row: self.row[i],
                    separation_rad: sep,
                });
            }
        }
        b - a
    }
}

/// Clamps/defaults a requested zone height exactly like `zones::ZoneMap`
/// and derives the zone count. Shared by the columnar layout and the
/// compressed tile layout so both bucket positions identically.
pub(crate) fn effective_height(zone_height_deg: f64) -> (f64, usize) {
    let height = if zone_height_deg.is_finite() && zone_height_deg > 0.0 {
        zone_height_deg.clamp(MIN_HEIGHT_DEG, 180.0)
    } else {
        DEFAULT_ZONE_HEIGHT_DEG
    };
    let zone_count = (180.0 / height).ceil().max(1.0) as usize;
    (height, zone_count)
}

/// One position in canonical pack order: bucketed by declination zone,
/// then sorted by normalized right ascension, ties broken by row id.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PackedPos {
    /// Declination zone index.
    pub zone: usize,
    /// Right ascension normalized into `[0, 360]` (`rem_euclid` can round
    /// up to exactly 360); the sort key, not necessarily the raw column.
    pub ra_norm: f64,
    /// The row id.
    pub rid: RowId,
    /// Raw declination in degrees.
    pub dec: f64,
}

/// Extracts and sorts `table`'s positions into the canonical pack order
/// shared by [`ColumnarPositions`] and [`crate::tile::ZoneTileSet`]. Fails
/// on rows with non-finite positions, like the HTM index build.
pub(crate) fn pack_order(
    table: &Table,
    ra_ci: usize,
    dec_ci: usize,
    height: f64,
    zone_count: usize,
) -> Result<Vec<PackedPos>, StorageError> {
    let mut order: Vec<PackedPos> = Vec::with_capacity(table.len());
    for (rid, raw) in table.iter() {
        let (ra, dec) = extract_position(table.name(), raw, ra_ci, dec_ci)?;
        let zone = zone_of_raw(dec, height, zone_count);
        order.push(PackedPos {
            zone,
            ra_norm: ra.rem_euclid(360.0),
            rid,
            dec,
        });
    }
    order.sort_unstable_by(|a, b| {
        (a.zone, a.ra_norm, a.rid)
            .partial_cmp(&(b.zone, b.ra_norm, b.rid))
            .expect("finite sort keys")
    });
    Ok(order)
}

/// Zone formula shared with `zones::ZoneMap::zone_of` (same constants,
/// same rounding; the zones crate keeps an agreement test).
pub(crate) fn zone_of_raw(dec_deg: f64, height_deg: f64, zone_count: usize) -> usize {
    let idx = ((dec_deg + 90.0) / height_deg).floor();
    if idx.is_nan() || idx < 0.0 {
        return 0;
    }
    (idx as usize).min(zone_count - 1)
}

/// The probe's right-ascension window(s) in normalized degrees.
pub(crate) enum RaWindows {
    /// Window covers all RA — scan whole zone buckets.
    Full,
    /// Up to two `[lo, hi]` subranges (two when the window wraps 0°/360°).
    Ranges([(f64, f64); 2], usize),
}

/// Computes the RA half-window for a ball of radius `radius_rad` centered
/// at `center`: the maximum |ΔRA| over the ball is
/// `atan( sin θ / sqrt( cos(δ−θ)·cos(δ+θ) ) )` (the classic zone-algorithm
/// bound; the product equals `cos²θ − sin²δ`). Degenerate geometry — the
/// ball touching a pole, or θ ≥ π — falls back to a full scan.
pub(crate) fn ra_windows(center: SkyPoint, radius_rad: f64) -> RaWindows {
    let theta = radius_rad * RA_SAFETY + RA_SLACK_RAD;
    if theta >= PI {
        return RaWindows::Full;
    }
    let dec = center.dec_deg.to_radians();
    let prod = (dec - theta).cos() * (dec + theta).cos();
    if prod <= 1e-12 {
        return RaWindows::Full;
    }
    let alpha = (theta.sin() / prod.sqrt()).atan().to_degrees() + RA_PAD_DEG;
    if alpha >= 180.0 {
        return RaWindows::Full;
    }
    let c = center.ra_deg.rem_euclid(360.0);
    let (lo, hi) = (c - alpha, c + alpha);
    if lo < 0.0 {
        RaWindows::Ranges([(lo + 360.0, 360.0), (0.0, hi)], 2)
    } else if hi >= 360.0 {
        RaWindows::Ranges([(lo, 360.0), (0.0, hi - 360.0)], 2)
    } else {
        RaWindows::Ranges([(lo, hi), (0.0, 0.0)], 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, PositionColumns, TableSchema};

    fn pos_table(points: &[(f64, f64)]) -> Table {
        let schema = TableSchema::new(
            "primary",
            vec![
                ColumnDef::new("object_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 10))
        .unwrap();
        let mut t = Table::new(schema);
        for (i, &(ra, dec)) in points.iter().enumerate() {
            t.insert(vec![
                Value::Id(i as u64),
                Value::Float(ra),
                Value::Float(dec),
            ])
            .unwrap();
        }
        t
    }

    /// Linear-scan oracle with the exact acceptance test of
    /// `resolve_range_candidates`.
    fn oracle(points: &[(f64, f64)], center: SkyPoint, radius_rad: f64) -> Vec<RangeSearchHit> {
        let mut hits: Vec<RangeSearchHit> = points
            .iter()
            .enumerate()
            .filter_map(|(rid, &(ra, dec))| {
                let sep = SkyPoint::from_radec_deg(ra, dec).separation(center);
                (sep <= radius_rad + 1e-15).then_some(RangeSearchHit {
                    row: rid as RowId,
                    separation_rad: sep,
                })
            })
            .collect();
        hits.sort_by_key(|h| h.row);
        hits
    }

    fn xorshift(state: &mut u64) -> f64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn probe_matches_linear_oracle() {
        let mut seed = 0x5eed_cafe_u64;
        let mut points = Vec::new();
        for _ in 0..600 {
            let ra = xorshift(&mut seed) * 360.0;
            let dec = xorshift(&mut seed) * 160.0 - 80.0;
            points.push((ra, dec));
        }
        // A tight cluster so some probes have many hits.
        for k in 0..8 {
            points.push((120.0 + k as f64 * 2e-4, 12.0 + k as f64 * 1e-4));
        }
        let t = pos_table(&points);
        let cols = ColumnarPositions::build(&t, 1, 2, 0.5).unwrap();
        let mut scratch = ProbeScratch::new();
        let mut probes = vec![
            (SkyPoint::from_radec_deg(120.0, 12.0), 0.001),
            (SkyPoint::from_radec_deg(0.05, -10.0), 0.01),
            (SkyPoint::from_radec_deg(359.99, 30.0), 0.01),
            (SkyPoint::from_radec_deg(180.0, 79.9), 0.02),
            (SkyPoint::from_radec_deg(10.0, 0.0), 3.2), // radius > π: full-sky scan
        ];
        for _ in 0..40 {
            let c = SkyPoint::from_radec_deg(
                xorshift(&mut seed) * 360.0,
                xorshift(&mut seed) * 160.0 - 80.0,
            );
            probes.push((c, xorshift(&mut seed) * 0.05 + 1e-6));
        }
        for (center, radius) in probes {
            let stats = cols.probe(center, radius, &mut scratch);
            let want = oracle(&points, center, radius);
            assert_eq!(scratch.hits(), want.as_slice(), "center {center:?}");
            assert!(stats.examined >= want.len());
        }
    }

    #[test]
    fn probe_handles_ra_wraparound() {
        let points = vec![
            (359.95, 5.0),
            (0.05, 5.0),
            (0.0, 5.0),
            (360.0 - 1e-13, 5.0), // normalizes to 360.0 exactly
            (180.0, 5.0),
        ];
        let t = pos_table(&points);
        let cols = ColumnarPositions::build(&t, 1, 2, 1.0).unwrap();
        let mut scratch = ProbeScratch::new();
        for center_ra in [0.0, 359.999, 0.001, -0.05] {
            let center = SkyPoint::from_radec_deg(center_ra, 5.0);
            let radius = 0.2_f64.to_radians();
            cols.probe(center, radius, &mut scratch);
            assert_eq!(
                scratch.hits(),
                oracle(&points, center, radius).as_slice(),
                "center_ra {center_ra}"
            );
        }
    }

    #[test]
    fn probe_near_poles_falls_back_to_full_ra_scan() {
        let mut points = Vec::new();
        for k in 0..36 {
            points.push((k as f64 * 10.0, 89.5));
        }
        points.push((0.0, -89.9));
        let t = pos_table(&points);
        let cols = ColumnarPositions::build(&t, 1, 2, 0.1).unwrap();
        let mut scratch = ProbeScratch::new();
        let center = SkyPoint::from_radec_deg(45.0, 89.8);
        let radius = 1.0_f64.to_radians();
        cols.probe(center, radius, &mut scratch);
        assert_eq!(scratch.hits(), oracle(&points, center, radius).as_slice());
    }

    #[test]
    fn scratch_reuse_reported_after_high_water_mark() {
        let mut points = Vec::new();
        for k in 0..32 {
            points.push((100.0 + k as f64 * 1e-3, 0.0));
        }
        let t = pos_table(&points);
        let cols = ColumnarPositions::build(&t, 1, 2, 0.1).unwrap();
        let mut scratch = ProbeScratch::new();
        let center = SkyPoint::from_radec_deg(100.015, 0.0);
        let radius = 1.0_f64.to_radians();
        let first = cols.probe(center, radius, &mut scratch);
        assert!(!first.reused, "first probe must allocate");
        let second = cols.probe(center, radius, &mut scratch);
        assert!(second.reused, "steady-state probe must not allocate");
        assert_eq!(second.examined, first.examined);
    }

    #[test]
    fn build_rejects_nonfinite_positions() {
        let schema = TableSchema::new(
            "p",
            vec![
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 10))
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::Float(f64::NAN), Value::Float(0.0)])
            .unwrap();
        assert!(ColumnarPositions::build(&t, 0, 1, 0.1).is_err());
    }

    #[test]
    fn zone_bucketing_covers_every_row() {
        let points: Vec<(f64, f64)> = (0..100)
            .map(|i| ((i as f64 * 3.6) % 360.0, (i as f64 * 1.8) - 90.0))
            .collect();
        let t = pos_table(&points);
        let cols = ColumnarPositions::build(&t, 1, 2, 5.0).unwrap();
        assert_eq!(cols.len(), 100);
        assert_eq!(*cols.zone_starts.last().unwrap(), 100);
        // Within each zone RA must be sorted.
        for z in 0..cols.zone_count() {
            let (a, b) = (cols.zone_starts[z], cols.zone_starts[z + 1]);
            for i in a + 1..b {
                assert!(cols.ra_deg[i - 1] <= cols.ra_deg[i]);
            }
        }
    }
}
