//! Property tests for the archive engine: index results always agree
//! with full scans, and inserts never corrupt invariants.

use proptest::prelude::*;
use skyquery_htm::SkyPoint;
use skyquery_storage::{
    BufferCache, ColumnDef, DataType, Database, PositionColumns, ScanOptions, TableSchema, Value,
};

fn pos_db(points: &[(f64, f64)], depth: u8) -> Database {
    let schema = TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Id),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("dec", DataType::Float),
        ],
    )
    .with_position(PositionColumns::new("ra", "dec", depth))
    .unwrap();
    let mut db = Database::with_cache("p", BufferCache::new(256, 16));
    db.create_table(schema).unwrap();
    for (i, &(ra, dec)) in points.iter().enumerate() {
        db.insert(
            "t",
            vec![Value::Id(i as u64), Value::Float(ra), Value::Float(dec)],
        )
        .unwrap();
    }
    db
}

fn sky_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..360.0, -85.0f64..85.0), 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn htm_range_search_equals_linear(
        points in sky_points(),
        center_ra in 0.0f64..360.0,
        center_dec in -85.0f64..85.0,
        radius_deg in 0.01f64..30.0,
        depth in 6u8..13,
    ) {
        let mut db = pos_db(&points, depth);
        let center = SkyPoint::from_radec_deg(center_ra, center_dec);
        let radius = radius_deg.to_radians();
        let fast: Vec<usize> = db
            .range_search("t", center, radius, ScanOptions::untracked())
            .unwrap()
            .into_iter()
            .map(|h| h.row)
            .collect();
        let slow: Vec<usize> = db
            .range_search_linear("t", center, radius, ScanOptions::untracked())
            .unwrap()
            .into_iter()
            .map(|h| h.row)
            .collect();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn btree_lookup_equals_scan(
        keys in proptest::collection::vec(-50i64..50, 0..200),
        probe in -60i64..60,
    ) {
        let schema = TableSchema::new("k", vec![ColumnDef::new("v", DataType::Int)]);
        let mut db = Database::new("b");
        db.create_table(schema).unwrap();
        // Build the index first so incremental maintenance is exercised.
        db.create_btree_index("k", "v").unwrap();
        for k in &keys {
            db.insert("k", vec![Value::Int(*k)]).unwrap();
        }
        let via_index = db
            .lookup_eq("k", "v", &Value::Int(probe), ScanOptions::untracked())
            .unwrap();
        let via_scan = db
            .scan_filter("k", ScanOptions::untracked(), |_, row| {
                row[0].sql_eq(&Value::Int(probe)).unwrap_or(false)
            })
            .unwrap();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn row_count_matches_inserts(
        n in 0usize..100,
    ) {
        let schema = TableSchema::new("c", vec![ColumnDef::new("v", DataType::Int)]);
        let mut db = Database::new("c");
        db.create_table(schema).unwrap();
        for i in 0..n {
            db.insert("c", vec![Value::Int(i as i64)]).unwrap();
        }
        prop_assert_eq!(db.row_count("c").unwrap(), n);
        prop_assert_eq!(
            db.count_where("c", ScanOptions::untracked(), |_, _| true).unwrap(),
            n
        );
    }

    #[test]
    fn range_search_hits_carry_true_separation(
        points in sky_points(),
        radius_deg in 0.1f64..10.0,
    ) {
        let mut db = pos_db(&points, 10);
        let center = SkyPoint::from_radec_deg(180.0, 0.0);
        let radius = radius_deg.to_radians();
        for hit in db.range_search("t", center, radius, ScanOptions::untracked()).unwrap() {
            prop_assert!(hit.separation_rad <= radius + 1e-12);
            let row = db.table("t").unwrap().row(hit.row).unwrap().clone();
            let p = SkyPoint::from_radec_deg(
                row[1].as_f64().unwrap(),
                row[2].as_f64().unwrap(),
            );
            prop_assert!((p.separation(center) - hit.separation_rad).abs() < 1e-12);
        }
    }

    #[test]
    fn temp_tables_isolated(
        n_temps in 1usize..6,
        rows_per in 0usize..10,
    ) {
        let schema = TableSchema::new("tmp", vec![ColumnDef::new("v", DataType::Int)]);
        let mut db = Database::new("iso");
        let mut names = Vec::new();
        for _ in 0..n_temps {
            names.push(db.create_temp_table(schema.clone()).unwrap());
        }
        for (i, name) in names.iter().enumerate() {
            for r in 0..rows_per + i {
                db.insert(name, vec![Value::Int(r as i64)]).unwrap();
            }
        }
        for (i, name) in names.iter().enumerate() {
            prop_assert_eq!(db.row_count(name).unwrap(), rows_per + i);
        }
        for name in &names {
            db.drop_table(name).unwrap();
        }
        prop_assert!(db.catalog().tables.is_empty());
    }
}
