//! Transactional data exchange between archives (§6 extension).
//!
//! The paper's future work: "Another extension is to implement
//! transaction processing for exchange of data between astronomy
//! archives, and see how the stateless SOAP handles such complex
//! requirements." This module does exactly that: an atomic bulk copy of
//! rows from one archive to another, coordinated by the Portal with a
//! **two-phase commit** over stateless SOAP calls.
//!
//! Protocol (coordinator = Portal, participant = destination SkyNode):
//!
//! 1. The coordinator pulls the source rows through the source node's
//!    Query service.
//! 2. **Prepare**: `PrepareReceive(txn, dest_table, schema, rows)` — the
//!    participant validates the schema, stages the rows in a temp table,
//!    records the transaction, and votes yes by answering `staged = n`.
//!    Any validation failure is a no vote (SOAP fault), leaving nothing
//!    behind.
//! 3. **Commit**: `CommitReceive(txn)` — the participant atomically
//!    publishes the staged rows into the destination table (creating it
//!    if needed) and forgets the transaction. Or **Abort**:
//!    `AbortReceive(txn)` — the staging table is dropped.
//!
//! The participant's staging tables make prepare durable-until-decided;
//! because SOAP is stateless, the transaction id carried in every call is
//! the only shared context — exactly the experiment the paper proposed.

use skyquery_soap::{RpcCall, SoapValue};
use skyquery_sql::parse_query;
use skyquery_storage::{ColumnDef, TableSchema};
use skyquery_xml::Element;

use crate::error::{FederationError, Result};
use crate::meta::{catalog_from_element, catalog_to_element};
use crate::portal::Portal;
use crate::result::ResultSet;
use crate::transfer::send_rpc_with;

/// Outcome of a completed transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferReport {
    /// The two-phase-commit transaction id.
    pub txn_id: u64,
    /// Rows published at the destination.
    pub rows_copied: usize,
    /// Source archive name.
    pub source: String,
    /// Destination archive name.
    pub destination: String,
    /// Destination table name.
    pub dest_table: String,
}

impl Portal {
    /// Atomically copies the result of `select_sql` (a single-archive
    /// query against `source_archive`) into `dest_table` at
    /// `dest_archive`, using two-phase commit. Returns the transfer
    /// report, or an error with nothing published at the destination.
    pub fn transfer_table(
        &self,
        source_archive: &str,
        select_sql: &str,
        dest_archive: &str,
        dest_table: &str,
    ) -> Result<TransferReport> {
        let source = self.node(source_archive).ok_or_else(|| {
            FederationError::planning(format!("archive {source_archive} is not registered"))
        })?;
        let dest = self.node(dest_archive).ok_or_else(|| {
            FederationError::planning(format!("archive {dest_archive} is not registered"))
        })?;
        // Validate the query addresses the source archive (autonomy).
        let parsed = parse_query(select_sql).map_err(FederationError::Sql)?;
        if parsed.from.len() != 1 || !parsed.from[0].archive.eq_ignore_ascii_case(source_archive) {
            return Err(FederationError::planning(format!(
                "transfer query must select from exactly {source_archive}"
            )));
        }

        // Pull the rows.
        let net = self.portal_net();
        let retry = self.config().retry;
        let resp = send_rpc_with(
            &net,
            self.host(),
            &source.url,
            &RpcCall::new("Query").param("sql", SoapValue::Str(select_sql.to_string())),
            retry,
        )?;
        let table = resp
            .require("rows")?
            .as_table()
            .ok_or_else(|| FederationError::protocol("transfer query must return rows"))?;
        let rows = ResultSet::from_votable(table)?;

        // Derive the destination schema from the result columns
        // (unqualified names).
        let columns: Vec<ColumnDef> = rows
            .columns
            .iter()
            .map(|c| {
                let name = c
                    .name
                    .rsplit_once('.')
                    .map(|(_, n)| n)
                    .unwrap_or(&c.name)
                    .to_string();
                ColumnDef::new(name, c.dtype).nullable()
            })
            .collect();
        let schema = TableSchema::new(dest_table, columns);
        let schema_el = catalog_to_element(&skyquery_storage::Catalog {
            database: dest_archive.to_string(),
            tables: vec![skyquery_storage::TableStats {
                schema,
                row_count: rows.row_count(),
                approx_bytes: 0,
                version: 0,
            }],
        });

        let txn_id = next_txn_id();

        // Phase 1: prepare.
        let prepare = RpcCall::new("PrepareReceive")
            .param("txn", SoapValue::Int(txn_id as i64))
            .param("dest_table", SoapValue::Str(dest_table.to_string()))
            .param("schema", SoapValue::Xml(schema_el))
            .param("rows", SoapValue::Table(rows.to_votable("transfer")));
        let vote = send_rpc_with(&net, self.host(), &dest.url, &prepare, retry);
        let staged = match vote {
            Ok(resp) => resp
                .require("staged")?
                .as_i64()
                .ok_or_else(|| FederationError::protocol("staged must be an integer"))?,
            Err(e) => {
                // No vote: nothing was staged (or the participant cleaned
                // up); the coordinator simply reports failure.
                return Err(e);
            }
        };

        // Phase 2: commit (on any failure here, try to abort so staging
        // is not leaked, then surface the original error — and if the
        // abort *also* fails, say so: the participant may be holding an
        // undecided staging table, and the caller must know).
        let commit = RpcCall::new("CommitReceive").param("txn", SoapValue::Int(txn_id as i64));
        match send_rpc_with(&net, self.host(), &dest.url, &commit, retry) {
            Ok(resp) => {
                // The participant reports the destination table's new
                // modification version (lenient: absent from pre-version
                // peers). Feeding it to the registry keeps the result
                // cache's version vectors honest without a re-register.
                if let Some(v) = resp.get("version").and_then(|v| v.as_i64()) {
                    self.update_registry_version(&dest.url.host, dest_table, v as u64);
                }
                Ok(TransferReport {
                    txn_id,
                    rows_copied: staged as usize,
                    source: source_archive.to_string(),
                    destination: dest_archive.to_string(),
                    dest_table: dest_table.to_string(),
                })
            }
            Err(commit_err) => {
                let abort =
                    RpcCall::new("AbortReceive").param("txn", SoapValue::Int(txn_id as i64));
                match send_rpc_with(&net, self.host(), &dest.url, &abort, retry) {
                    Ok(_) => {
                        net.record_fault(self.host(), &dest.url.host, "exchange-abort");
                        Err(commit_err)
                    }
                    Err(abort_err) => {
                        net.record_fault(self.host(), &dest.url.host, "exchange-abort-failed");
                        Err(FederationError::AbortFailed {
                            txn: txn_id,
                            host: dest.url.host.clone(),
                            commit: Box::new(commit_err),
                            abort: Box::new(abort_err),
                        })
                    }
                }
            }
        }
    }
}

fn next_txn_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Participant-side staging state, owned by each SkyNode.
///
/// Every staged transaction carries a TTL lease against the node's
/// simulated clock ([`crate::lease::LeaseTable`]): a coordinator that
/// crashes between prepare and decision no longer strands a staging
/// table forever — the node's janitor sweep ([`ExchangeState::sweep`])
/// aborts the orphan once its lease lapses.
#[derive(Debug, Default)]
pub struct ExchangeState {
    /// txn id → (destination table, staging temp-table name, schema),
    /// leased.
    staged: crate::lease::LeaseTable<StagedTransfer>,
    /// Staging tables the abort paths failed to drop. Mirrors the
    /// `AbortFailed` discipline of the coordinator: a failed cleanup is
    /// never silent — the table may still be pinning node memory, and
    /// operators watching this tally know to go look.
    drop_failures: u64,
}

#[derive(Debug)]
struct StagedTransfer {
    dest_table: String,
    staging_table: String,
    schema: TableSchema,
}

impl ExchangeState {
    /// No transactions staged.
    pub fn new() -> ExchangeState {
        ExchangeState::default()
    }

    /// Phase 1 at the participant: validate and stage. The stage is held
    /// under a lease of `ttl_s` simulated seconds from `now_s`; an
    /// undecided transaction whose coordinator never returns is aborted
    /// by [`ExchangeState::sweep`] once the lease lapses.
    #[allow(clippy::too_many_arguments)]
    pub fn prepare(
        &mut self,
        db: &mut skyquery_storage::Database,
        txn: u64,
        dest_table: &str,
        schema_el: &Element,
        rows: &ResultSet,
        now_s: f64,
        ttl_s: f64,
    ) -> Result<usize> {
        if self.staged.contains(txn) {
            return Err(FederationError::protocol(format!(
                "transaction {txn} already prepared"
            )));
        }
        let catalog = catalog_from_element(schema_el)?;
        let stats = catalog
            .tables
            .first()
            .ok_or_else(|| FederationError::protocol("transfer schema missing table"))?;
        let mut schema = stats.schema.clone();
        schema.name = dest_table.to_string();
        // If the destination table already exists, its schema must match
        // (same column names and types, in order).
        if db.has_table(dest_table) {
            let existing = db.schema(dest_table)?;
            let compatible = existing.columns.len() == schema.columns.len()
                && existing
                    .columns
                    .iter()
                    .zip(&schema.columns)
                    .all(|(a, b)| a.name == b.name && a.dtype == b.dtype);
            if !compatible {
                return Err(FederationError::protocol(format!(
                    "destination table {dest_table} exists with an incompatible schema"
                )));
            }
        }
        // Stage: all rows must insert cleanly or the whole prepare fails
        // (the staging table is dropped — a clean no-vote).
        let staging = db.create_temp_table(schema.clone())?;
        for row in &rows.rows {
            if let Err(e) = db.insert(&staging, row.clone()) {
                // The no-vote must leave nothing behind; a drop that
                // fails here leaks the staging table, so tally it.
                if db.drop_table(&staging).is_err() {
                    self.drop_failures += 1;
                }
                return Err(FederationError::Storage(e));
            }
        }
        let n = rows.row_count();
        self.staged.insert(
            txn,
            StagedTransfer {
                dest_table: dest_table.to_string(),
                staging_table: staging,
                schema,
            },
            now_s,
            ttl_s,
        );
        Ok(n)
    }

    /// Phase 2 commit: publish staged rows. Returns the row count
    /// published and the destination table's post-commit modification
    /// version, which rides back to the coordinator so its cached view
    /// of this archive's versions stays current without a Metadata call.
    pub fn commit(
        &mut self,
        db: &mut skyquery_storage::Database,
        txn: u64,
    ) -> Result<(usize, u64)> {
        let t = self
            .staged
            .remove(txn)
            .ok_or_else(|| FederationError::protocol(format!("unknown transaction {txn}")))?;
        if !db.has_table(&t.dest_table) {
            let mut schema = t.schema.clone();
            schema.name = t.dest_table.clone();
            db.create_table(schema)?;
        }
        let rows: Vec<skyquery_storage::Row> = db.table(&t.staging_table)?.rows().to_vec();
        let n = rows.len();
        for row in rows {
            db.insert(&t.dest_table, row)?;
        }
        db.drop_table(&t.staging_table)?;
        let version = db.table_version(&t.dest_table)?;
        Ok((n, version))
    }

    /// Phase 2 abort: drop staging.
    pub fn abort(&mut self, db: &mut skyquery_storage::Database, txn: u64) -> Result<()> {
        let t = self
            .staged
            .remove(txn)
            .ok_or_else(|| FederationError::protocol(format!("unknown transaction {txn}")))?;
        db.drop_table(&t.staging_table)?;
        Ok(())
    }

    /// Extends the lease of a staged transaction to a full TTL from
    /// `now_s`. Returns whether the transaction was staged.
    pub fn renew(&mut self, txn: u64, now_s: f64) -> bool {
        self.staged.renew(txn, now_s)
    }

    /// Janitor sweep: aborts every staged transaction whose lease expired
    /// at or before `now_s`, dropping its staging table. Returns the
    /// reclaimed transaction ids, sorted.
    pub fn sweep(&mut self, db: &mut skyquery_storage::Database, now_s: f64) -> Vec<u64> {
        let mut expired = self.staged.sweep(now_s);
        let mut out = Vec::with_capacity(expired.len());
        for (txn, t) in expired.drain(..) {
            // A staging table that will not drop is a leak the janitor
            // cannot fix by itself: tally it instead of pretending the
            // sweep reclaimed everything.
            if db.drop_table(&t.staging_table).is_err() {
                self.drop_failures += 1;
            }
            out.push(txn);
        }
        out
    }

    /// Transactions currently awaiting a decision.
    pub fn pending(&self) -> Vec<u64> {
        self.staged.ids()
    }

    /// How many staging tables the abort paths (a failed prepare's
    /// unwind, the janitor sweep) failed to drop.
    pub fn drop_failures(&self) -> u64 {
        self.drop_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyquery_storage::{DataType, Database, Value};

    fn rows() -> ResultSet {
        let mut rs = ResultSet::new(vec![
            crate::result::ResultColumn::new("S.object_id", DataType::Id),
            crate::result::ResultColumn::new("S.flux", DataType::Float),
        ]);
        rs.push_row(vec![Value::Id(1), Value::Float(10.0)]).unwrap();
        rs.push_row(vec![Value::Id(2), Value::Float(20.0)]).unwrap();
        rs
    }

    fn schema_element(rows: &ResultSet, dest: &str) -> Element {
        let columns: Vec<ColumnDef> = rows
            .columns
            .iter()
            .map(|c| {
                let name = c.name.rsplit_once('.').map(|(_, n)| n).unwrap_or(&c.name);
                ColumnDef::new(name, c.dtype).nullable()
            })
            .collect();
        catalog_to_element(&skyquery_storage::Catalog {
            database: "X".into(),
            tables: vec![skyquery_storage::TableStats {
                schema: TableSchema::new(dest, columns),
                row_count: rows.row_count(),
                approx_bytes: 0,
                version: 0,
            }],
        })
    }

    #[test]
    fn prepare_commit_publishes_rows() {
        let mut db = Database::new("dest");
        let mut state = ExchangeState::new();
        let rs = rows();
        let n = state
            .prepare(
                &mut db,
                7,
                "imported",
                &schema_element(&rs, "imported"),
                &rs,
                0.0,
                60.0,
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(state.pending(), vec![7]);
        // Not visible before commit.
        assert!(!db.has_table("imported"));
        let (n, version) = state.commit(&mut db, 7).unwrap();
        assert_eq!(n, 2);
        // The published version counts the inserts that landed.
        assert_eq!(version, 2);
        assert_eq!(db.row_count("imported").unwrap(), 2);
        assert!(state.pending().is_empty());
        // Staging table is gone.
        assert_eq!(db.catalog().tables.len(), 1);
    }

    #[test]
    fn abort_leaves_nothing() {
        let mut db = Database::new("dest");
        let mut state = ExchangeState::new();
        let rs = rows();
        state
            .prepare(
                &mut db,
                9,
                "imported",
                &schema_element(&rs, "imported"),
                &rs,
                0.0,
                60.0,
            )
            .unwrap();
        state.abort(&mut db, 9).unwrap();
        assert!(!db.has_table("imported"));
        assert!(db.catalog().tables.is_empty());
        // Decision is final: commit after abort is an unknown txn.
        assert!(state.commit(&mut db, 9).is_err());
    }

    #[test]
    fn duplicate_prepare_rejected() {
        let mut db = Database::new("dest");
        let mut state = ExchangeState::new();
        let rs = rows();
        let el = schema_element(&rs, "t");
        state.prepare(&mut db, 1, "t", &el, &rs, 0.0, 60.0).unwrap();
        assert!(state.prepare(&mut db, 1, "t", &el, &rs, 0.0, 60.0).is_err());
    }

    #[test]
    fn commit_appends_to_existing_compatible_table() {
        let mut db = Database::new("dest");
        let mut state = ExchangeState::new();
        let rs = rows();
        let el = schema_element(&rs, "t");
        state.prepare(&mut db, 1, "t", &el, &rs, 0.0, 60.0).unwrap();
        state.commit(&mut db, 1).unwrap();
        state.prepare(&mut db, 2, "t", &el, &rs, 0.0, 60.0).unwrap();
        state.commit(&mut db, 2).unwrap();
        assert_eq!(db.row_count("t").unwrap(), 4);
    }

    #[test]
    fn incompatible_existing_schema_votes_no() {
        let mut db = Database::new("dest");
        db.create_table(TableSchema::new(
            "t",
            vec![ColumnDef::new("other", DataType::Text)],
        ))
        .unwrap();
        let mut state = ExchangeState::new();
        let rs = rows();
        let el = schema_element(&rs, "t");
        assert!(state.prepare(&mut db, 1, "t", &el, &rs, 0.0, 60.0).is_err());
        assert!(state.pending().is_empty());
        // Nothing staged, existing table untouched.
        assert_eq!(db.row_count("t").unwrap(), 0);
    }

    #[test]
    fn unknown_txn_decisions_rejected() {
        let mut db = Database::new("dest");
        let mut state = ExchangeState::new();
        assert!(state.commit(&mut db, 42).is_err());
        assert!(state.abort(&mut db, 42).is_err());
    }

    #[test]
    fn sweep_aborts_expired_stages_only() {
        let mut db = Database::new("dest");
        let mut state = ExchangeState::new();
        let rs = rows();
        let el = schema_element(&rs, "t");
        state.prepare(&mut db, 1, "t", &el, &rs, 0.0, 5.0).unwrap();
        state.prepare(&mut db, 2, "t", &el, &rs, 0.0, 50.0).unwrap();
        assert!(state.sweep(&mut db, 4.0).is_empty());
        // Renewal keeps an otherwise-expiring stage alive.
        assert!(state.renew(1, 4.0));
        assert!(state.sweep(&mut db, 8.0).is_empty());
        assert_eq!(state.sweep(&mut db, 9.0), vec![1]);
        assert_eq!(state.pending(), vec![2]);
        // Nothing published by the sweep.
        assert!(!db.has_table("t"));
        // A swept transaction is decided: late commit is rejected.
        assert!(state.commit(&mut db, 1).is_err());
        // Txn 2's staging survived the sweep and still commits cleanly.
        assert_eq!(state.commit(&mut db, 2).unwrap().0, rs.row_count());
        assert_eq!(db.row_count("t").unwrap(), rs.row_count());
    }

    #[test]
    fn failed_staging_drop_is_tallied_not_swallowed() {
        let mut db = Database::new("dest");
        let mut state = ExchangeState::new();
        let rs = rows();
        let el = schema_element(&rs, "t");
        state.prepare(&mut db, 1, "t", &el, &rs, 0.0, 5.0).unwrap();
        assert_eq!(state.drop_failures(), 0);
        // Pull the staging table out from under the janitor: its drop at
        // sweep time now fails, and that failure must surface as a tally
        // rather than vanish into a `let _ =`.
        let staging = state.staged.get(1).unwrap().staging_table.clone();
        db.drop_table(&staging).unwrap();
        assert_eq!(state.sweep(&mut db, 10.0), vec![1]);
        assert_eq!(state.drop_failures(), 1);
        // A sweep with nothing wrong leaves the tally unchanged.
        state.prepare(&mut db, 2, "t", &el, &rs, 10.0, 5.0).unwrap();
        assert_eq!(state.sweep(&mut db, 20.0), vec![2]);
        assert_eq!(state.drop_failures(), 1);
    }
}
