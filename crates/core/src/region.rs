//! Validated spatial regions: the execution-time form of the dialect's
//! `AREA` (circle) and `POLYGON` (§6 extension) clauses.

use skyquery_htm::{Cap, ConvexPolygon, ConvexRegion, SkyPoint, Vec3};
use skyquery_sql::ast::{AreaSpec, PolygonSpec, RegionSpec};
use skyquery_xml::Element;

use crate::error::{FederationError, Result};

/// A validated, executable sky region.
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// A circular cap.
    Circle {
        /// Circle center.
        center: SkyPoint,
        /// Angular radius, radians.
        radius_rad: f64,
    },
    /// A convex polygon (§6 extension).
    Polygon(ConvexPolygon),
}

impl Region {
    /// Validates and converts a parsed region spec. Polygon vertices are
    /// checked for convexity and CCW winding here, at planning time, so
    /// malformed regions fail before any network traffic.
    pub fn from_spec(spec: &RegionSpec) -> Result<Region> {
        match spec {
            RegionSpec::Circle(a) => Ok(Region::Circle {
                center: SkyPoint::from_radec_deg(a.ra_deg, a.dec_deg),
                radius_rad: a.radius_rad(),
            }),
            RegionSpec::Polygon(p) => {
                let poly = ConvexPolygon::from_radec_deg(&p.vertices).map_err(|e| {
                    FederationError::Sql(skyquery_sql::SqlError::semantic(format!(
                        "invalid POLYGON: {e}"
                    )))
                })?;
                Ok(Region::Polygon(poly))
            }
        }
    }

    /// The dialect-SQL spec form (for plan serialization and pull-SQL).
    pub fn to_spec(&self) -> RegionSpec {
        match self {
            Region::Circle { center, radius_rad } => RegionSpec::Circle(AreaSpec {
                ra_deg: center.ra_deg,
                dec_deg: center.dec_deg,
                radius_arcmin: radius_rad.to_degrees() * 60.0,
            }),
            Region::Polygon(p) => RegionSpec::Polygon(PolygonSpec {
                vertices: p
                    .vertices()
                    .iter()
                    .map(|v| {
                        let s = SkyPoint::from_vec3(*v);
                        (s.ra_deg, s.dec_deg)
                    })
                    .collect(),
            }),
        }
    }

    /// Whether a sky point lies in the region.
    pub fn contains(&self, p: SkyPoint) -> bool {
        self.contains_vec(p.to_vec3())
    }

    /// Whether a unit vector lies in the region.
    pub fn contains_vec(&self, v: Vec3) -> bool {
        match self {
            Region::Circle { center, radius_rad } => {
                center.to_vec3().angle_to(v) <= radius_rad + 1e-15
            }
            Region::Polygon(p) => p.contains(v),
        }
    }

    /// A bounding circle `(center, radius)` for index seeding.
    pub fn bounding_circle(&self) -> (SkyPoint, f64) {
        match self {
            Region::Circle { center, radius_rad } => (*center, *radius_rad),
            Region::Polygon(p) => {
                let (c, r) = p.bounding_cap();
                (SkyPoint::from_vec3(c), r)
            }
        }
    }

    /// The region as an HTM cover input.
    pub fn as_convex_region(&self) -> RegionRef<'_> {
        RegionRef(self)
    }

    /// Serializes into the plan element.
    pub fn to_element(&self) -> Element {
        match self {
            Region::Circle { center, radius_rad } => Element::new("Region")
                .with_attr("kind", "circle")
                .with_attr("ra", format!("{:?}", center.ra_deg))
                .with_attr("dec", format!("{:?}", center.dec_deg))
                .with_attr(
                    "radius_arcmin",
                    format!("{:?}", radius_rad.to_degrees() * 60.0),
                ),
            Region::Polygon(p) => {
                let mut e = Element::new("Region").with_attr("kind", "polygon");
                for v in p.vertices() {
                    let s = SkyPoint::from_vec3(*v);
                    e = e.with_child(
                        Element::new("V")
                            .with_attr("ra", format!("{:?}", s.ra_deg))
                            .with_attr("dec", format!("{:?}", s.dec_deg)),
                    );
                }
                e
            }
        }
    }

    /// Deserializes from the plan element.
    pub fn from_element(e: &Element) -> Result<Region> {
        if e.name != "Region" {
            return Err(FederationError::protocol(format!(
                "expected Region element, found {}",
                e.name
            )));
        }
        match e.attr("kind") {
            Some("circle") => {
                let num = |name: &str| -> Result<f64> {
                    e.attr(name)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| FederationError::protocol(format!("Region missing {name}")))
                };
                Ok(Region::Circle {
                    center: SkyPoint::from_radec_deg(num("ra")?, num("dec")?),
                    radius_rad: (num("radius_arcmin")? / 60.0).to_radians(),
                })
            }
            Some("polygon") => {
                let mut vertices = Vec::new();
                for v in e.children_named("V") {
                    let ra: f64 = v
                        .attr("ra")
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| FederationError::protocol("polygon V missing ra"))?;
                    let dec: f64 = v
                        .attr("dec")
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| FederationError::protocol("polygon V missing dec"))?;
                    vertices.push((ra, dec));
                }
                let poly = ConvexPolygon::from_radec_deg(&vertices).map_err(|err| {
                    FederationError::protocol(format!("invalid polygon in plan: {err}"))
                })?;
                Ok(Region::Polygon(poly))
            }
            other => Err(FederationError::protocol(format!(
                "unknown Region kind {other:?}"
            ))),
        }
    }
}

/// Adapter implementing the HTM crate's [`ConvexRegion`] trait for
/// [`Region`] (so storage's region search can consume it directly).
pub struct RegionRef<'a>(&'a Region);

impl ConvexRegion for RegionRef<'_> {
    fn contains(&self, p: Vec3) -> bool {
        self.0.contains_vec(p)
    }

    fn anchor(&self) -> Vec3 {
        match self.0 {
            Region::Circle { center, .. } => center.to_vec3(),
            Region::Polygon(p) => p.centroid(),
        }
    }

    fn boundary_crosses_arc(&self, a: Vec3, b: Vec3) -> bool {
        match self.0 {
            Region::Circle { center, radius_rad } => {
                Cap::new(center.to_vec3(), *radius_rad).intersects_arc(a, b)
            }
            Region::Polygon(p) => p.edge_crosses(a, b),
        }
    }

    fn is_geodesically_convex(&self) -> bool {
        match self.0 {
            Region::Circle { radius_rad, .. } => *radius_rad <= std::f64::consts::FRAC_PI_2,
            Region::Polygon(_) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circle() -> Region {
        Region::Circle {
            center: SkyPoint::from_radec_deg(185.0, -0.5),
            radius_rad: 1.0_f64.to_radians(),
        }
    }

    fn square() -> Region {
        Region::Polygon(
            ConvexPolygon::from_radec_deg(&[
                (184.0, -1.0),
                (186.0, -1.0),
                (186.0, 1.0),
                (184.0, 1.0),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn circle_element_roundtrip() {
        let r = circle();
        let back = Region::from_element(&r.to_element()).unwrap();
        match (&r, &back) {
            (
                Region::Circle {
                    center: c1,
                    radius_rad: r1,
                },
                Region::Circle {
                    center: c2,
                    radius_rad: r2,
                },
            ) => {
                assert!(c1.separation(*c2) < 1e-12);
                assert!((r1 - r2).abs() < 1e-15);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn polygon_element_roundtrip() {
        let r = square();
        let back = Region::from_element(&r.to_element()).unwrap();
        assert!(back.contains(SkyPoint::from_radec_deg(185.0, 0.0)));
        assert!(!back.contains(SkyPoint::from_radec_deg(183.0, 0.0)));
    }

    #[test]
    fn spec_roundtrip() {
        for r in [circle(), square()] {
            let spec = r.to_spec();
            let back = Region::from_spec(&spec).unwrap();
            // Sampled agreement.
            for &(ra, dec) in &[
                (185.0, 0.0),
                (184.5, -0.8),
                (183.0, 0.0),
                (185.0, 1.5),
                (200.0, 50.0),
            ] {
                let p = SkyPoint::from_radec_deg(ra, dec);
                assert_eq!(r.contains(p), back.contains(p), "({ra},{dec}) in {r:?}");
            }
        }
    }

    #[test]
    fn spec_prints_valid_dialect_sql() {
        let circle_sql = circle().to_spec().to_string();
        assert!(circle_sql.starts_with("AREA("));
        let poly_sql = square().to_spec().to_string();
        assert!(poly_sql.starts_with("POLYGON("));
        // Both must reparse as expressions.
        assert!(skyquery_sql::parse_expr(&circle_sql).is_ok());
        assert!(skyquery_sql::parse_expr(&poly_sql).is_ok());
    }

    #[test]
    fn invalid_polygon_spec_rejected() {
        let spec = RegionSpec::Polygon(PolygonSpec {
            // Clockwise winding.
            vertices: vec![(184.0, 1.0), (186.0, 1.0), (186.0, -1.0), (184.0, -1.0)],
        });
        assert!(Region::from_spec(&spec).is_err());
    }

    #[test]
    fn bounding_circle_contains_region_samples() {
        let r = square();
        let (c, radius) = r.bounding_circle();
        for &(ra, dec) in &[(184.1, -0.9), (185.9, 0.9), (185.0, 0.0)] {
            let p = SkyPoint::from_radec_deg(ra, dec);
            assert!(r.contains(p));
            assert!(p.separation(c) <= radius + 1e-12);
        }
    }

    #[test]
    fn malformed_elements_rejected() {
        assert!(Region::from_element(&Element::new("NotRegion")).is_err());
        assert!(Region::from_element(&Element::new("Region")).is_err());
        let bad_kind = Element::new("Region").with_attr("kind", "blob");
        assert!(Region::from_element(&bad_kind).is_err());
        let empty_poly = Element::new("Region").with_attr("kind", "polygon");
        assert!(Region::from_element(&empty_poly).is_err());
    }
}
