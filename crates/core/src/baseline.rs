//! Baselines the paper argues against, implemented for the experiments.
//!
//! * [`Portal::submit_pull_to_portal`] — "Many federations, based on the
//!   wrapper-mediator architecture, pull results from each database to
//!   the Portal" (§5.1). Every archive ships its AREA-filtered rows to
//!   the Portal, which joins centrally. Experiment E4 compares its
//!   transmission volume against the daisy chain.
//! * [`naive_match`] — an exhaustive cross-product matcher with no HTM
//!   index and no incremental pruning: the algorithmic baseline for the
//!   cross-match stored procedure (experiments E6/E7), and an independent
//!   correctness oracle for tests.

use skyquery_htm::{SkyPoint, Vec3};
use skyquery_soap::{RpcCall, SoapValue};
use skyquery_sql::{decompose, parse_query};
use skyquery_storage::{BufferCache, ColumnDef, DataType, Database, PositionColumns, TableSchema};

use crate::error::{FederationError, Result};
use crate::plan::ExecutionPlan;
use crate::portal::Portal;
use crate::result::ResultSet;
use crate::skynode::send_rpc;
use crate::xmatch::{
    apply_residuals, dropout_step, match_step, seed_step, PartialSet, StepConfig, TupleState,
};

impl Portal {
    /// The pull-to-portal strategy: fetch each archive's filtered rows
    /// through its Query service, then cross-match centrally at the
    /// Portal. Returns the same result a chained execution produces.
    pub fn submit_pull_to_portal(&self, sql: &str) -> Result<ResultSet> {
        let query = parse_query(sql).map_err(FederationError::Sql)?;
        let dq = decompose(query).map_err(FederationError::Sql)?;
        // Reuse the regular planner for ordering and step metadata (counts
        // still come from performance queries, as the chained path does).
        let mut trace = crate::trace::ExecutionTrace::new();
        let counts = self.run_performance_queries_for_baseline(&dq, &mut trace)?;
        let plan = self.build_plan_for_baseline(&dq, &counts)?;

        // Pull every archive's rows to the Portal.
        let mut local_dbs: Vec<(usize, Database)> = Vec::new();
        for (i, step) in plan.steps.iter().enumerate() {
            let node = self.node(&step.archive).ok_or_else(|| {
                FederationError::planning(format!("archive {} not registered", step.archive))
            })?;
            let schema = node
                .table_schema(&step.table)
                .ok_or_else(|| {
                    FederationError::planning(format!(
                        "archive {} has no table {}",
                        step.archive, step.table
                    ))
                })?
                .clone();
            let pos = schema
                .position
                .clone()
                .expect("planner validated position columns");

            // SELECT ra, dec, carried… WHERE AREA(…) AND local predicates.
            let mut select_cols = vec![pos.ra.clone(), pos.dec.clone()];
            for c in &step.carried {
                if !select_cols.contains(c) {
                    select_cols.push(c.clone());
                }
            }
            let select_list = select_cols
                .iter()
                .map(|c| format!("{}.{c}", step.alias))
                .collect::<Vec<_>>()
                .join(", ");
            let mut conjuncts = Vec::new();
            if let Some(r) = &plan.region {
                conjuncts.push(r.to_spec().to_string());
            }
            if let Some(p) = &step.local_sql {
                conjuncts.push(p.clone());
            }
            let where_clause = if conjuncts.is_empty() {
                String::new()
            } else {
                format!(" WHERE {}", conjuncts.join(" AND "))
            };
            let pull_sql = format!(
                "SELECT {select_list} FROM {}:{} {}{where_clause}",
                step.archive, step.table, step.alias
            );
            let resp = send_rpc(
                &self.portal_net(),
                self.host(),
                &step.url,
                &RpcCall::new("Query").param("sql", SoapValue::Str(pull_sql)),
            )?;
            let table = resp
                .require("rows")?
                .as_table()
                .ok_or_else(|| FederationError::protocol("rows must be a table"))?;
            let rs = ResultSet::from_votable(table)?;

            // Materialize into a Portal-local database so the central
            // match can reuse the same HTM-backed stored procedure.
            let mut cols = vec![
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
            ];
            for c in select_cols.iter().skip(2) {
                let dtype = schema.column(c).map(|d| d.dtype).unwrap_or(DataType::Float);
                cols.push(ColumnDef::new(c.clone(), dtype).nullable());
            }
            let local_schema = TableSchema::new("pulled", cols)
                .with_position(PositionColumns::new("ra", "dec", pos.htm_depth))
                .map_err(FederationError::Storage)?;
            let mut db =
                Database::with_cache(format!("portal_{}", step.alias), BufferCache::new(4096, 64));
            db.create_table(local_schema).unwrap();
            for row in &rs.rows {
                db.insert("pulled", row.clone())?;
            }
            local_dbs.push((i, db));
        }

        // Central cross-match in the same seed-to-head order the chain
        // would use.
        let mut current: Option<PartialSet> = None;
        for idx in (0..plan.steps.len()).rev() {
            let step = &plan.steps[idx];
            let db = &mut local_dbs
                .iter_mut()
                .find(|(i, _)| *i == idx)
                .expect("one db per step")
                .1;
            let cfg = StepConfig {
                alias: step.alias.clone(),
                table: "pulled".into(),
                sigma_rad: (step.sigma_arcsec / 3600.0).to_radians(),
                threshold: plan.threshold,
                // The spatial range and local predicates were applied at
                // the archives.
                region: None,
                local_predicate: None,
                carried_columns: step.carried.clone(),
                xmatch_workers: 1,
                zone_height_deg: crate::plan::DEFAULT_ZONE_HEIGHT_DEG,
                kernel: plan.kernel,
            };
            let (set, _) = match (&current, step.dropout) {
                (None, false) => seed_step(db, &cfg)?,
                (Some(inc), false) => match_step(db, &cfg, inc)?,
                (Some(inc), true) => dropout_step(db, &cfg, inc)?,
                (None, true) => {
                    return Err(FederationError::planning(
                        "a drop-out archive cannot seed the match",
                    ))
                }
            };
            let residuals = plan.residuals(idx)?;
            current = Some(if residuals.is_empty() {
                set
            } else {
                apply_residuals(set, &residuals)?
            });
        }
        let set = current.ok_or_else(|| FederationError::planning("empty plan"))?;
        crate::portal::project_for_baseline(&plan, set)
    }
}

/// An index tuple produced by [`naive_match`]: one object index per
/// mandatory archive, in input order.
pub type MatchTuple = Vec<usize>;

/// Exhaustive cross-match over in-memory archives: every combination of
/// one object per archive is tested against the chi-square bound. No
/// spatial index, no pruning — O(∏ nᵢ).
///
/// `archives[i]` lists unit-vector positions; `sigmas_rad[i]` is that
/// archive's error. Returns index tuples with `χ²_min ≤ threshold²`.
pub fn naive_match(archives: &[Vec<Vec3>], sigmas_rad: &[f64], threshold: f64) -> Vec<MatchTuple> {
    assert_eq!(archives.len(), sigmas_rad.len());
    let mut out = Vec::new();
    if archives.is_empty() || archives.iter().any(Vec::is_empty) {
        return out;
    }
    let bound = threshold * threshold;
    let mut indices = vec![0usize; archives.len()];
    'outer: loop {
        // Evaluate the current combination.
        let mut state: Option<TupleState> = None;
        for (k, &i) in indices.iter().enumerate() {
            let pos = archives[k][i];
            state = Some(match state {
                None => TupleState::single(pos, sigmas_rad[k]),
                Some(s) => s.extended(pos, sigmas_rad[k]),
            });
        }
        if state.expect("at least one archive").chi2_min() <= bound {
            out.push(indices.clone());
        }
        // Odometer increment.
        for k in (0..indices.len()).rev() {
            indices[k] += 1;
            if indices[k] < archives[k].len() {
                continue 'outer;
            }
            indices[k] = 0;
            if k == 0 {
                break 'outer;
            }
        }
    }
    out
}

/// Builds unit vectors from (ra, dec) degrees — convenience for callers
/// of [`naive_match`].
pub fn positions(points: &[(f64, f64)]) -> Vec<Vec3> {
    points
        .iter()
        .map(|&(ra, dec)| SkyPoint::from_radec_deg(ra, dec).to_vec3())
        .collect()
}

// Internal accessors the baseline needs from the Portal. Kept pub(crate)
// so external users go through the public submit APIs.
impl Portal {
    pub(crate) fn portal_net(&self) -> skyquery_net::SimNetwork {
        self.net_clone()
    }
}

impl ExecutionPlan {
    /// Total count-star estimate (diagnostics in benches).
    pub fn total_count_estimate(&self) -> u64 {
        self.steps.iter().filter_map(|s| s.count_estimate).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARCSEC: f64 = 1.0 / 3600.0;

    #[test]
    fn naive_match_pairs() {
        let a = positions(&[(10.0, 10.0), (20.0, 20.0)]);
        let b = positions(&[(10.0 + 0.2 * ARCSEC, 10.0), (50.0, 50.0)]);
        let sig = [(0.3 * ARCSEC).to_radians(), (0.3 * ARCSEC).to_radians()];
        let m = naive_match(&[a, b], &sig, 3.5);
        assert_eq!(m, vec![vec![0, 0]]);
    }

    #[test]
    fn naive_match_three_way() {
        let a = positions(&[(100.0, 0.0)]);
        let b = positions(&[(100.0, 0.0 + 0.1 * ARCSEC)]);
        let c = positions(&[(100.0 - 0.1 * ARCSEC, 0.0)]);
        let sig = [(0.2 * ARCSEC).to_radians(); 3];
        let m = naive_match(&[a, b, c], &sig, 3.0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn naive_match_empty_inputs() {
        assert!(naive_match(&[], &[], 3.0).is_empty());
        let empty: Vec<Vec3> = vec![];
        let some = positions(&[(1.0, 1.0)]);
        let sig = [(0.2 * ARCSEC).to_radians(); 2];
        assert!(naive_match(&[empty, some], &sig, 3.0).is_empty());
    }

    #[test]
    fn naive_match_threshold_sensitivity() {
        let a = positions(&[(10.0, 10.0)]);
        let b = positions(&[(10.0, 10.0 + 1.5 * ARCSEC)]);
        let sig = [(0.3 * ARCSEC).to_radians(); 2];
        assert!(naive_match(&[a.clone(), b.clone()], &sig, 3.0).is_empty());
        assert_eq!(naive_match(&[a, b], &sig, 5.0).len(), 1);
    }
}
