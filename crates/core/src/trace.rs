//! Execution traces: the observable record of Figure 3's steps, plus the
//! per-node statistics chain that rides back with the partial results.

use std::time::{Duration, Instant};

use skyquery_xml::Element;

use crate::error::{FederationError, Result};
use crate::xmatch::StepStats;

/// One logged event of a federated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sequence number (1-based, mirroring the figure's step numbers).
    pub seq: usize,
    /// Which component acted (Client, Portal, or an archive name).
    pub actor: String,
    /// Short action label ("performance query", "cross match call", …).
    pub action: String,
    /// Free-form detail text.
    pub detail: String,
    /// Wall-clock time spent since the previous event was recorded (for
    /// the first event, since the trace was created): the duration of the
    /// step this event concludes.
    pub elapsed: Duration,
}

/// An append-only trace of a query execution.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    events: Vec<TraceEvent>,
    /// When the previous event was recorded (trace creation initially).
    last: Instant,
}

impl Default for ExecutionTrace {
    fn default() -> ExecutionTrace {
        ExecutionTrace::new()
    }
}

/// Traces compare by recorded events; the internal clock is excluded.
impl PartialEq for ExecutionTrace {
    fn eq(&self, other: &ExecutionTrace) -> bool {
        self.events == other.events
    }
}

impl Eq for ExecutionTrace {}

impl ExecutionTrace {
    /// An empty trace whose clock starts now.
    pub fn new() -> ExecutionTrace {
        ExecutionTrace {
            events: Vec::new(),
            last: Instant::now(),
        }
    }

    /// Appends an event, assigning the next sequence number and measuring
    /// the wall-clock time since the previous event.
    pub fn push(
        &mut self,
        actor: impl Into<String>,
        action: impl Into<String>,
        detail: impl Into<String>,
    ) {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last);
        self.last = now;
        self.push_with_elapsed(actor, action, detail, elapsed);
    }

    /// Appends an event with an externally measured duration (used when
    /// reconstructing a server-side trace from the wire).
    pub fn push_with_elapsed(
        &mut self,
        actor: impl Into<String>,
        action: impl Into<String>,
        detail: impl Into<String>,
        elapsed: Duration,
    ) {
        self.events.push(TraceEvent {
            seq: self.events.len() + 1,
            actor: actor.into(),
            action: action.into(),
            detail: detail.into(),
            elapsed,
        });
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total wall-clock time across all recorded events.
    pub fn total_elapsed(&self) -> Duration {
        self.events.iter().map(|e| e.elapsed).sum()
    }

    /// Whether any event carries this action label. The survivability
    /// path records its decisions as `replan` / `resume` / `degraded`
    /// events, and a `degraded` event is the flag that a drop-out archive
    /// was skipped — callers check it before trusting result
    /// completeness.
    pub fn contains_action(&self, action: &str) -> bool {
        self.events.iter().any(|e| e.action == action)
    }

    /// All events carrying this action label, in order.
    pub fn events_with_action(&self, action: &str) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.action == action).collect()
    }

    /// Renders the trace as numbered lines (the Figure-3 view).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "Step {:>2}  [{:^10}] {}: {}  (+{})\n",
                e.seq,
                e.actor,
                e.action,
                e.detail,
                format_elapsed(e.elapsed)
            ));
        }
        out
    }
}

/// Human-readable duration with microsecond floor, for trace rendering.
pub fn format_elapsed(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{:.2}s", us as f64 / 1e6)
    }
}

/// Per-node statistics accumulated along the chain: each SkyNode appends
/// its own entry before returning partial results to its caller, so the
/// Portal receives the full picture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsChain {
    /// `(archive alias, stats)` in execution (seed-first) order.
    pub entries: Vec<(String, StepStats)>,
}

impl StatsChain {
    /// An empty chain.
    pub fn new() -> StatsChain {
        StatsChain::default()
    }

    /// Appends one node's statistics.
    pub fn push(&mut self, alias: impl Into<String>, stats: StepStats) {
        self.entries.push((alias.into(), stats));
    }

    /// Encodes for the wire (rides back with the partial results).
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("StatsChain");
        for (alias, s) in &self.entries {
            e = e.with_child(
                Element::new("Step")
                    .with_attr("alias", alias.clone())
                    .with_attr("tuples_in", s.tuples_in.to_string())
                    .with_attr("candidates", s.candidates_probed.to_string())
                    .with_attr("examined", s.candidates_examined.to_string())
                    .with_attr("accepted", s.chi2_accepted.to_string())
                    .with_attr("scratch_reuse", s.scratch_reuse.to_string())
                    .with_attr("tuples_out", s.tuples_out.to_string())
                    .with_attr("tile_builds", s.tile_builds.to_string())
                    .with_attr("tile_decodes", s.tile_decodes.to_string())
                    .with_attr("tile_hits", s.tile_hits.to_string())
                    .with_attr("shards_pruned", s.shards_pruned.to_string())
                    .with_attr("cache_hits", s.cache_hits.to_string())
                    .with_attr("cache_misses", s.cache_misses.to_string())
                    .with_attr("cache_repairs", s.cache_repairs.to_string())
                    .with_attr("cache_evictions", s.cache_evictions.to_string())
                    .with_attr("failovers", s.failovers.to_string())
                    .with_attr("hedges", s.hedges.to_string())
                    .with_attr("hedge_wins", s.hedge_wins.to_string()),
            );
        }
        e
    }

    /// Decodes the wire form.
    pub fn from_element(e: &Element) -> Result<StatsChain> {
        if e.name != "StatsChain" {
            return Err(FederationError::protocol(format!(
                "expected StatsChain, found {}",
                e.name
            )));
        }
        let mut chain = StatsChain::new();
        for se in e.children_named("Step") {
            let num = |name: &str| -> Result<usize> {
                se.attr(name).and_then(|v| v.parse().ok()).ok_or_else(|| {
                    FederationError::protocol(format!("StatsChain step missing {name}"))
                })
            };
            // Kernel counters were added after the original wire format;
            // entries from older peers simply report them as zero.
            let lenient =
                |name: &str| -> usize { se.attr(name).and_then(|v| v.parse().ok()).unwrap_or(0) };
            chain.push(
                se.attr("alias")
                    .ok_or_else(|| FederationError::protocol("StatsChain step missing alias"))?,
                StepStats {
                    tuples_in: num("tuples_in")?,
                    candidates_probed: num("candidates")?,
                    candidates_examined: lenient("examined"),
                    chi2_accepted: lenient("accepted"),
                    scratch_reuse: lenient("scratch_reuse"),
                    tuples_out: num("tuples_out")?,
                    tile_builds: lenient("tile_builds"),
                    tile_decodes: lenient("tile_decodes"),
                    tile_hits: lenient("tile_hits"),
                    shards_pruned: lenient("shards_pruned"),
                    cache_hits: lenient("cache_hits"),
                    cache_misses: lenient("cache_misses"),
                    cache_repairs: lenient("cache_repairs"),
                    cache_evictions: lenient("cache_evictions"),
                    failovers: lenient("failovers"),
                    hedges: lenient("hedges"),
                    hedge_wins: lenient("hedge_wins"),
                },
            );
        }
        Ok(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_sequencing_and_render() {
        let mut t = ExecutionTrace::new();
        t.push("Client", "submit", "cross match query");
        t.push("Portal", "decompose", "3 archives");
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].seq, 1);
        assert_eq!(t.events()[1].seq, 2);
        let text = t.render();
        assert!(text.contains("Step  1"));
        assert!(text.contains("Portal"));
        assert!(t.contains_action("decompose"));
        assert!(!t.contains_action("degraded"));
        assert_eq!(t.events_with_action("submit").len(), 1);
    }

    #[test]
    fn events_record_wall_clock_durations() {
        let mut t = ExecutionTrace::new();
        std::thread::sleep(Duration::from_millis(2));
        t.push("Portal", "plan", "built");
        std::thread::sleep(Duration::from_millis(2));
        t.push("SDSS", "match", "done");
        assert!(t.events()[0].elapsed >= Duration::from_millis(1));
        assert!(t.events()[1].elapsed >= Duration::from_millis(1));
        assert_eq!(
            t.total_elapsed(),
            t.events()[0].elapsed + t.events()[1].elapsed
        );
        assert!(t.render().contains("(+"));
    }

    #[test]
    fn explicit_durations_preserved() {
        let mut t = ExecutionTrace::new();
        t.push_with_elapsed("Portal", "plan", "built", Duration::from_micros(1500));
        assert_eq!(t.events()[0].elapsed, Duration::from_micros(1500));
        assert_eq!(format_elapsed(Duration::from_micros(1500)), "1.5ms");
        assert_eq!(format_elapsed(Duration::from_micros(999)), "999µs");
        assert_eq!(format_elapsed(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn stats_chain_roundtrip() {
        let mut c = StatsChain::new();
        c.push(
            "T",
            StepStats {
                tuples_in: 0,
                candidates_probed: 120,
                candidates_examined: 400,
                chi2_accepted: 80,
                scratch_reuse: 97,
                tuples_out: 80,
                tile_builds: 1,
                tile_decodes: 7,
                tile_hits: 55,
                shards_pruned: 2,
                cache_hits: 1,
                cache_misses: 3,
                cache_repairs: 2,
                cache_evictions: 1,
                failovers: 4,
                hedges: 2,
                hedge_wins: 1,
            },
        );
        c.push(
            "O",
            StepStats {
                tuples_in: 80,
                candidates_probed: 300,
                candidates_examined: 512,
                chi2_accepted: 12,
                scratch_reuse: 60,
                tuples_out: 12,
                ..StepStats::default()
            },
        );
        let back = StatsChain::from_element(&c.to_element()).unwrap();
        assert_eq!(back, c);
        // The kernel counters survive the wire exactly (== ignores them,
        // so compare the fields directly).
        for ((_, b), (_, o)) in back.entries.iter().zip(&c.entries) {
            assert_eq!(b.candidates_examined, o.candidates_examined);
            assert_eq!(b.chi2_accepted, o.chi2_accepted);
            assert_eq!(b.scratch_reuse, o.scratch_reuse);
            assert_eq!(b.tile_builds, o.tile_builds);
            assert_eq!(b.tile_decodes, o.tile_decodes);
            assert_eq!(b.tile_hits, o.tile_hits);
            assert_eq!(b.shards_pruned, o.shards_pruned);
            assert_eq!(b.cache_hits, o.cache_hits);
            assert_eq!(b.cache_misses, o.cache_misses);
            assert_eq!(b.cache_repairs, o.cache_repairs);
            assert_eq!(b.cache_evictions, o.cache_evictions);
            assert_eq!(b.failovers, o.failovers);
            assert_eq!(b.hedges, o.hedges);
            assert_eq!(b.hedge_wins, o.hedge_wins);
        }
    }

    #[test]
    fn stats_chain_tolerates_missing_kernel_counters() {
        // A chain element written before the kernel counters existed.
        let el = Element::new("StatsChain").with_child(
            Element::new("Step")
                .with_attr("alias", "T")
                .with_attr("tuples_in", "3")
                .with_attr("candidates", "7")
                .with_attr("tuples_out", "2"),
        );
        let c = StatsChain::from_element(&el).unwrap();
        assert_eq!(c.entries.len(), 1);
        let s = c.entries[0].1;
        assert_eq!(s.candidates_probed, 7);
        assert_eq!(s.candidates_examined, 0);
        assert_eq!(s.chi2_accepted, 0);
        assert_eq!(s.scratch_reuse, 0);
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.cache_misses, 0);
        assert_eq!(s.cache_repairs, 0);
        assert_eq!(s.cache_evictions, 0);
        assert_eq!(s.failovers, 0);
        assert_eq!(s.hedges, 0);
        assert_eq!(s.hedge_wins, 0);
    }

    #[test]
    fn stats_chain_rejects_malformed() {
        assert!(StatsChain::from_element(&Element::new("Nope")).is_err());
        let bad = Element::new("StatsChain").with_child(Element::new("Step"));
        assert!(StatsChain::from_element(&bad).is_err());
    }
}
