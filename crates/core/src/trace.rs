//! Execution traces: the observable record of Figure 3's steps, plus the
//! per-node statistics chain that rides back with the partial results.

use skyquery_xml::Element;

use crate::error::{FederationError, Result};
use crate::xmatch::StepStats;

/// One logged event of a federated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sequence number (1-based, mirroring the figure's step numbers).
    pub seq: usize,
    /// Which component acted (Client, Portal, or an archive name).
    pub actor: String,
    /// Short action label ("performance query", "cross match call", …).
    pub action: String,
    /// Free-form detail text.
    pub detail: String,
}

/// An append-only trace of a query execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionTrace {
    events: Vec<TraceEvent>,
}

impl ExecutionTrace {
    /// An empty trace.
    pub fn new() -> ExecutionTrace {
        ExecutionTrace::default()
    }

    /// Appends an event, assigning the next sequence number.
    pub fn push(&mut self, actor: impl Into<String>, action: impl Into<String>, detail: impl Into<String>) {
        self.events.push(TraceEvent {
            seq: self.events.len() + 1,
            actor: actor.into(),
            action: action.into(),
            detail: detail.into(),
        });
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the trace as numbered lines (the Figure-3 view).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "Step {:>2}  [{:^10}] {}: {}\n",
                e.seq, e.actor, e.action, e.detail
            ));
        }
        out
    }
}

/// Per-node statistics accumulated along the chain: each SkyNode appends
/// its own entry before returning partial results to its caller, so the
/// Portal receives the full picture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsChain {
    /// `(archive alias, stats)` in execution (seed-first) order.
    pub entries: Vec<(String, StepStats)>,
}

impl StatsChain {
    /// An empty chain.
    pub fn new() -> StatsChain {
        StatsChain::default()
    }

    /// Appends one node's statistics.
    pub fn push(&mut self, alias: impl Into<String>, stats: StepStats) {
        self.entries.push((alias.into(), stats));
    }

    /// Encodes for the wire (rides back with the partial results).
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("StatsChain");
        for (alias, s) in &self.entries {
            e = e.with_child(
                Element::new("Step")
                    .with_attr("alias", alias.clone())
                    .with_attr("tuples_in", s.tuples_in.to_string())
                    .with_attr("candidates", s.candidates_probed.to_string())
                    .with_attr("tuples_out", s.tuples_out.to_string()),
            );
        }
        e
    }

    /// Decodes the wire form.
    pub fn from_element(e: &Element) -> Result<StatsChain> {
        if e.name != "StatsChain" {
            return Err(FederationError::protocol(format!(
                "expected StatsChain, found {}",
                e.name
            )));
        }
        let mut chain = StatsChain::new();
        for se in e.children_named("Step") {
            let num = |name: &str| -> Result<usize> {
                se.attr(name).and_then(|v| v.parse().ok()).ok_or_else(|| {
                    FederationError::protocol(format!("StatsChain step missing {name}"))
                })
            };
            chain.push(
                se.attr("alias")
                    .ok_or_else(|| FederationError::protocol("StatsChain step missing alias"))?,
                StepStats {
                    tuples_in: num("tuples_in")?,
                    candidates_probed: num("candidates")?,
                    tuples_out: num("tuples_out")?,
                },
            );
        }
        Ok(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_sequencing_and_render() {
        let mut t = ExecutionTrace::new();
        t.push("Client", "submit", "cross match query");
        t.push("Portal", "decompose", "3 archives");
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].seq, 1);
        assert_eq!(t.events()[1].seq, 2);
        let text = t.render();
        assert!(text.contains("Step  1"));
        assert!(text.contains("Portal"));
    }

    #[test]
    fn stats_chain_roundtrip() {
        let mut c = StatsChain::new();
        c.push(
            "T",
            StepStats {
                tuples_in: 0,
                candidates_probed: 120,
                tuples_out: 80,
            },
        );
        c.push(
            "O",
            StepStats {
                tuples_in: 80,
                candidates_probed: 300,
                tuples_out: 12,
            },
        );
        let back = StatsChain::from_element(&c.to_element()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn stats_chain_rejects_malformed() {
        assert!(StatsChain::from_element(&Element::new("Nope")).is_err());
        let bad = Element::new("StatsChain").with_child(Element::new("Step"));
        assert!(StatsChain::from_element(&bad).is_err());
    }
}
