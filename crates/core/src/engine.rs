//! Pluggable cross-match execution engines.
//!
//! The stored-procedure kernels in [`crate::xmatch`] define *what* a
//! cross-match step computes; an engine decides *how* the work is driven —
//! the paper's sequential per-tuple loop, or a partitioned parallel
//! schedule such as the zone engine in the `skyquery-zones` crate. SkyNodes
//! hold an `Arc<dyn CrossMatchEngine>` so the federation can swap engines
//! without touching the service protocol, and every engine must produce
//! byte-identical [`PartialSet`] output for a given database + step
//! configuration: parallelism is an implementation detail, never a
//! semantics change.

use std::sync::Arc;

use skyquery_storage::Database;

use crate::error::{FederationError, Result};
use crate::result::ResultColumn;
use crate::xmatch::{
    dropout_step, match_step, seed_step, PartialSet, PartialTuple, StepConfig, StepStats,
};

/// The step kind an incremental ingest session runs (the seed step never
/// receives partial results, so it has no incremental form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Extend incoming tuples with this archive's counterparts.
    Match,
    /// Drop incoming tuples that have a counterpart here (`!` archives).
    Dropout,
}

/// An in-progress incremental cross-match step.
///
/// Chunks of the incoming partial set are fed as they arrive over the
/// wire; each tuple carries its index in the sender's original set, so
/// the final output is **byte-identical** to running the whole set at
/// once — chunk sizes and arrival order are transport details, never a
/// semantics change. The database handle is passed per call (not held by
/// the session) so the node is free to release its lock between chunks
/// while the next `FetchChunk` round-trip is in flight.
pub trait PartialIngest: Send {
    /// Feeds one chunk of `(original index, tuple)` pairs.
    fn ingest(&mut self, db: &mut Database, chunk: Vec<(usize, PartialTuple)>) -> Result<()>;

    /// Completes the step, returning the output set and statistics.
    fn finish(self: Box<Self>, db: &mut Database) -> Result<(PartialSet, StepStats)>;
}

/// Strategy object executing the three cross-match step kinds.
///
/// The default methods delegate to the sequential kernels, so an engine
/// only overrides the steps it accelerates. Implementations must be
/// deterministic: the output `PartialSet` (tuple order included) and the
/// reported `StepStats` may not depend on scheduling.
pub trait CrossMatchEngine: Send + Sync {
    /// Human-readable engine name, surfaced in traces and diagnostics.
    fn name(&self) -> &str;

    /// Runs the seed step (the last archive in the chain).
    fn seed(&self, db: &mut Database, cfg: &StepConfig) -> Result<(PartialSet, StepStats)> {
        seed_step(db, cfg)
    }

    /// Runs a match step against `incoming` partial results.
    fn match_tuples(
        &self,
        db: &mut Database,
        cfg: &StepConfig,
        incoming: &PartialSet,
    ) -> Result<(PartialSet, StepStats)> {
        match_step(db, cfg, incoming)
    }

    /// Runs a drop-out (`!C`) step against `incoming` partial results.
    fn dropout(
        &self,
        db: &mut Database,
        cfg: &StepConfig,
        incoming: &PartialSet,
    ) -> Result<(PartialSet, StepStats)> {
        dropout_step(db, cfg, incoming)
    }

    /// Opens an incremental ingest session for a match or drop-out step,
    /// letting the engine process chunks of the incoming set while later
    /// chunks are still in flight. `columns` is the incoming set's
    /// (qualified) column schema.
    ///
    /// The default session buffers every chunk and delegates to
    /// [`CrossMatchEngine::match_tuples`] / [`CrossMatchEngine::dropout`]
    /// at finish, so engines only override this when they can genuinely
    /// overlap computation with the transfer.
    fn begin_partial<'a>(
        &'a self,
        db: &mut Database,
        cfg: &StepConfig,
        kind: StepKind,
        columns: Vec<ResultColumn>,
    ) -> Result<Box<dyn PartialIngest + 'a>> {
        let _ = db;
        Ok(Box::new(BufferingIngest::new(
            self,
            cfg.clone(),
            kind,
            columns,
        )))
    }
}

/// The default [`PartialIngest`] session: buffers all chunks, restores
/// the sender's tuple order, and runs the engine's whole-set step at
/// finish. Correct for every engine; overlaps nothing.
pub struct BufferingIngest<'a, E: CrossMatchEngine + ?Sized> {
    engine: &'a E,
    cfg: StepConfig,
    kind: StepKind,
    columns: Vec<ResultColumn>,
    tuples: Vec<(usize, PartialTuple)>,
}

impl<'a, E: CrossMatchEngine + ?Sized> BufferingIngest<'a, E> {
    /// A session delegating to `engine` at finish.
    pub fn new(
        engine: &'a E,
        cfg: StepConfig,
        kind: StepKind,
        columns: Vec<ResultColumn>,
    ) -> BufferingIngest<'a, E> {
        BufferingIngest {
            engine,
            cfg,
            kind,
            columns,
            tuples: Vec::new(),
        }
    }
}

impl<E: CrossMatchEngine + ?Sized> PartialIngest for BufferingIngest<'_, E> {
    fn ingest(&mut self, _db: &mut Database, chunk: Vec<(usize, PartialTuple)>) -> Result<()> {
        self.tuples.extend(chunk);
        Ok(())
    }

    fn finish(self: Box<Self>, db: &mut Database) -> Result<(PartialSet, StepStats)> {
        let mut this = *self;
        // Restore the sender's order and insist the indices form a dense
        // 0..n — anything else means the transfer dropped or duplicated
        // tuples.
        this.tuples.sort_by_key(|(i, _)| *i);
        for (expected, (index, _)) in this.tuples.iter().enumerate() {
            if *index != expected {
                return Err(FederationError::protocol(format!(
                    "incremental transfer is not a permutation of 0..{}: saw index {index} at position {expected}",
                    this.tuples.len()
                )));
            }
        }
        let incoming = PartialSet {
            columns: this.columns,
            tuples: this.tuples.into_iter().map(|(_, t)| t).collect(),
        };
        match this.kind {
            StepKind::Match => this.engine.match_tuples(db, &this.cfg, &incoming),
            StepKind::Dropout => this.engine.dropout(db, &this.cfg, &incoming),
        }
    }
}

/// The paper's engine: one thread walks the tuples in order.
#[derive(Debug, Default, Clone, Copy)]
pub struct SequentialEngine;

impl CrossMatchEngine for SequentialEngine {
    fn name(&self) -> &str {
        "sequential"
    }
}

/// The engine every node uses unless another is installed.
pub fn default_engine() -> Arc<dyn CrossMatchEngine> {
    Arc::new(SequentialEngine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmatch::TupleState;
    use skyquery_htm::SkyPoint;
    use skyquery_storage::{BufferCache, ColumnDef, DataType, PositionColumns, TableSchema, Value};

    #[test]
    fn sequential_engine_is_the_default() {
        assert_eq!(default_engine().name(), "sequential");
    }

    #[test]
    fn engines_are_object_safe_and_shareable() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let engine: Arc<dyn CrossMatchEngine> = Arc::new(SequentialEngine);
        assert_send_sync(&engine);
    }

    const ARCSEC: f64 = 1.0 / 3600.0;

    fn archive(points: &[(f64, f64)]) -> Database {
        let mut db = Database::with_cache("B", BufferCache::new(4096, 16));
        let schema = TableSchema::new(
            "objects",
            vec![
                ColumnDef::new("object_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 14))
        .unwrap();
        db.create_table(schema).unwrap();
        for (i, &(ra, dec)) in points.iter().enumerate() {
            db.insert(
                "objects",
                vec![Value::Id(i as u64 + 1), Value::Float(ra), Value::Float(dec)],
            )
            .unwrap();
        }
        db
    }

    fn cfg() -> StepConfig {
        StepConfig {
            alias: "B".into(),
            table: "objects".into(),
            sigma_rad: (0.3 * ARCSEC).to_radians(),
            threshold: 3.5,
            region: None,
            local_predicate: None,
            carried_columns: vec!["object_id".into()],
            xmatch_workers: 1,
            zone_height_deg: crate::plan::DEFAULT_ZONE_HEIGHT_DEG,
            kernel: crate::xmatch::MatchKernel::default(),
        }
    }

    fn singles(points: &[(f64, f64)]) -> PartialSet {
        let mut set = PartialSet::new(vec![ResultColumn::new("A.object_id", DataType::Id)]);
        for (i, &(ra, dec)) in points.iter().enumerate() {
            set.tuples.push(PartialTuple {
                state: TupleState::single(
                    SkyPoint::from_radec_deg(ra, dec).to_vec3(),
                    (0.3 * ARCSEC).to_radians(),
                ),
                values: vec![Value::Id(i as u64 + 1)],
            });
        }
        set
    }

    #[test]
    fn buffering_ingest_matches_whole_set_run() {
        let pts = [(180.0, 0.0), (180.001, 0.001), (180.002, -0.001)];
        let mut db = archive(&pts);
        let incoming = singles(&pts);
        let engine = SequentialEngine;
        let (whole, whole_stats) = engine.match_tuples(&mut db, &cfg(), &incoming).unwrap();

        // Feed the same tuples in two out-of-order chunks.
        let mut session = engine
            .begin_partial(&mut db, &cfg(), StepKind::Match, incoming.columns.clone())
            .unwrap();
        session
            .ingest(&mut db, vec![(2, incoming.tuples[2].clone())])
            .unwrap();
        session
            .ingest(
                &mut db,
                vec![
                    (0, incoming.tuples[0].clone()),
                    (1, incoming.tuples[1].clone()),
                ],
            )
            .unwrap();
        let (chunked, chunked_stats) = session.finish(&mut db).unwrap();
        assert_eq!(chunked, whole);
        assert_eq!(chunked_stats, whole_stats);
    }

    #[test]
    fn buffering_ingest_rejects_non_dense_indices() {
        let pts = [(180.0, 0.0)];
        let mut db = archive(&pts);
        let incoming = singles(&pts);
        let engine = SequentialEngine;
        let mut session = engine
            .begin_partial(&mut db, &cfg(), StepKind::Match, incoming.columns.clone())
            .unwrap();
        // Index 3 with no 0..2 delivered: the transfer lost tuples.
        session
            .ingest(&mut db, vec![(3, incoming.tuples[0].clone())])
            .unwrap();
        let err = session.finish(&mut db).unwrap_err();
        assert!(err.to_string().contains("permutation"), "{err}");
    }
}
