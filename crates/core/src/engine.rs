//! Pluggable cross-match execution engines.
//!
//! The stored-procedure kernels in [`crate::xmatch`] define *what* a
//! cross-match step computes; an engine decides *how* the work is driven —
//! the paper's sequential per-tuple loop, or a partitioned parallel
//! schedule such as the zone engine in the `skyquery-zones` crate. SkyNodes
//! hold an `Arc<dyn CrossMatchEngine>` so the federation can swap engines
//! without touching the service protocol, and every engine must produce
//! byte-identical [`PartialSet`] output for a given database + step
//! configuration: parallelism is an implementation detail, never a
//! semantics change.

use std::sync::Arc;

use skyquery_storage::Database;

use crate::error::Result;
use crate::xmatch::{dropout_step, match_step, seed_step, PartialSet, StepConfig, StepStats};

/// Strategy object executing the three cross-match step kinds.
///
/// The default methods delegate to the sequential kernels, so an engine
/// only overrides the steps it accelerates. Implementations must be
/// deterministic: the output `PartialSet` (tuple order included) and the
/// reported `StepStats` may not depend on scheduling.
pub trait CrossMatchEngine: Send + Sync {
    /// Human-readable engine name, surfaced in traces and diagnostics.
    fn name(&self) -> &str;

    /// Runs the seed step (the last archive in the chain).
    fn seed(&self, db: &mut Database, cfg: &StepConfig) -> Result<(PartialSet, StepStats)> {
        seed_step(db, cfg)
    }

    /// Runs a match step against `incoming` partial results.
    fn match_tuples(
        &self,
        db: &mut Database,
        cfg: &StepConfig,
        incoming: &PartialSet,
    ) -> Result<(PartialSet, StepStats)> {
        match_step(db, cfg, incoming)
    }

    /// Runs a drop-out (`!C`) step against `incoming` partial results.
    fn dropout(
        &self,
        db: &mut Database,
        cfg: &StepConfig,
        incoming: &PartialSet,
    ) -> Result<(PartialSet, StepStats)> {
        dropout_step(db, cfg, incoming)
    }
}

/// The paper's engine: one thread walks the tuples in order.
#[derive(Debug, Default, Clone, Copy)]
pub struct SequentialEngine;

impl CrossMatchEngine for SequentialEngine {
    fn name(&self) -> &str {
        "sequential"
    }
}

/// The engine every node uses unless another is installed.
pub fn default_engine() -> Arc<dyn CrossMatchEngine> {
    Arc::new(SequentialEngine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_engine_is_the_default() {
        assert_eq!(default_engine().name(), "sequential");
    }

    #[test]
    fn engines_are_object_safe_and_shareable() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let engine: Arc<dyn CrossMatchEngine> = Arc::new(SequentialEngine);
        assert_send_sync(&engine);
    }
}
