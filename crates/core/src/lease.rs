//! TTL leases for node-side resources, charged in simulated time.
//!
//! Every piece of per-query state a SkyNode holds on behalf of a remote
//! caller — a checkpointed partial set, an open chunked-transfer session,
//! a staged exchange transaction — is an orphan the moment its owner
//! crashes or loses connectivity. Drop-based cleanup only works while the
//! owner's process survives, so each resource instead carries a *lease*:
//! a TTL against the network's simulated clock, renewed by its owner
//! alongside retries and continuations. A janitor sweep on the node
//! ([`LeaseTable::sweep`], run at the front of every request it serves)
//! expires whatever was left behind.
//!
//! Expiry is decided only by the sweep, never by lookups: a resource that
//! outlives its TTL but is touched before the next sweep still answers
//! (and the touch usually renews it). That keeps lease semantics
//! deterministic under the simulated clock — there is no background
//! thread racing the request path.

use std::collections::HashMap;

use crate::plan::DEFAULT_LEASE_TTL_S;

/// One leased resource: the value plus its expiry bookkeeping.
#[derive(Debug, Clone)]
struct Lease<T> {
    value: T,
    ttl_s: f64,
    expires_at_s: f64,
}

/// A table of leased resources keyed by caller-visible id.
///
/// The table never allocates ids — callers bring their own (SkyNodes use
/// per-resource atomic counters) — and it never expires anything on its
/// own: [`LeaseTable::sweep`] must be called with the current simulated
/// time.
#[derive(Debug)]
pub struct LeaseTable<T> {
    entries: HashMap<u64, Lease<T>>,
}

/// Manual impl: an empty table needs no `T: Default`.
impl<T> Default for LeaseTable<T> {
    fn default() -> LeaseTable<T> {
        LeaseTable::new()
    }
}

impl<T> LeaseTable<T> {
    /// An empty table.
    pub fn new() -> LeaseTable<T> {
        LeaseTable {
            entries: HashMap::new(),
        }
    }

    /// Inserts `value` under `id` with a lease of `ttl_s` simulated
    /// seconds from `now_s`. Non-finite or non-positive TTLs fall back to
    /// [`DEFAULT_LEASE_TTL_S`] so a degenerate plan cannot create a
    /// stillborn lease. Replaces any previous entry under the id.
    pub fn insert(&mut self, id: u64, value: T, now_s: f64, ttl_s: f64) {
        let ttl_s = if ttl_s.is_finite() && ttl_s > 0.0 {
            ttl_s
        } else {
            DEFAULT_LEASE_TTL_S
        };
        self.entries.insert(
            id,
            Lease {
                value,
                ttl_s,
                expires_at_s: now_s + ttl_s,
            },
        );
    }

    /// The leased value, regardless of expiry (reclamation is the
    /// sweep's job — see the module docs).
    pub fn get(&self, id: u64) -> Option<&T> {
        self.entries.get(&id).map(|l| &l.value)
    }

    /// Mutable access to the leased value.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        self.entries.get_mut(&id).map(|l| &mut l.value)
    }

    /// Whether `id` is currently leased.
    pub fn contains(&self, id: u64) -> bool {
        self.entries.contains_key(&id)
    }

    /// Extends the lease under `id` to a full TTL from `now_s`. Returns
    /// whether the id was present.
    pub fn renew(&mut self, id: u64, now_s: f64) -> bool {
        match self.entries.get_mut(&id) {
            Some(l) => {
                l.expires_at_s = now_s + l.ttl_s;
                true
            }
            None => false,
        }
    }

    /// Removes and returns the value under `id`.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        self.entries.remove(&id).map(|l| l.value)
    }

    /// Reclaims every lease that expired at or before `now_s`, returning
    /// the `(id, value)` pairs sorted by id (deterministic sweeps) so the
    /// caller can release attached resources (e.g. drop a staging table).
    pub fn sweep(&mut self, now_s: f64) -> Vec<(u64, T)> {
        let expired: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, l)| l.expires_at_s <= now_s)
            .map(|(id, _)| *id)
            .collect();
        let mut out: Vec<(u64, T)> = expired
            .into_iter()
            .map(|id| (id, self.entries.remove(&id).expect("collected above").value))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Number of live leases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no leases are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Live lease ids, sorted.
    pub fn ids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.entries.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The id of the lease expiring soonest (ties broken by lowest id),
    /// or `None` when the table is empty. Capacity-bounded caches evict
    /// this entry first: it is the one the janitor would reclaim next
    /// anyway, so eviction order stays deterministic under the simulated
    /// clock.
    pub fn earliest_expiry(&self) -> Option<u64> {
        self.entries
            .iter()
            .min_by(|(ida, la), (idb, lb)| {
                la.expires_at_s
                    .partial_cmp(&lb.expires_at_s)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ida.cmp(idb))
            })
            .map(|(id, _)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t: LeaseTable<&'static str> = LeaseTable::new();
        assert!(t.is_empty());
        t.insert(7, "seven", 0.0, 10.0);
        t.insert(3, "three", 0.0, 10.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(7), Some(&"seven"));
        assert!(t.contains(3));
        assert_eq!(t.ids(), vec![3, 7]);
        assert_eq!(t.remove(7), Some("seven"));
        assert_eq!(t.remove(7), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sweep_reclaims_only_expired() {
        let mut t: LeaseTable<u32> = LeaseTable::new();
        t.insert(1, 10, 0.0, 5.0);
        t.insert(2, 20, 0.0, 50.0);
        assert!(t.sweep(4.9).is_empty());
        let expired = t.sweep(5.0);
        assert_eq!(expired, vec![(1, 10)]);
        assert_eq!(t.ids(), vec![2]);
        // Expired-but-unswept entries still answer lookups.
        t.insert(3, 30, 0.0, 1.0);
        assert_eq!(t.get(3), Some(&30));
    }

    #[test]
    fn renew_extends_from_now() {
        let mut t: LeaseTable<()> = LeaseTable::new();
        t.insert(1, (), 0.0, 5.0);
        assert!(t.renew(1, 4.0)); // expires at 9 now
        assert!(t.sweep(8.9).is_empty());
        assert_eq!(t.sweep(9.0).len(), 1);
        assert!(!t.renew(1, 9.0));
    }

    #[test]
    fn earliest_expiry_orders_by_deadline_then_id() {
        let mut t: LeaseTable<()> = LeaseTable::new();
        assert_eq!(t.earliest_expiry(), None);
        t.insert(5, (), 0.0, 50.0);
        t.insert(9, (), 0.0, 10.0);
        t.insert(2, (), 0.0, 10.0); // same deadline as 9: lowest id wins
        assert_eq!(t.earliest_expiry(), Some(2));
        t.remove(2);
        assert_eq!(t.earliest_expiry(), Some(9));
        // Renewal pushes the deadline out, changing the eviction order.
        assert!(t.renew(9, 100.0));
        assert_eq!(t.earliest_expiry(), Some(5));
    }

    #[test]
    fn degenerate_ttls_fall_back() {
        let mut t: LeaseTable<()> = LeaseTable::new();
        t.insert(1, (), 0.0, f64::NAN);
        t.insert(2, (), 0.0, -1.0);
        assert!(t.sweep(DEFAULT_LEASE_TTL_S - 0.1).is_empty());
        assert_eq!(t.sweep(DEFAULT_LEASE_TTL_S).len(), 2);
    }
}
