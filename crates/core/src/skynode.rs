//! The SkyNode: the wrapper around one autonomous archive (paper §5.1).
//!
//! "Each SkyNode also implements services that act as wrappers and hide
//! its DBMS and other platform specific details." A SkyNode exposes the
//! four Web services of §5.1 — **Information**, **Meta-data**, **Query**,
//! and **Cross match** — plus the `FetchChunk` continuation used by the
//! §6 chunking workaround and the data-exchange two-phase-commit methods,
//! all dispatched by `SOAPAction` through a single [service-method
//! registry](SkyNode::service_names) that also generates the node's WSDL.
//!
//! The Cross match service is the daisy-chain participant: on a call with
//! step index `i` it first calls step `i+1` (unless it is the seed), then
//! runs its own stored-procedure step on the returned partial results,
//! applies any residual clauses scheduled at this step, and returns the
//! new partial set (chunked when oversized) to its caller. When the
//! upstream reply is chunked, the node does not wait for the whole set:
//! it feeds each chunk to the engine's [incremental ingest
//! session](crate::engine::PartialIngest) as it arrives, releasing the
//! database lock between chunks, so zone workers can process completed
//! zones while later chunks are still in flight.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use skyquery_htm::SkyPoint;
use skyquery_net::{Endpoint, HttpRequest, HttpResponse, SimNetwork, Url};
use skyquery_soap::{
    ChunkHeader, ChunkManifest, MessageLimits, Operation, RpcCall, RpcResponse, SoapValue,
};
use skyquery_sql::parse_query;
use skyquery_storage::Database;
use skyquery_xml::VoTable;

use crate::engine::{default_engine, CrossMatchEngine, PartialIngest, StepKind};
use crate::error::{FederationError, Result};
use crate::exchange::ExchangeState;
use crate::lease::LeaseTable;
use crate::meta::{catalog_to_element, ArchiveInfo};
use crate::plan::{ExecutionPlan, DEFAULT_LEASE_TTL_S};
use crate::query_exec::{execute_local, LocalQueryResult};
use crate::service::ServiceMethod;
use crate::trace::StatsChain;
use crate::transfer::{open_checkpoint, open_cross_match, zone_label, IncomingPartial};
use crate::xmatch::PartialSet;

pub use crate::transfer::{invoke_cross_match, send_rpc};

/// Every service method a SkyNode answers, in WSDL order. A single
/// registry drives both [`SkyNode::handle_call`] dispatch and
/// [`SkyNode::wsdl`] generation (see [`crate::service`]), so a method
/// cannot be served without being described (or vice versa).
const SERVICES: &[ServiceMethod<SkyNode>] = &[
    ServiceMethod {
        name: "Information",
        operation: || {
            Operation::new("Information")
                .output("info", "xml")
                .doc("Astronomy-specific constants: σ, primary table, HTM depth")
        },
        handler: SkyNode::handle_information,
    },
    ServiceMethod {
        name: "Metadata",
        operation: || {
            Operation::new("Metadata")
                .output("catalog", "xml")
                .doc("Complete schema information for the Portal's catalog")
        },
        handler: SkyNode::handle_metadata,
    },
    ServiceMethod {
        name: "Query",
        operation: || {
            Operation::new("Query")
                .input("sql", "string")
                .output("count", "long")
                .output("rows", "table")
                .doc("General-purpose single-archive queries (performance queries)")
        },
        handler: SkyNode::handle_query,
    },
    ServiceMethod {
        name: "CrossMatch",
        operation: || {
            Operation::new("CrossMatch")
                .input("plan", "xml")
                .input("step", "long")
                .output("partial", "table")
                .output("manifest", "xml")
                .output("stats", "xml")
                .doc("One step of the federated cross-match chain")
        },
        handler: |node, net, call| node.handle_cross_match(net, call),
    },
    ServiceMethod {
        name: "FetchChunk",
        operation: || {
            Operation::new("FetchChunk")
                .input("transfer_id", "long")
                .input("index", "long")
                .output("chunk", "table")
                .doc("Chunked-transfer continuation for oversized partial results")
        },
        handler: |node, net, call| node.handle_fetch_chunk(net, call),
    },
    ServiceMethod {
        name: "AbortTransfer",
        operation: || {
            Operation::new("AbortTransfer")
                .input("transfer_id", "long")
                .output("aborted", "boolean")
                .doc("Free an open chunked transfer without serving its remaining chunks")
        },
        handler: |node, _net, call| node.handle_abort_transfer(call),
    },
    ServiceMethod {
        name: "ExecuteStep",
        operation: || {
            Operation::new("ExecuteStep")
                .input("plan", "xml")
                .input("step", "long")
                .input("checkpoint_url", "string")
                .input("checkpoint_id", "long")
                .output("checkpoint", "long")
                .output("rows", "long")
                .output("stats", "xml")
                .doc("One portal-driven cross-match step; result retained as a leased checkpoint")
        },
        handler: |node, net, call| node.handle_execute_step(net, call),
    },
    ServiceMethod {
        name: "ScatterStep",
        operation: || {
            Operation::new("ScatterStep")
                .input("plan", "xml")
                .input("step", "long")
                .input("input", "table")
                .output("partial", "table")
                .output("manifest", "xml")
                .output("stats", "xml")
                .doc("One scattered cross-match step against this shard's zone range")
        },
        handler: |node, net, call| node.handle_scatter_step(net, call),
    },
    ServiceMethod {
        name: "DeltaStep",
        operation: || {
            Operation::new("DeltaStep")
                .input("plan", "xml")
                .input("step", "long")
                .input("from_row", "long")
                .input("input", "table")
                .output("partial", "table")
                .output("manifest", "xml")
                .output("stats", "xml")
                .output("version", "long")
                .doc(
                    "One cross-match step restricted to rows inserted at or after from_row \
                      (the result cache's incremental-repair probe)",
                )
        },
        handler: |node, net, call| node.handle_delta_step(net, call),
    },
    ServiceMethod {
        name: "FetchCheckpoint",
        operation: || {
            Operation::new("FetchCheckpoint")
                .input("plan", "xml")
                .input("checkpoint_id", "long")
                .output("partial", "table")
                .output("manifest", "xml")
                .doc("Serve (and lease-renew) a checkpointed partial set")
        },
        handler: |node, net, call| node.handle_fetch_checkpoint(net, call),
    },
    ServiceMethod {
        name: "ReleaseCheckpoint",
        operation: || {
            Operation::new("ReleaseCheckpoint")
                .input("checkpoint_id", "long")
                .output("released", "boolean")
                .doc("Free a checkpointed partial set that is no longer needed")
        },
        handler: |node, net, call| node.handle_release_checkpoint(net, call),
    },
    ServiceMethod {
        name: "RenewLease",
        operation: || {
            Operation::new("RenewLease")
                .input("kind", "string")
                .input("id", "long")
                .output("renewed", "boolean")
                .doc("Extend the TTL lease on a checkpoint, transfer, or staged transaction")
        },
        handler: |node, net, call| node.handle_renew_lease(net, call),
    },
    ServiceMethod {
        name: "PrepareReceive",
        operation: || {
            Operation::new("PrepareReceive")
                .input("txn", "long")
                .input("dest_table", "string")
                .input("schema", "xml")
                .input("rows", "table")
                .output("staged", "long")
                .doc("Data-exchange 2PC: stage rows for an incoming transfer")
        },
        handler: SkyNode::handle_prepare_receive,
    },
    ServiceMethod {
        name: "CommitReceive",
        operation: || {
            Operation::new("CommitReceive")
                .input("txn", "long")
                .output("published", "long")
                .output("version", "long")
                .doc("Data-exchange 2PC: publish a staged transfer")
        },
        handler: SkyNode::handle_commit_receive,
    },
    ServiceMethod {
        name: "AbortReceive",
        operation: || {
            Operation::new("AbortReceive")
                .input("txn", "long")
                .output("aborted", "boolean")
                .doc("Data-exchange 2PC: discard a staged transfer")
        },
        handler: SkyNode::handle_abort_receive,
    },
];

/// Configures and starts a [`SkyNode`].
///
/// ```no_run
/// # use skyquery_core::skynode::SkyNodeBuilder;
/// # use skyquery_core::meta::ArchiveInfo;
/// # fn demo(net: &skyquery_net::SimNetwork, info: ArchiveInfo, db: skyquery_storage::Database) {
/// let node = SkyNodeBuilder::new(info, db).start(net, "sdss.example.org");
/// # }
/// ```
pub struct SkyNodeBuilder {
    info: ArchiveInfo,
    db: Database,
    engine: Arc<dyn CrossMatchEngine>,
}

impl SkyNodeBuilder {
    /// A builder for a node wrapping `db`, using the default sequential
    /// engine until [`SkyNodeBuilder::engine`] installs another.
    pub fn new(info: ArchiveInfo, db: Database) -> SkyNodeBuilder {
        SkyNodeBuilder {
            info,
            db,
            engine: default_engine(),
        }
    }

    /// Installs a cross-match engine (e.g. the zone-partitioned parallel
    /// engine from `skyquery-zones`).
    pub fn engine(mut self, engine: Arc<dyn CrossMatchEngine>) -> SkyNodeBuilder {
        self.engine = engine;
        self
    }

    /// Starts the node and binds it to `host` on the network.
    pub fn start(self, net: &SimNetwork, host: impl Into<String>) -> Arc<SkyNode> {
        let host = host.into();
        let node = Arc::new(SkyNode {
            info: self.info,
            host: host.clone(),
            db: Mutex::new(self.db),
            pending: Mutex::new(LeaseTable::new()),
            next_transfer: AtomicU64::new(1),
            checkpoints: Mutex::new(LeaseTable::new()),
            next_checkpoint: AtomicU64::new(1),
            executed_steps: AtomicU64::new(0),
            exchange: Mutex::new(ExchangeState::new()),
            engine: self.engine,
        });
        net.bind(host, node.clone());
        node
    }
}

/// A SkyNode wrapping one archive database.
pub struct SkyNode {
    info: ArchiveInfo,
    host: String,
    db: Mutex<Database>,
    /// Outgoing chunked transfers awaiting FetchChunk calls, leased.
    pending: Mutex<LeaseTable<Vec<(ChunkHeader, VoTable)>>>,
    next_transfer: AtomicU64,
    /// Checkpointed partial sets retained for portal-driven stepwise
    /// execution, leased: the committed result of each `ExecuteStep`
    /// stays here until the Portal releases it (or its lease lapses), so
    /// a mid-chain failure can resume without re-running this step.
    checkpoints: Mutex<LeaseTable<PartialSet>>,
    next_checkpoint: AtomicU64,
    /// Successful cross-match step executions (seed, match, or drop-out)
    /// performed by this node — the no-re-execution witness for the
    /// survivability tests.
    executed_steps: AtomicU64,
    /// Two-phase-commit staging for the data-exchange extension.
    exchange: Mutex<ExchangeState>,
    /// Strategy executing the cross-match stored-procedure steps.
    engine: Arc<dyn CrossMatchEngine>,
}

impl SkyNode {
    /// The installed cross-match engine's name.
    pub fn engine_name(&self) -> &str {
        self.engine.name()
    }

    /// The archive's survey constants.
    pub fn info(&self) -> &ArchiveInfo {
        &self.info
    }

    /// The node's network host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The node's SOAP endpoint URL.
    pub fn url(&self) -> Url {
        Url::new(self.host.clone(), "/soap")
    }

    /// Runs a closure against the archive database (tests, data loading,
    /// cache manipulation for experiments).
    pub fn with_db<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.db.lock())
    }

    /// Transactions staged by the data-exchange extension and still
    /// awaiting a coordinator decision.
    pub fn pending_exchange_txns(&self) -> Vec<u64> {
        self.exchange.lock().pending()
    }

    /// Checkpointed partial sets currently leased, sorted by id — a leak
    /// detector for tests: after a query completes and releases its
    /// checkpoints (or their leases lapse and a sweep runs), this should
    /// be empty.
    pub fn checkpoints(&self) -> Vec<u64> {
        self.checkpoints.lock().ids()
    }

    /// Total node-side resources currently under lease: open chunked
    /// transfers, checkpointed partial sets, and staged exchange
    /// transactions.
    pub fn active_leases(&self) -> usize {
        self.pending.lock().len()
            + self.checkpoints.lock().len()
            + self.exchange.lock().pending().len()
    }

    /// How many cross-match steps this node has successfully executed
    /// (via either the recursive `CrossMatch` chain or the stepwise
    /// `ExecuteStep` service). Checkpoint resume must *not* grow this on
    /// nodes whose steps already committed.
    pub fn executed_steps(&self) -> u64 {
        self.executed_steps.load(Ordering::Relaxed)
    }

    /// Janitor sweep: reclaims every lease that expired at or before the
    /// network's current simulated time — orphaned chunked transfers,
    /// checkpointed partial sets, and staged exchange transactions (whose
    /// staging tables are dropped). Runs at the front of every request
    /// this node serves, and tests call it directly after advancing the
    /// clock. Returns how many resources were reclaimed; each is tallied
    /// as a `lease-expired` node event in the network metrics.
    pub fn sweep_leases(&self, net: &SimNetwork) -> usize {
        let now = net.now_s();
        let mut reclaimed = self.pending.lock().sweep(now).len();
        reclaimed += self.checkpoints.lock().sweep(now).len();
        reclaimed += {
            let mut db = self.db.lock();
            self.exchange.lock().sweep(&mut db, now).len()
        };
        for _ in 0..reclaimed {
            net.record_node_event(&self.host, "lease-expired");
        }
        reclaimed
    }

    /// Every SOAPAction method this node dispatches, in WSDL order.
    pub fn service_names() -> Vec<&'static str> {
        crate::service::method_names(SERVICES)
    }

    /// The WSDL document describing this node's services (§3.1),
    /// generated from the same registry that dispatches them.
    pub fn wsdl(&self) -> String {
        crate::service::wsdl(SERVICES, "SkyNode", &self.url().to_string())
    }

    fn handle_call(&self, net: &SimNetwork, call: RpcCall) -> Result<RpcResponse> {
        // Janitor first: any request is an opportunity to reclaim leases
        // that lapsed while the node sat idle.
        self.sweep_leases(net);
        crate::service::dispatch(SERVICES, self, net, &call)
    }

    fn handle_information(&self, _net: &SimNetwork, _call: &RpcCall) -> Result<RpcResponse> {
        Ok(RpcResponse::new("Information").result("info", SoapValue::Xml(self.info.to_element())))
    }

    fn handle_metadata(&self, _net: &SimNetwork, _call: &RpcCall) -> Result<RpcResponse> {
        let catalog = self.db.lock().catalog();
        Ok(RpcResponse::new("Metadata")
            .result("catalog", SoapValue::Xml(catalog_to_element(&catalog))))
    }

    fn handle_query(&self, _net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let sql = call
            .require("sql")?
            .as_str()
            .ok_or_else(|| FederationError::protocol("sql parameter must be a string"))?
            .to_string();
        let query = parse_query(&sql).map_err(FederationError::Sql)?;
        let mut db = self.db.lock();
        match execute_local(&mut db, &self.info.name, &query)? {
            LocalQueryResult::Count(n) => {
                Ok(RpcResponse::new("Query").result("count", SoapValue::Int(n as i64)))
            }
            LocalQueryResult::Rows(rs) => {
                Ok(RpcResponse::new("Query")
                    .result("rows", SoapValue::Table(rs.to_votable("rows"))))
            }
        }
    }

    fn handle_prepare_receive(&self, net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let txn = require_u64(call, "txn")?;
        let dest_table = call
            .require("dest_table")?
            .as_str()
            .ok_or_else(|| FederationError::protocol("dest_table must be a string"))?
            .to_string();
        let schema = call
            .require("schema")?
            .as_xml()
            .ok_or_else(|| FederationError::protocol("schema must be xml"))?
            .clone();
        let rows = crate::result::ResultSet::from_votable(
            call.require("rows")?
                .as_table()
                .ok_or_else(|| FederationError::protocol("rows must be a table"))?,
        )?;
        let mut db = self.db.lock();
        // PrepareReceive predates plans and carries no TTL of its own;
        // the default lease keeps an undecided stage reclaimable.
        let staged = self.exchange.lock().prepare(
            &mut db,
            txn,
            &dest_table,
            &schema,
            &rows,
            net.now_s(),
            DEFAULT_LEASE_TTL_S,
        )?;
        net.record_node_event(&self.host, "lease-granted");
        Ok(RpcResponse::new("PrepareReceive").result("staged", SoapValue::Int(staged as i64)))
    }

    fn handle_commit_receive(&self, _net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let txn = require_u64(call, "txn")?;
        let mut db = self.db.lock();
        let (published, version) = self.exchange.lock().commit(&mut db, txn)?;
        Ok(RpcResponse::new("CommitReceive")
            .result("published", SoapValue::Int(published as i64))
            .result("version", SoapValue::Int(version as i64)))
    }

    fn handle_abort_receive(&self, _net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let txn = require_u64(call, "txn")?;
        let mut db = self.db.lock();
        self.exchange.lock().abort(&mut db, txn)?;
        Ok(RpcResponse::new("AbortReceive").result("aborted", SoapValue::Bool(true)))
    }

    /// Decodes and validates the `plan`/`step` pair every cross-match
    /// entry point carries: the step must exist and address this node
    /// (autonomy check).
    fn decode_plan_step(&self, call: &RpcCall) -> Result<(ExecutionPlan, usize)> {
        let plan_el = call
            .require("plan")?
            .as_xml()
            .ok_or_else(|| FederationError::protocol("plan must be xml"))?;
        let plan = ExecutionPlan::from_element(plan_el)?;
        let step = call
            .require("step")?
            .as_i64()
            .ok_or_else(|| FederationError::protocol("step must be an integer"))?
            as usize;
        if step >= plan.steps.len() {
            return Err(FederationError::protocol(format!(
                "step {step} out of range for a {}-step plan",
                plan.steps.len()
            )));
        }
        if !plan.steps[step]
            .archive
            .eq_ignore_ascii_case(&self.info.name)
        {
            return Err(FederationError::protocol(format!(
                "plan step {step} addresses {}, but this node is {}",
                plan.steps[step].archive, self.info.name
            )));
        }
        Ok((plan, step))
    }

    fn handle_cross_match(&self, net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let (plan, step) = self.decode_plan_step(call)?;
        let cfg = plan.step_config(step)?;
        let dropout = plan.steps[step].dropout;

        // Daisy chain: obtain the partial results from the next step,
        // then run this node's stored-procedure step on them.
        let (mut set, stats, mut stats_chain) = if step == plan.seed_index() {
            if dropout {
                return Err(FederationError::protocol(
                    "a drop-out archive cannot be the seed of the chain",
                ));
            }
            let mut db = self.db.lock();
            let (set, stats) = self.engine.seed(&mut db, &cfg)?;
            (set, stats, StatsChain::new())
        } else {
            let next_url = plan.steps[step + 1].url.clone();
            let (incoming, chain) = open_cross_match(net, &self.host, &next_url, &plan, step + 1)?;
            let kind = if dropout {
                StepKind::Dropout
            } else {
                StepKind::Match
            };
            let (set, stats) = match incoming {
                IncomingPartial::Inline(inc) => {
                    let mut db = self.db.lock();
                    match kind {
                        StepKind::Match => self.engine.match_tuples(&mut db, &cfg, &inc)?,
                        StepKind::Dropout => self.engine.dropout(&mut db, &cfg, &inc)?,
                    }
                }
                IncomingPartial::Chunked(stream) => self.ingest_chunked(stream, &cfg, kind)?,
            };
            (set, stats, chain)
        };

        // Residual clauses scheduled at this step.
        let residuals = plan.residuals(step)?;
        if !residuals.is_empty() {
            set = crate::xmatch::apply_residuals(set, &residuals)?;
        }
        self.executed_steps.fetch_add(1, Ordering::Relaxed);
        stats_chain.push(plan.steps[step].alias.clone(), stats);

        self.encode_set_response(net, &plan, "CrossMatch", set, Some(&stats_chain))
    }

    /// One portal-driven step of the checkpointed chain. Unlike
    /// `CrossMatch`, the node does not call the next step itself: the
    /// Portal supplies the input (the previous step's checkpoint, or
    /// nothing for the seed), and the result is retained here as a fresh
    /// leased checkpoint — only its id, row count, and statistics travel
    /// back. A failure *later* in the chain can then resume from this
    /// checkpoint without re-running the step.
    fn handle_execute_step(&self, net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let (plan, step) = self.decode_plan_step(call)?;
        let cfg = plan.step_config(step)?;
        let dropout = plan.steps[step].dropout;

        let input = match call.get("checkpoint_id") {
            Some(v) => {
                let id = v.as_i64().filter(|v| *v >= 0).ok_or_else(|| {
                    FederationError::protocol("checkpoint_id must be a non-negative integer")
                })? as u64;
                let url_str = call
                    .require("checkpoint_url")?
                    .as_str()
                    .ok_or_else(|| FederationError::protocol("checkpoint_url must be a string"))?;
                Some((Url::parse(url_str).map_err(FederationError::Net)?, id))
            }
            None => None,
        };

        let (mut set, stats) = match input {
            None => {
                if dropout {
                    return Err(FederationError::protocol(
                        "a drop-out archive cannot be the seed of the chain",
                    ));
                }
                let mut db = self.db.lock();
                self.engine.seed(&mut db, &cfg)?
            }
            Some((cp_url, cp_id)) => {
                let kind = if dropout {
                    StepKind::Dropout
                } else {
                    StepKind::Match
                };
                if cp_url.host == self.host {
                    // The previous step ran here too: read the checkpoint
                    // locally (renewing its lease) instead of fetching it
                    // over the wire from ourselves.
                    let inc = {
                        let mut cps = self.checkpoints.lock();
                        cps.renew(cp_id, net.now_s());
                        cps.get(cp_id)
                            .cloned()
                            .ok_or_else(|| FederationError::LeaseExpired {
                                kind: "checkpoint".into(),
                                id: cp_id,
                                host: self.host.clone(),
                            })?
                    };
                    net.record_node_event(&self.host, "lease-renewed");
                    let mut db = self.db.lock();
                    match kind {
                        StepKind::Match => self.engine.match_tuples(&mut db, &cfg, &inc)?,
                        StepKind::Dropout => self.engine.dropout(&mut db, &cfg, &inc)?,
                    }
                } else {
                    match open_checkpoint(net, &self.host, &cp_url, &plan, cp_id)? {
                        IncomingPartial::Inline(inc) => {
                            let mut db = self.db.lock();
                            match kind {
                                StepKind::Match => self.engine.match_tuples(&mut db, &cfg, &inc)?,
                                StepKind::Dropout => self.engine.dropout(&mut db, &cfg, &inc)?,
                            }
                        }
                        IncomingPartial::Chunked(stream) => {
                            self.ingest_chunked(stream, &cfg, kind)?
                        }
                    }
                }
            }
        };

        let residuals = plan.residuals(step)?;
        if !residuals.is_empty() {
            set = crate::xmatch::apply_residuals(set, &residuals)?;
        }
        self.executed_steps.fetch_add(1, Ordering::Relaxed);

        let rows = set.tuples.len();
        let cp_id = self.next_checkpoint.fetch_add(1, Ordering::Relaxed);
        self.checkpoints
            .lock()
            .insert(cp_id, set, net.now_s(), plan.lease_ttl_s);
        net.record_node_event(&self.host, "lease-granted");
        let mut chain = StatsChain::new();
        chain.push(plan.steps[step].alias.clone(), stats);
        Ok(RpcResponse::new("ExecuteStep")
            .result("checkpoint", SoapValue::Int(cp_id as i64))
            .result("rows", SoapValue::Int(rows as i64))
            .result("stats", SoapValue::Xml(chain.to_element())))
    }

    /// One scattered step of a sharded archive: the Portal supplies the
    /// input partial set inline (absent for the seed), this shard runs
    /// the step against the zone range it owns, and the output travels
    /// straight back (inline or chunked). Unlike `ExecuteStep`, no
    /// checkpoint is retained here — the Portal's merged set between
    /// steps *is* the scatter chain's checkpoint, so a shard holds no
    /// per-query state beyond a chunked-reply transfer session.
    fn handle_scatter_step(&self, net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let (plan, step) = self.decode_plan_step(call)?;
        let cfg = plan.step_config(step)?;
        let dropout = plan.steps[step].dropout;

        let (mut set, stats) = match call.get("input") {
            None => {
                if dropout {
                    return Err(FederationError::protocol(
                        "a drop-out archive cannot be the seed of the chain",
                    ));
                }
                let mut db = self.db.lock();
                self.engine.seed(&mut db, &cfg)?
            }
            Some(v) => {
                let table = v
                    .as_table()
                    .ok_or_else(|| FederationError::protocol("input must be a table"))?;
                let inc = PartialSet::from_votable(table)?;
                let mut db = self.db.lock();
                if dropout {
                    self.engine.dropout(&mut db, &cfg, &inc)?
                } else {
                    self.engine.match_tuples(&mut db, &cfg, &inc)?
                }
            }
        };

        let residuals = plan.residuals(step)?;
        if !residuals.is_empty() {
            set = crate::xmatch::apply_residuals(set, &residuals)?;
        }
        self.executed_steps.fetch_add(1, Ordering::Relaxed);
        let mut chain = StatsChain::new();
        chain.push(plan.steps[step].alias.clone(), stats);
        self.encode_set_response(net, &plan, "ScatterStep", set, Some(&chain))
    }

    /// One cross-match step restricted to the rows inserted at or after
    /// `from_row` — the probe the Portal's result cache issues to repair
    /// a stale entry incrementally. The delta rows are materialized into
    /// an indexed temp table (tables are append-only with sequential row
    /// ids, so `[from_row..len)` is exactly what changed since the cached
    /// version) and the step runs against it with the same kernels as a
    /// full execution; `from_row = 0` runs against the whole table, which
    /// is what freshly-appended upstream tuples need. The temp table is
    /// dropped before the reply leaves, success or failure.
    fn handle_delta_step(&self, net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let (plan, step) = self.decode_plan_step(call)?;
        let mut cfg = plan.step_config(step)?;
        let dropout = plan.steps[step].dropout;
        let from_row = require_u64(call, "from_row")? as usize;

        let input = match call.get("input") {
            Some(v) => {
                let table = v
                    .as_table()
                    .ok_or_else(|| FederationError::protocol("input must be a table"))?;
                Some(PartialSet::from_votable(table)?)
            }
            None => None,
        };
        if input.is_none() && dropout {
            return Err(FederationError::protocol(
                "a drop-out archive cannot be the seed of the chain",
            ));
        }

        let (mut set, stats, version) = {
            let mut db = self.db.lock();
            // The version observed under the same lock as the probe: the
            // repaired cache entry records this as its new baseline.
            let version = db.table_version(&cfg.table)?;
            let temp = if from_row > 0 {
                let rows: Vec<skyquery_storage::Row> = db
                    .table(&cfg.table)?
                    .rows()
                    .iter()
                    .skip(from_row)
                    .cloned()
                    .collect();
                let schema = db.schema(&cfg.table)?.clone();
                let name = db.create_temp_table(schema)?;
                for row in rows {
                    db.insert(&name, row).map_err(FederationError::Storage)?;
                }
                cfg.table = name.clone();
                Some(name)
            } else {
                None
            };
            let result = match &input {
                None => self.engine.seed(&mut db, &cfg),
                Some(inc) => {
                    if dropout {
                        self.engine.dropout(&mut db, &cfg, inc)
                    } else {
                        self.engine.match_tuples(&mut db, &cfg, inc)
                    }
                }
            };
            if let Some(name) = &temp {
                db.drop_table(name)
                    .expect("the delta temp table was created under this same lock");
            }
            let (set, stats) = result?;
            (set, stats, version)
        };

        let residuals = plan.residuals(step)?;
        if !residuals.is_empty() {
            set = crate::xmatch::apply_residuals(set, &residuals)?;
        }
        self.executed_steps.fetch_add(1, Ordering::Relaxed);
        let mut chain = StatsChain::new();
        chain.push(plan.steps[step].alias.clone(), stats);
        let resp = self.encode_set_response(net, &plan, "DeltaStep", set, Some(&chain))?;
        Ok(resp.result("version", SoapValue::Int(version as i64)))
    }

    /// Serves a checkpointed partial set (inline or chunked under the
    /// plan's message limit), renewing its lease — fetching is also
    /// keeping-alive. A stale id answers a deterministic
    /// [`FederationError::LeaseExpired`] fault: the checkpoint will not
    /// come back, so the caller must re-plan rather than retry.
    fn handle_fetch_checkpoint(&self, net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let plan_el = call
            .require("plan")?
            .as_xml()
            .ok_or_else(|| FederationError::protocol("plan must be xml"))?;
        let plan = ExecutionPlan::from_element(plan_el)?;
        let id = require_u64(call, "checkpoint_id")?;
        let set = {
            let mut cps = self.checkpoints.lock();
            if !cps.renew(id, net.now_s()) {
                return Err(FederationError::LeaseExpired {
                    kind: "checkpoint".into(),
                    id,
                    host: self.host.clone(),
                });
            }
            cps.get(id).cloned().expect("renewed above")
        };
        net.record_node_event(&self.host, "lease-renewed");
        self.encode_set_response(net, &plan, "FetchCheckpoint", set, None)
    }

    /// Frees a checkpointed partial set. Idempotent: an unknown id
    /// (already released, or reclaimed by the janitor) answers
    /// `released = false` rather than faulting, so best-effort cleanup
    /// never cascades.
    fn handle_release_checkpoint(&self, net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let id = require_u64(call, "checkpoint_id")?;
        let released = self.checkpoints.lock().remove(id).is_some();
        if released {
            net.record_node_event(&self.host, "checkpoint-released");
        }
        Ok(RpcResponse::new("ReleaseCheckpoint").result("released", SoapValue::Bool(released)))
    }

    /// Extends the lease on one of this node's resources. Idempotent: an
    /// unknown id answers `renewed = false`, telling the caller the
    /// resource is gone for good.
    fn handle_renew_lease(&self, net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let kind = call
            .require("kind")?
            .as_str()
            .ok_or_else(|| FederationError::protocol("kind must be a string"))?
            .to_string();
        let id = require_u64(call, "id")?;
        let now = net.now_s();
        let renewed = match kind.as_str() {
            "checkpoint" => self.checkpoints.lock().renew(id, now),
            "transfer" => self.pending.lock().renew(id, now),
            "txn" => self.exchange.lock().renew(id, now),
            other => {
                return Err(FederationError::protocol(format!(
                    "unknown lease kind {other} (expected checkpoint, transfer, or txn)"
                )))
            }
        };
        if renewed {
            net.record_node_event(&self.host, "lease-renewed");
        }
        Ok(RpcResponse::new("RenewLease").result("renewed", SoapValue::Bool(renewed)))
    }

    /// Feeds a chunked upstream reply to the engine's incremental ingest
    /// session as chunks arrive. The database lock is taken per chunk and
    /// released before the next `FetchChunk` round-trip — both to overlap
    /// engine work with the transfer and because the daisy chain may
    /// revisit this very node at an earlier step.
    fn ingest_chunked(
        &self,
        mut stream: crate::transfer::ChunkStream<'_>,
        cfg: &crate::xmatch::StepConfig,
        kind: StepKind,
    ) -> Result<(PartialSet, crate::xmatch::StepStats)> {
        let mut session: Option<Box<dyn PartialIngest + '_>> = None;
        let mut next_seq = 0u64;
        while let Some(chunk) = stream.fetch_next()? {
            let set = PartialSet::from_votable(&chunk.table)?;
            let columns = set.columns;
            let pairs: Vec<_> = match chunk.seqs {
                Some(seqs) => seqs
                    .into_iter()
                    .map(|s| s as usize)
                    .zip(set.tuples)
                    .collect(),
                None => set
                    .tuples
                    .into_iter()
                    .map(|t| {
                        let i = next_seq as usize;
                        next_seq += 1;
                        (i, t)
                    })
                    .collect(),
            };
            let mut db = self.db.lock();
            let session = match session.as_mut() {
                Some(s) => s,
                None => session.insert(self.engine.begin_partial(&mut db, cfg, kind, columns)?),
            };
            session.ingest(&mut db, pairs)?;
        }
        let session = session
            .ok_or_else(|| FederationError::protocol("chunked transfer delivered zero chunks"))?;
        session.finish(&mut self.db.lock())
    }

    /// Encodes a partial set under `method`, chunking when the monolithic
    /// response would exceed the plan's message limit. Chunked replies
    /// return a typed [`ChunkManifest`] and lease the sender-side session
    /// under the plan's TTL; with the plan's `zone_chunking` knob on,
    /// chunks are split on declination-zone boundaries and carry the
    /// `__seq` sequence column so the receiver can pipeline zone
    /// processing.
    fn encode_set_response(
        &self,
        net: &SimNetwork,
        plan: &ExecutionPlan,
        method: &'static str,
        set: PartialSet,
        stats_chain: Option<&StatsChain>,
    ) -> Result<RpcResponse> {
        let limits = MessageLimits::tiny(plan.max_message_bytes);
        let table = set.to_votable();
        let with_stats = |resp: RpcResponse| match stats_chain {
            Some(c) => resp.result("stats", SoapValue::Xml(c.to_element())),
            None => resp,
        };
        let monolithic =
            with_stats(RpcResponse::new(method).result("partial", SoapValue::Table(table.clone())));
        let encoded_len = monolithic.to_xml().len();
        if encoded_len <= plan.max_message_bytes {
            return Ok(monolithic);
        }
        if !plan.chunking {
            // The pre-workaround behaviour: the caller's parser would die.
            return Err(FederationError::Soap(
                skyquery_soap::SoapError::MessageTooLarge {
                    size: encoded_len,
                    limit: plan.max_message_bytes,
                },
            ));
        }
        let transfer_id = self.next_transfer.fetch_add(1, Ordering::Relaxed);
        let (manifest, chunks) = if plan.zone_chunking {
            // Zone labels from each tuple's current best position;
            // degenerate tuples (no position) go to zone 0.
            let zones: Vec<u32> = set
                .tuples
                .iter()
                .map(|t| {
                    t.state
                        .best_position()
                        .map(|v| zone_label(SkyPoint::from_vec3(v).dec_deg, plan.zone_height_deg))
                        .unwrap_or(0)
                })
                .collect();
            skyquery_soap::chunk::split_table_zoned(
                &table,
                limits,
                transfer_id,
                &zones,
                plan.zone_height_deg,
            )
            .map_err(FederationError::Soap)?
        } else {
            let chunks = skyquery_soap::chunk::split_table(&table, limits, transfer_id)
                .map_err(FederationError::Soap)?;
            let rows: Vec<usize> = chunks.iter().map(|(_, t)| t.row_count()).collect();
            (ChunkManifest::legacy(transfer_id, &rows), chunks)
        };
        self.pending
            .lock()
            .insert(transfer_id, chunks, net.now_s(), plan.lease_ttl_s);
        net.record_node_event(&self.host, "lease-granted");
        Ok(with_stats(
            RpcResponse::new(method).result("manifest", SoapValue::Xml(manifest.to_element())),
        ))
    }

    fn handle_fetch_chunk(&self, net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let transfer_id = require_u64(call, "transfer_id")?;
        let index = call
            .require("index")?
            .as_i64()
            .ok_or_else(|| FederationError::protocol("index must be an integer"))?
            as usize;
        let mut pending = self.pending.lock();
        // Each continuation renews the session's lease: a live receiver
        // never loses a transfer mid-stream, however slowly it pulls.
        pending.renew(transfer_id, net.now_s());
        let chunks = pending
            .get(transfer_id)
            .ok_or_else(|| FederationError::LeaseExpired {
                kind: "transfer".into(),
                id: transfer_id,
                host: self.host.clone(),
            })?;
        let (header, table) = chunks
            .get(index)
            .cloned()
            .ok_or_else(|| FederationError::protocol(format!("no chunk {index}")))?;
        // Free the transfer once the last chunk has been served.
        if index + 1 == header.total {
            pending.remove(transfer_id);
        }
        Ok(RpcResponse::new("FetchChunk")
            .result("chunk", SoapValue::Table(table))
            .result("index", SoapValue::Int(header.index as i64))
            .result("total", SoapValue::Int(header.total as i64))
            .result("transfer_id", SoapValue::Int(header.transfer_id as i64)))
    }

    /// Frees an open chunked transfer a receiver abandoned mid-stream.
    /// Idempotent: an unknown id (already drained, already aborted, or a
    /// duplicate abort after a retried call) answers `aborted = false`
    /// rather than faulting, so best-effort cleanup never cascades.
    fn handle_abort_transfer(&self, call: &RpcCall) -> Result<RpcResponse> {
        let transfer_id = require_u64(call, "transfer_id")?;
        let freed = self.pending.lock().remove(transfer_id).is_some();
        Ok(RpcResponse::new("AbortTransfer").result("aborted", SoapValue::Bool(freed)))
    }

    /// Outgoing chunked transfers still awaiting `FetchChunk` calls —
    /// a leak detector for tests: after every client has drained or
    /// aborted, this should be empty.
    pub fn open_transfers(&self) -> Vec<u64> {
        self.pending.lock().ids()
    }
}

impl Endpoint for SkyNode {
    fn handle(&self, net: &SimNetwork, req: HttpRequest) -> HttpResponse {
        let body = match std::str::from_utf8(&req.body) {
            Ok(b) => b,
            Err(_) => {
                return HttpResponse::soap_fault(
                    skyquery_soap::SoapFault::client("request body is not UTF-8").to_xml(),
                )
            }
        };
        let call = match RpcCall::parse(body) {
            Ok(c) => c,
            Err(e) => {
                return HttpResponse::soap_fault(
                    skyquery_soap::SoapFault::client(e.to_string()).to_xml(),
                )
            }
        };
        match self.handle_call(net, call) {
            Ok(resp) => HttpResponse::ok(resp.to_xml()),
            Err(e) => HttpResponse::soap_fault(e.to_fault().to_xml()),
        }
    }
}

/// Decodes a required unsigned-integer parameter.
fn require_u64(call: &RpcCall, name: &str) -> Result<u64> {
    call.require(name)?
        .as_i64()
        .filter(|v| *v >= 0)
        .map(|v| v as u64)
        .ok_or_else(|| FederationError::protocol(format!("{name} must be a non-negative integer")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wsdl_describes_every_dispatched_method() {
        // The registry drives both dispatch and WSDL, so every method a
        // node answers must appear in its service description — including
        // the data-exchange methods the hand-written WSDL used to omit.
        let names = SkyNode::service_names();
        assert!(names.contains(&"CrossMatch"));
        assert!(names.contains(&"PrepareReceive"));
        assert!(names.contains(&"CommitReceive"));
        assert!(names.contains(&"AbortReceive"));
        assert_eq!(names.len(), SERVICES.len());
        // Registry names are unique (duplicate entries would shadow).
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
