//! The SkyNode: the wrapper around one autonomous archive (paper §5.1).
//!
//! "Each SkyNode also implements services that act as wrappers and hide
//! its DBMS and other platform specific details." A SkyNode exposes the
//! four Web services of §5.1 — **Information**, **Meta-data**, **Query**,
//! and **Cross match** — plus the `FetchChunk` continuation used by the
//! §6 chunking workaround, all dispatched by `SOAPAction` over the
//! simulated HTTP transport.
//!
//! The Cross match service is the daisy-chain participant: on a call with
//! step index `i` it first calls step `i+1` (unless it is the seed), then
//! runs its own stored-procedure step on the returned partial results,
//! applies any residual clauses scheduled at this step, and returns the
//! new partial set (chunked when oversized) to its caller.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use skyquery_net::{Endpoint, HttpRequest, HttpResponse, SimNetwork, Url};
use skyquery_soap::{
    ChunkHeader, MessageLimits, Operation, Reassembler, RpcCall, RpcResponse, SoapValue,
    WsdlBuilder,
};
use skyquery_sql::parse_query;
use skyquery_storage::Database;
use skyquery_xml::VoTable;

use crate::engine::{default_engine, CrossMatchEngine};
use crate::error::{FederationError, Result};
use crate::exchange::ExchangeState;
use crate::meta::{catalog_to_element, ArchiveInfo};
use crate::plan::ExecutionPlan;
use crate::query_exec::{execute_local, LocalQueryResult};
use crate::trace::StatsChain;
use crate::xmatch::PartialSet;

/// A SkyNode wrapping one archive database.
pub struct SkyNode {
    info: ArchiveInfo,
    host: String,
    db: Mutex<Database>,
    /// Outgoing chunked transfers awaiting FetchChunk calls.
    pending: Mutex<HashMap<u64, Vec<(ChunkHeader, VoTable)>>>,
    next_transfer: AtomicU64,
    /// Two-phase-commit staging for the data-exchange extension.
    exchange: Mutex<ExchangeState>,
    /// Strategy executing the cross-match stored-procedure steps.
    engine: Arc<dyn CrossMatchEngine>,
}

impl SkyNode {
    /// Creates a SkyNode and binds it to `host` on the network.
    pub fn start(
        net: &SimNetwork,
        host: impl Into<String>,
        info: ArchiveInfo,
        db: Database,
    ) -> Arc<SkyNode> {
        SkyNode::start_with_engine(net, host, info, db, default_engine())
    }

    /// Like [`SkyNode::start`], but with an explicit cross-match engine
    /// (e.g. the zone-partitioned parallel engine).
    pub fn start_with_engine(
        net: &SimNetwork,
        host: impl Into<String>,
        info: ArchiveInfo,
        db: Database,
        engine: Arc<dyn CrossMatchEngine>,
    ) -> Arc<SkyNode> {
        let host = host.into();
        let node = Arc::new(SkyNode {
            info,
            host: host.clone(),
            db: Mutex::new(db),
            pending: Mutex::new(HashMap::new()),
            next_transfer: AtomicU64::new(1),
            exchange: Mutex::new(ExchangeState::new()),
            engine,
        });
        net.bind(host, node.clone());
        node
    }

    /// The installed cross-match engine's name.
    pub fn engine_name(&self) -> &str {
        self.engine.name()
    }

    /// The archive's survey constants.
    pub fn info(&self) -> &ArchiveInfo {
        &self.info
    }

    /// The node's network host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The node's SOAP endpoint URL.
    pub fn url(&self) -> Url {
        Url::new(self.host.clone(), "/soap")
    }

    /// Runs a closure against the archive database (tests, data loading,
    /// cache manipulation for experiments).
    pub fn with_db<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.db.lock())
    }

    /// Transactions staged by the data-exchange extension and still
    /// awaiting a coordinator decision.
    pub fn pending_exchange_txns(&self) -> Vec<u64> {
        self.exchange.lock().pending()
    }

    /// The WSDL document describing this node's services (§3.1).
    pub fn wsdl(&self) -> String {
        WsdlBuilder::new("SkyNode", self.url().to_string())
            .operation(
                Operation::new("Information")
                    .output("info", "xml")
                    .doc("Astronomy-specific constants: σ, primary table, HTM depth"),
            )
            .operation(
                Operation::new("Metadata")
                    .output("catalog", "xml")
                    .doc("Complete schema information for the Portal's catalog"),
            )
            .operation(
                Operation::new("Query")
                    .input("sql", "string")
                    .output("count", "long")
                    .output("rows", "table")
                    .doc("General-purpose single-archive queries (performance queries)"),
            )
            .operation(
                Operation::new("CrossMatch")
                    .input("plan", "xml")
                    .input("step", "long")
                    .output("partial", "table")
                    .output("stats", "xml")
                    .doc("One step of the federated cross-match chain"),
            )
            .operation(
                Operation::new("FetchChunk")
                    .input("transfer_id", "long")
                    .input("index", "long")
                    .output("chunk", "table")
                    .doc("Chunked-transfer continuation for oversized partial results"),
            )
            .to_xml()
    }

    fn handle_call(&self, net: &SimNetwork, call: RpcCall) -> Result<RpcResponse> {
        match call.method.as_str() {
            "Information" => Ok(RpcResponse::new("Information")
                .result("info", SoapValue::Xml(self.info.to_element()))),
            "Metadata" => {
                let catalog = self.db.lock().catalog();
                Ok(RpcResponse::new("Metadata")
                    .result("catalog", SoapValue::Xml(catalog_to_element(&catalog))))
            }
            "Query" => {
                let sql = call
                    .require("sql")?
                    .as_str()
                    .ok_or_else(|| FederationError::protocol("sql parameter must be a string"))?
                    .to_string();
                let query = parse_query(&sql).map_err(FederationError::Sql)?;
                let mut db = self.db.lock();
                match execute_local(&mut db, &self.info.name, &query)? {
                    LocalQueryResult::Count(n) => {
                        Ok(RpcResponse::new("Query").result("count", SoapValue::Int(n as i64)))
                    }
                    LocalQueryResult::Rows(rs) => Ok(RpcResponse::new("Query")
                        .result("rows", SoapValue::Table(rs.to_votable("rows")))),
                }
            }
            "CrossMatch" => self.handle_cross_match(net, &call),
            "FetchChunk" => self.handle_fetch_chunk(&call),
            // Data-exchange extension (§6): two-phase commit participant.
            "PrepareReceive" => {
                let txn = require_u64(&call, "txn")?;
                let dest_table = call
                    .require("dest_table")?
                    .as_str()
                    .ok_or_else(|| FederationError::protocol("dest_table must be a string"))?
                    .to_string();
                let schema = call
                    .require("schema")?
                    .as_xml()
                    .ok_or_else(|| FederationError::protocol("schema must be xml"))?
                    .clone();
                let rows = crate::result::ResultSet::from_votable(
                    call.require("rows")?
                        .as_table()
                        .ok_or_else(|| FederationError::protocol("rows must be a table"))?,
                )?;
                let mut db = self.db.lock();
                let staged =
                    self.exchange
                        .lock()
                        .prepare(&mut db, txn, &dest_table, &schema, &rows)?;
                Ok(RpcResponse::new("PrepareReceive")
                    .result("staged", SoapValue::Int(staged as i64)))
            }
            "CommitReceive" => {
                let txn = require_u64(&call, "txn")?;
                let mut db = self.db.lock();
                let published = self.exchange.lock().commit(&mut db, txn)?;
                Ok(RpcResponse::new("CommitReceive")
                    .result("published", SoapValue::Int(published as i64)))
            }
            "AbortReceive" => {
                let txn = require_u64(&call, "txn")?;
                let mut db = self.db.lock();
                self.exchange.lock().abort(&mut db, txn)?;
                Ok(RpcResponse::new("AbortReceive").result("aborted", SoapValue::Bool(true)))
            }
            other => Err(FederationError::protocol(format!(
                "unknown service {other}"
            ))),
        }
    }

    fn handle_cross_match(&self, net: &SimNetwork, call: &RpcCall) -> Result<RpcResponse> {
        let plan_el = call
            .require("plan")?
            .as_xml()
            .ok_or_else(|| FederationError::protocol("plan must be xml"))?;
        let plan = ExecutionPlan::from_element(plan_el)?;
        let step = call
            .require("step")?
            .as_i64()
            .ok_or_else(|| FederationError::protocol("step must be an integer"))?
            as usize;
        if step >= plan.steps.len() {
            return Err(FederationError::protocol(format!(
                "step {step} out of range for a {}-step plan",
                plan.steps.len()
            )));
        }
        // Autonomy check: this call must be addressed to us.
        if !plan.steps[step]
            .archive
            .eq_ignore_ascii_case(&self.info.name)
        {
            return Err(FederationError::protocol(format!(
                "plan step {step} addresses {}, but this node is {}",
                plan.steps[step].archive, self.info.name
            )));
        }

        // Daisy chain: obtain the partial results from the next step.
        let (incoming, mut stats_chain) = if step == plan.seed_index() {
            (None, StatsChain::new())
        } else {
            let next_url = plan.steps[step + 1].url.clone();
            let (set, chain) = invoke_cross_match(net, &self.host, &next_url, &plan, step + 1)?;
            (Some(set), chain)
        };

        // Run this node's stored-procedure step.
        let cfg = plan.step_config(step)?;
        let mut db = self.db.lock();
        let (mut set, stats) = match (&incoming, plan.steps[step].dropout) {
            (None, false) => self.engine.seed(&mut db, &cfg)?,
            (Some(inc), false) => self.engine.match_tuples(&mut db, &cfg, inc)?,
            (Some(inc), true) => self.engine.dropout(&mut db, &cfg, inc)?,
            (None, true) => {
                return Err(FederationError::protocol(
                    "a drop-out archive cannot be the seed of the chain",
                ))
            }
        };
        drop(db);
        // Residual clauses scheduled at this step.
        let residuals = plan.residuals(step)?;
        if !residuals.is_empty() {
            set = crate::xmatch::apply_residuals(set, &residuals)?;
        }
        stats_chain.push(plan.steps[step].alias.clone(), stats);

        self.encode_partial_response(&plan, set, stats_chain)
    }

    /// Encodes a partial set, chunking when the monolithic response would
    /// exceed the plan's message limit.
    fn encode_partial_response(
        &self,
        plan: &ExecutionPlan,
        set: PartialSet,
        stats_chain: StatsChain,
    ) -> Result<RpcResponse> {
        let limits = MessageLimits::tiny(plan.max_message_bytes);
        let table = set.to_votable();
        let monolithic = RpcResponse::new("CrossMatch")
            .result("partial", SoapValue::Table(table.clone()))
            .result("stats", SoapValue::Xml(stats_chain.to_element()));
        let encoded_len = monolithic.to_xml().len();
        if encoded_len <= plan.max_message_bytes {
            return Ok(monolithic);
        }
        if !plan.chunking {
            // The pre-workaround behaviour: the caller's parser would die.
            return Err(FederationError::Soap(
                skyquery_soap::SoapError::MessageTooLarge {
                    size: encoded_len,
                    limit: plan.max_message_bytes,
                },
            ));
        }
        let transfer_id = self.next_transfer.fetch_add(1, Ordering::Relaxed);
        let chunks = skyquery_soap::chunk::split_table(&table, limits, transfer_id)
            .map_err(FederationError::Soap)?;
        let total = chunks.len();
        self.pending.lock().insert(transfer_id, chunks);
        Ok(RpcResponse::new("CrossMatch")
            .result("chunked", SoapValue::Bool(true))
            .result("transfer_id", SoapValue::Int(transfer_id as i64))
            .result("chunks", SoapValue::Int(total as i64))
            .result("stats", SoapValue::Xml(stats_chain.to_element())))
    }

    fn handle_fetch_chunk(&self, call: &RpcCall) -> Result<RpcResponse> {
        let transfer_id = call
            .require("transfer_id")?
            .as_i64()
            .ok_or_else(|| FederationError::protocol("transfer_id must be an integer"))?
            as u64;
        let index = call
            .require("index")?
            .as_i64()
            .ok_or_else(|| FederationError::protocol("index must be an integer"))?
            as usize;
        let mut pending = self.pending.lock();
        let chunks = pending
            .get(&transfer_id)
            .ok_or_else(|| FederationError::protocol(format!("unknown transfer {transfer_id}")))?;
        let (header, table) = chunks
            .get(index)
            .cloned()
            .ok_or_else(|| FederationError::protocol(format!("no chunk {index}")))?;
        // Free the transfer once the last chunk has been served.
        if index + 1 == header.total {
            pending.remove(&transfer_id);
        }
        Ok(RpcResponse::new("FetchChunk")
            .result("chunk", SoapValue::Table(table))
            .result("index", SoapValue::Int(header.index as i64))
            .result("total", SoapValue::Int(header.total as i64))
            .result("transfer_id", SoapValue::Int(header.transfer_id as i64)))
    }
}

impl Endpoint for SkyNode {
    fn handle(&self, net: &SimNetwork, req: HttpRequest) -> HttpResponse {
        let body = match std::str::from_utf8(&req.body) {
            Ok(b) => b,
            Err(_) => {
                return HttpResponse::soap_fault(
                    skyquery_soap::SoapFault::client("request body is not UTF-8").to_xml(),
                )
            }
        };
        let call = match RpcCall::parse(body) {
            Ok(c) => c,
            Err(e) => {
                return HttpResponse::soap_fault(
                    skyquery_soap::SoapFault::client(e.to_string()).to_xml(),
                )
            }
        };
        match self.handle_call(net, call) {
            Ok(resp) => HttpResponse::ok(resp.to_xml()),
            Err(e) => HttpResponse::soap_fault(e.to_fault().to_xml()),
        }
    }
}

/// Decodes a required unsigned-integer parameter.
fn require_u64(call: &RpcCall, name: &str) -> Result<u64> {
    call.require(name)?
        .as_i64()
        .filter(|v| *v >= 0)
        .map(|v| v as u64)
        .ok_or_else(|| FederationError::protocol(format!("{name} must be a non-negative integer")))
}

/// Client side of the Cross match service: sends the call, handles the
/// chunked-transfer continuation, and decodes partial set plus stats.
/// Shared by SkyNodes (calling the next node) and the Portal (calling the
/// first).
pub fn invoke_cross_match(
    net: &SimNetwork,
    from_host: &str,
    url: &Url,
    plan: &ExecutionPlan,
    step: usize,
) -> Result<(PartialSet, StatsChain)> {
    let call = RpcCall::new("CrossMatch")
        .param("plan", SoapValue::Xml(plan.to_element()))
        .param("step", SoapValue::Int(step as i64));
    let resp = send_rpc(net, from_host, url, &call)?;
    let stats = StatsChain::from_element(
        resp.require("stats")?
            .as_xml()
            .ok_or_else(|| FederationError::protocol("stats must be xml"))?,
    )?;
    if let Some(SoapValue::Bool(true)) = resp.get("chunked") {
        let transfer_id = resp
            .require("transfer_id")?
            .as_i64()
            .ok_or_else(|| FederationError::protocol("transfer_id must be an integer"))?;
        let total = resp
            .require("chunks")?
            .as_i64()
            .ok_or_else(|| FederationError::protocol("chunks must be an integer"))?
            as usize;
        let mut reassembler: Option<Reassembler> = None;
        for index in 0..total {
            let fetch = RpcCall::new("FetchChunk")
                .param("transfer_id", SoapValue::Int(transfer_id))
                .param("index", SoapValue::Int(index as i64));
            let chunk_resp = send_rpc(net, from_host, url, &fetch)?;
            let header = ChunkHeader {
                index: chunk_resp
                    .require("index")?
                    .as_i64()
                    .ok_or_else(|| FederationError::protocol("chunk index"))?
                    as usize,
                total: chunk_resp
                    .require("total")?
                    .as_i64()
                    .ok_or_else(|| FederationError::protocol("chunk total"))?
                    as usize,
                transfer_id: transfer_id as u64,
            };
            let table = chunk_resp
                .require("chunk")?
                .as_table()
                .ok_or_else(|| FederationError::protocol("chunk must be a table"))?
                .clone();
            let r = reassembler.get_or_insert_with(|| Reassembler::new(header));
            r.accept(header, table).map_err(FederationError::Soap)?;
        }
        let table = reassembler
            .ok_or_else(|| FederationError::protocol("chunked transfer with zero chunks"))?
            .finish()
            .map_err(FederationError::Soap)?;
        return Ok((PartialSet::from_votable(&table)?, stats));
    }
    let table = resp
        .require("partial")?
        .as_table()
        .ok_or_else(|| FederationError::protocol("partial must be a table"))?;
    Ok((PartialSet::from_votable(table)?, stats))
}

/// Sends one RPC and decodes the response, surfacing faults as errors.
pub fn send_rpc(
    net: &SimNetwork,
    from_host: &str,
    url: &Url,
    call: &RpcCall,
) -> Result<RpcResponse> {
    let req = HttpRequest::soap_post(url.path.clone(), &call.soap_action(), call.to_xml());
    let resp = net
        .send(from_host, url, req)
        .map_err(FederationError::Net)?;
    let body = std::str::from_utf8(&resp.body)
        .map_err(|_| FederationError::protocol("response body is not UTF-8"))?;
    match RpcResponse::parse(body).map_err(FederationError::Soap)? {
        Ok(r) => Ok(r),
        Err(fault) => Err(FederationError::Fault(fault)),
    }
}
