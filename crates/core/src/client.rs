//! The Client: "web interfaces (or similar applications) that accept user
//! queries and pass them on to the Portal" (§5.1). This facade speaks
//! SOAP to the Portal's SkyQuery service and decodes the result table and
//! execution trace.

use skyquery_net::{SimNetwork, Url};
use skyquery_soap::{RpcCall, SoapValue};

use crate::error::{FederationError, Result};
use crate::result::ResultSet;
use crate::skynode::send_rpc;
use crate::trace::{ExecutionTrace, TraceEvent};

/// A client of the federation.
pub struct Client {
    net: SimNetwork,
    host: String,
    portal: Url,
}

impl Client {
    /// A client named `host` (for transmission accounting) talking to the
    /// Portal at `portal`.
    pub fn new(net: &SimNetwork, host: impl Into<String>, portal: Url) -> Client {
        Client {
            net: net.clone(),
            host: host.into(),
            portal,
        }
    }

    /// Submits a cross-match query, returning the result set and the
    /// server-side execution trace.
    pub fn query(&self, sql: &str) -> Result<(ResultSet, ExecutionTrace)> {
        let resp = send_rpc(
            &self.net,
            &self.host,
            &self.portal,
            &RpcCall::new("SkyQuery").param("sql", SoapValue::Str(sql.to_string())),
        )?;
        let table = resp
            .require("result")?
            .as_table()
            .ok_or_else(|| FederationError::protocol("result must be a table"))?;
        let mut result = ResultSet::from_votable(table)?;
        // Partial-result honesty: the Portal stamps a degraded answer on
        // the response header. Older portals omit the fields — absent
        // means complete, matching their behaviour.
        if let Some(v) = resp.get("degraded") {
            result.degraded = v.as_bool().unwrap_or(false);
        }
        if let Some(SoapValue::Str(dropped)) = resp.get("dropped") {
            if !dropped.is_empty() {
                result.dropped_archives = dropped.split(',').map(str::to_string).collect();
            }
        }
        let mut trace = ExecutionTrace::new();
        if let Some(SoapValue::Xml(t)) = resp.get("trace") {
            for ev in t.children_named("Event") {
                // Re-create events preserving the server's sequence and
                // its measured step durations.
                let actor = ev.attr("actor").unwrap_or("?").to_string();
                let action = ev.attr("action").unwrap_or("?").to_string();
                let elapsed = ev
                    .attr("elapsed_us")
                    .and_then(|v| v.parse().ok())
                    .map(std::time::Duration::from_micros)
                    .unwrap_or_default();
                trace.push_with_elapsed(actor, action, ev.text.clone(), elapsed);
            }
        }
        Ok((result, trace))
    }

    /// The most recent trace events in rendered form (convenience for
    /// examples).
    pub fn render_trace(events: &[TraceEvent]) -> String {
        let mut out = String::new();
        for e in events {
            out.push_str(&format!(
                "{:>2}. [{}] {}: {} (+{})\n",
                e.seq,
                e.actor,
                e.action,
                e.detail,
                crate::trace::format_elapsed(e.elapsed)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_trace_formats_lines() {
        let mut t = ExecutionTrace::new();
        t.push("Client", "submit", "q");
        let text = Client::render_trace(t.events());
        assert!(text.contains("[Client] submit: q"));
    }
}
