//! Result sets crossing the wire: typed rows ↔ VOTable payloads.

use skyquery_storage::{DataType, Row, Value};
use skyquery_xml::votable::format_f64;
use skyquery_xml::{VoColumn, VoTable, VoType};

use crate::error::{FederationError, Result};

/// One column of a result set: a (possibly qualified) name plus type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultColumn {
    /// Output column name (often qualified, `alias.column`).
    pub name: String,
    /// Value type.
    pub dtype: DataType,
}

impl ResultColumn {
    /// A named, typed output column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> ResultColumn {
        ResultColumn {
            name: name.into(),
            dtype,
        }
    }
}

/// A materialized query result.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Output columns.
    pub columns: Vec<ResultColumn>,
    /// Result rows, each matching `columns` in arity and type.
    pub rows: Vec<Row>,
    /// Partial-result honesty: `true` when the answer was computed
    /// without one or more unreachable archives (or shards of one) and
    /// is therefore complete-minus-those-filters, not wrong. Stamped by
    /// the Portal at relay time; `false` for a complete answer.
    pub degraded: bool,
    /// What a degraded answer dropped: archive names for wholly-skipped
    /// drop-out steps, `archive@host` for shards lost mid-scatter.
    /// Empty unless `degraded`.
    pub dropped_archives: Vec<String>,
}

/// Equality compares the data (columns and rows) only: the degradation
/// header is delivery metadata, and byte-identity checks between a
/// degraded answer and its healthy reference run must compare payloads.
impl PartialEq for ResultSet {
    fn eq(&self, other: &ResultSet) -> bool {
        self.columns == other.columns && self.rows == other.rows
    }
}

impl ResultSet {
    /// An empty result set with the given columns.
    pub fn new(columns: Vec<ResultColumn>) -> ResultSet {
        ResultSet {
            columns,
            rows: Vec::new(),
            degraded: false,
            dropped_archives: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Index of an output column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Value at `(row, column name)`.
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let ci = self.column_index(column)?;
        self.rows.get(row).map(|r| &r[ci])
    }

    /// Appends a row after arity checking.
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(FederationError::protocol(format!(
                "result row arity {} != {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Encodes into the VOTable wire payload.
    pub fn to_votable(&self, name: &str) -> VoTable {
        let cols = self
            .columns
            .iter()
            .map(|c| VoColumn::new(c.name.clone(), dtype_to_votype(c.dtype)))
            .collect();
        let mut t = VoTable::new(name, cols);
        for row in &self.rows {
            let cells = row.iter().map(value_to_cell).collect();
            t.push_row(cells)
                .expect("rows conform to columns by construction");
        }
        t
    }

    /// Decodes from the VOTable wire payload.
    pub fn from_votable(t: &VoTable) -> Result<ResultSet> {
        let columns: Vec<ResultColumn> = t
            .columns
            .iter()
            .map(|c| ResultColumn::new(c.name.clone(), votype_to_dtype(c.vtype)))
            .collect();
        let mut rs = ResultSet::new(columns);
        for row in &t.rows {
            let values: Result<Row> = row
                .iter()
                .zip(&t.columns)
                .map(|(cell, col)| cell_to_value(cell.as_deref(), col.vtype))
                .collect();
            rs.push_row(values?)?;
        }
        Ok(rs)
    }

    /// Renders an ASCII table (examples and traces).
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.name.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c.name, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

fn dtype_to_votype(d: DataType) -> VoType {
    match d {
        DataType::Bool => VoType::Bool,
        DataType::Int => VoType::Int,
        DataType::Float => VoType::Float,
        DataType::Text => VoType::Text,
        DataType::Id => VoType::Id,
    }
}

fn votype_to_dtype(v: VoType) -> DataType {
    match v {
        VoType::Bool => DataType::Bool,
        VoType::Int => DataType::Int,
        VoType::Float => DataType::Float,
        VoType::Text => DataType::Text,
        VoType::Id => DataType::Id,
    }
}

fn value_to_cell(v: &Value) -> Option<String> {
    match v {
        Value::Null => None,
        Value::Bool(b) => Some(b.to_string()),
        Value::Int(i) => Some(i.to_string()),
        Value::Float(x) => Some(format_f64(*x)),
        Value::Text(s) => Some(s.clone()),
        Value::Id(u) => Some(u.to_string()),
    }
}

fn cell_to_value(cell: Option<&str>, ty: VoType) -> Result<Value> {
    let Some(text) = cell else {
        return Ok(Value::Null);
    };
    let bad = |what: &str| FederationError::protocol(format!("cell {text:?} is not a {what}"));
    Ok(match ty {
        VoType::Bool => Value::Bool(text.parse().map_err(|_| bad("boolean"))?),
        VoType::Int => Value::Int(text.parse().map_err(|_| bad("long"))?),
        VoType::Float => Value::Float(text.parse().map_err(|_| bad("double"))?),
        VoType::Text => Value::Text(text.to_string()),
        VoType::Id => Value::Id(text.parse().map_err(|_| bad("unsignedLong"))?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> ResultSet {
        let mut rs = ResultSet::new(vec![
            ResultColumn::new("O.object_id", DataType::Id),
            ResultColumn::new("O.ra", DataType::Float),
            ResultColumn::new("T.type", DataType::Text),
            ResultColumn::new("match", DataType::Bool),
        ]);
        rs.push_row(vec![
            Value::Id(42),
            Value::Float(185.0001234),
            Value::Text("GALAXY".into()),
            Value::Bool(true),
        ])
        .unwrap();
        rs.push_row(vec![
            Value::Id(43),
            Value::Float(-0.5),
            Value::Null,
            Value::Bool(false),
        ])
        .unwrap();
        rs
    }

    #[test]
    fn votable_roundtrip() {
        let rs = demo();
        let t = rs.to_votable("result");
        let back = ResultSet::from_votable(&t).unwrap();
        assert_eq!(back, rs);
    }

    #[test]
    fn votable_roundtrip_through_xml() {
        let rs = demo();
        let xml = rs.to_votable("r").to_xml();
        let back = ResultSet::from_votable(&VoTable::parse(&xml).unwrap()).unwrap();
        assert_eq!(back, rs);
    }

    #[test]
    fn arity_enforced() {
        let mut rs = ResultSet::new(vec![ResultColumn::new("a", DataType::Int)]);
        assert!(rs.push_row(vec![]).is_err());
        assert!(rs.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn value_lookup() {
        let rs = demo();
        assert_eq!(rs.value(0, "O.object_id"), Some(&Value::Id(42)));
        assert_eq!(rs.value(1, "T.type"), Some(&Value::Null));
        assert_eq!(rs.value(0, "missing"), None);
        assert_eq!(rs.value(9, "O.ra"), None);
    }

    #[test]
    fn ascii_rendering() {
        let text = demo().to_ascii();
        assert!(text.contains("O.object_id"));
        assert!(text.contains("GALAXY"));
        assert!(text.contains("NULL"));
    }

    #[test]
    fn bad_cells_rejected() {
        let mut t = VoTable::new("x", vec![VoColumn::new("n", VoType::Int)]);
        t.push_row(vec![Some("5".into())]).unwrap();
        // Mutate the cell behind validation to simulate a corrupt payload.
        t.rows[0][0] = Some("five".into());
        assert!(ResultSet::from_votable(&t).is_err());
    }
}
