//! Scatter-gather merge discipline for sharded archives.
//!
//! When one logical archive is split across several SkyNodes by
//! declination-zone range ([`crate::meta::ZoneExtent`]), the Portal
//! scatters each chain step to every owning shard and gathers the
//! partial sets back into one set that is **byte-identical** to what the
//! single-node chain would have produced. Two synthetic columns make the
//! gather deterministic with zero changes to the match kernels:
//!
//! * [`SRC_COL`] — appended by the Portal to the *input* set before
//!   scattering; each tuple carries its index in the merged input. The
//!   kernels copy incoming values untouched, so every output tuple still
//!   knows which input tuple spawned it.
//! * [`RANK_COL`] — a physical column of every shard table recording the
//!   row's insertion rank in the unsharded archive. Carried (qualified
//!   as `alias.__rank`) through scattered seed/match steps, it recovers
//!   the single-node row-id order within each input group.
//!
//! The single-node kernels emit matches grouped by incoming tuple, and
//! within a group in table row-id order; a shard's local row-id order is
//! the global rank order restricted to that shard. Sorting the
//! concatenated shard outputs by `(__src, __rank)` therefore reproduces
//! the single-node output exactly, after which both synthetic columns
//! are stripped. Drop-out steps filter instead of extend: a tuple
//! survives the merged drop-out iff it survived on **every** shard
//! (no shard found a counterpart and no shard's residual rejected it).

use std::collections::HashSet;

use skyquery_storage::{DataType, Value};

use crate::error::{FederationError, Result};
use crate::result::ResultColumn;
use crate::xmatch::{PartialSet, PartialTuple, StepStats};

/// Synthetic column the Portal appends to the input set before
/// scattering a step: each tuple's index in the merged input set.
pub const SRC_COL: &str = "__src";

/// Synthetic per-row shard-table column: the row's insertion rank in the
/// unsharded archive. Qualified as `alias.__rank` when carried.
pub const RANK_COL: &str = "__rank";

/// The qualified name under which `alias`'s rank column travels in a
/// partial set.
pub fn qualified_rank(alias: &str) -> String {
    format!("{alias}.{RANK_COL}")
}

/// Returns a copy of `set` with the [`SRC_COL`] column appended, tagging
/// every tuple with its current index.
pub fn tag_with_src(set: &PartialSet) -> PartialSet {
    let mut columns = set.columns.clone();
    columns.push(ResultColumn::new(SRC_COL, DataType::Id));
    let tuples = set
        .tuples
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut values = t.values.clone();
            values.push(Value::Id(i as u64));
            PartialTuple {
                state: t.state,
                values,
            }
        })
        .collect();
    PartialSet { columns, tuples }
}

fn column_index(set: &PartialSet, name: &str) -> Result<usize> {
    set.columns
        .iter()
        .position(|c| c.name == name)
        .ok_or_else(|| {
            FederationError::protocol(format!("scattered partial set missing column {name}"))
        })
}

fn strip_column(set: &mut PartialSet, idx: usize) {
    set.columns.remove(idx);
    for t in &mut set.tuples {
        t.values.remove(idx);
    }
}

fn id_at(t: &PartialTuple, idx: usize) -> Result<u64> {
    match t.values.get(idx) {
        Some(Value::Id(v)) => Ok(*v),
        other => Err(FederationError::protocol(format!(
            "merge key column holds {other:?}, expected an Id"
        ))),
    }
}

fn check_parts(parts: &[(PartialSet, StepStats)]) -> Result<&PartialSet> {
    let (first, _) = parts
        .first()
        .ok_or_else(|| FederationError::protocol("scatter gathered no partial sets"))?;
    for (set, _) in parts {
        if set.columns != first.columns {
            return Err(FederationError::protocol(
                "shards returned partial sets with differing schemas",
            ));
        }
    }
    Ok(first)
}

/// Merges the shard outputs of a scattered **seed** step: concatenates,
/// sorts by the seed table's rank, strips the rank column. Stats fields
/// all sum — a seed step has no input tuples and every shard row is
/// examined exactly once somewhere.
pub fn merge_seed(
    parts: &[(PartialSet, StepStats)],
    alias: &str,
) -> Result<(PartialSet, StepStats)> {
    let first = check_parts(parts)?;
    let rank_idx = column_index(first, &qualified_rank(alias))?;
    let mut stats = StepStats::default();
    let mut keyed = Vec::new();
    for (set, st) in parts {
        stats.tuples_in += st.tuples_in;
        stats.candidates_probed += st.candidates_probed;
        stats.candidates_examined += st.candidates_examined;
        stats.chi2_accepted += st.chi2_accepted;
        stats.scratch_reuse += st.scratch_reuse;
        stats.tile_builds += st.tile_builds;
        stats.tile_decodes += st.tile_decodes;
        stats.tile_hits += st.tile_hits;
        stats.shards_pruned += st.shards_pruned;
        stats.failovers += st.failovers;
        stats.hedges += st.hedges;
        stats.hedge_wins += st.hedge_wins;
        for t in &set.tuples {
            keyed.push((id_at(t, rank_idx)?, t.clone()));
        }
    }
    keyed.sort_by_key(|(rank, _)| *rank);
    let mut merged = PartialSet {
        columns: first.columns.clone(),
        tuples: keyed.into_iter().map(|(_, t)| t).collect(),
    };
    strip_column(&mut merged, rank_idx);
    stats.tuples_out = merged.tuples.len();
    Ok((merged, stats))
}

/// Merges the shard outputs of a scattered **match** step: concatenates,
/// stable-sorts by `(input index, matched row's rank)`, strips both
/// synthetic columns. Probe-side stats sum across shards (they partition
/// the probed table); `tuples_in` is the common input size.
pub fn merge_match(
    parts: &[(PartialSet, StepStats)],
    alias: &str,
) -> Result<(PartialSet, StepStats)> {
    let first = check_parts(parts)?;
    let src_idx = column_index(first, SRC_COL)?;
    let rank_idx = column_index(first, &qualified_rank(alias))?;
    let mut stats = StepStats {
        tuples_in: parts[0].1.tuples_in,
        ..StepStats::default()
    };
    let mut keyed = Vec::new();
    for (set, st) in parts {
        stats.candidates_probed += st.candidates_probed;
        stats.candidates_examined += st.candidates_examined;
        stats.chi2_accepted += st.chi2_accepted;
        stats.scratch_reuse += st.scratch_reuse;
        stats.tile_builds += st.tile_builds;
        stats.tile_decodes += st.tile_decodes;
        stats.tile_hits += st.tile_hits;
        stats.shards_pruned += st.shards_pruned;
        stats.failovers += st.failovers;
        stats.hedges += st.hedges;
        stats.hedge_wins += st.hedge_wins;
        for t in &set.tuples {
            keyed.push(((id_at(t, src_idx)?, id_at(t, rank_idx)?), t.clone()));
        }
    }
    keyed.sort_by_key(|(key, _)| *key);
    let mut merged = PartialSet {
        columns: first.columns.clone(),
        tuples: keyed.into_iter().map(|(_, t)| t).collect(),
    };
    let (hi, lo) = if src_idx > rank_idx {
        (src_idx, rank_idx)
    } else {
        (rank_idx, src_idx)
    };
    strip_column(&mut merged, hi);
    strip_column(&mut merged, lo);
    stats.tuples_out = merged.tuples.len();
    Ok((merged, stats))
}

/// Merges the shard outputs of a scattered **drop-out** step: a tuple
/// survives iff its input index appears in *every* participating shard's
/// output (no shard found a counterpart; no shard's residual rejected
/// it). Output order is the input order, recovered from the first
/// shard's output, which the drop-out kernel keeps input-ordered.
///
/// `parts` may be a subset of the shard group: the Checkpointed driver
/// degrades a partially failed drop-out step by intersecting over the
/// shards that answered, mirroring the single-node degraded skip.
pub fn merge_dropout(parts: &[(PartialSet, StepStats)]) -> Result<(PartialSet, StepStats)> {
    let first = check_parts(parts)?;
    let src_idx = column_index(first, SRC_COL)?;
    let n = parts[0].1.tuples_in;
    // Degenerate tuples are dropped identically by every shard (the
    // degeneracy is a property of the tuple, not of shard data), so the
    // first shard's ledger recovers their count.
    let degen = n
        .checked_sub(parts[0].1.chi2_accepted + parts[0].1.tuples_out)
        .ok_or_else(|| FederationError::protocol("drop-out shard stats are inconsistent"))?;
    let mut stats = StepStats {
        tuples_in: n,
        ..StepStats::default()
    };
    let mut survivors: Option<HashSet<u64>> = None;
    for (set, st) in parts {
        if st.tuples_in != n {
            return Err(FederationError::protocol(
                "drop-out shards disagree on input size",
            ));
        }
        stats.candidates_probed += st.candidates_probed;
        stats.candidates_examined += st.candidates_examined;
        stats.scratch_reuse += st.scratch_reuse;
        stats.tile_builds += st.tile_builds;
        stats.tile_decodes += st.tile_decodes;
        stats.tile_hits += st.tile_hits;
        stats.shards_pruned += st.shards_pruned;
        stats.failovers += st.failovers;
        stats.hedges += st.hedges;
        stats.hedge_wins += st.hedge_wins;
        let mut ids = HashSet::with_capacity(set.tuples.len());
        for t in &set.tuples {
            ids.insert(id_at(t, src_idx)?);
        }
        survivors = Some(match survivors {
            None => ids,
            Some(s) => s.intersection(&ids).copied().collect(),
        });
    }
    let survivors = survivors.expect("check_parts guarantees at least one part");
    let mut tuples = Vec::new();
    for t in &first.tuples {
        if survivors.contains(&id_at(t, src_idx)?) {
            tuples.push(t.clone());
        }
    }
    let mut merged = PartialSet {
        columns: first.columns.clone(),
        tuples,
    };
    strip_column(&mut merged, src_idx);
    stats.tuples_out = merged.tuples.len();
    stats.chi2_accepted = n - degen - stats.tuples_out;
    Ok((merged, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmatch::TupleState;

    fn state(tag: f64) -> TupleState {
        TupleState {
            a: tag,
            ax: 1.0,
            ay: 0.0,
            az: 0.0,
        }
    }

    fn set(columns: &[(&str, DataType)], rows: Vec<Vec<Value>>) -> PartialSet {
        PartialSet {
            columns: columns
                .iter()
                .map(|(n, d)| ResultColumn::new(*n, *d))
                .collect(),
            tuples: rows
                .into_iter()
                .enumerate()
                .map(|(i, values)| PartialTuple {
                    state: state(i as f64),
                    values,
                })
                .collect(),
        }
    }

    #[test]
    fn src_tagging_appends_index_column() {
        let s = set(
            &[("O.object_id", DataType::Id)],
            vec![vec![Value::Id(7)], vec![Value::Id(9)]],
        );
        let tagged = tag_with_src(&s);
        assert_eq!(tagged.columns.last().unwrap().name, SRC_COL);
        assert_eq!(tagged.tuples[0].values, vec![Value::Id(7), Value::Id(0)]);
        assert_eq!(tagged.tuples[1].values, vec![Value::Id(9), Value::Id(1)]);
        // The original carried values and state are untouched.
        assert_eq!(tagged.tuples[1].state, s.tuples[1].state);
    }

    #[test]
    fn seed_merge_restores_rank_order_and_strips_rank() {
        let cols: &[(&str, DataType)] =
            &[("S.object_id", DataType::Id), ("S.__rank", DataType::Id)];
        let shard0 = set(
            cols,
            vec![
                vec![Value::Id(100), Value::Id(0)],
                vec![Value::Id(102), Value::Id(3)],
            ],
        );
        let shard1 = set(
            cols,
            vec![
                vec![Value::Id(101), Value::Id(1)],
                vec![Value::Id(103), Value::Id(2)],
            ],
        );
        let st = |out: usize| StepStats {
            tuples_out: out,
            candidates_examined: out,
            ..StepStats::default()
        };
        let (merged, stats) = merge_seed(&[(shard0, st(2)), (shard1, st(2))], "S").unwrap();
        assert_eq!(merged.columns.len(), 1);
        let ids: Vec<_> = merged.tuples.iter().map(|t| t.values[0].clone()).collect();
        assert_eq!(
            ids,
            vec![
                Value::Id(100),
                Value::Id(101),
                Value::Id(103),
                Value::Id(102)
            ]
        );
        assert_eq!(stats.tuples_out, 4);
        assert_eq!(stats.candidates_examined, 4);
    }

    #[test]
    fn match_merge_orders_by_src_then_rank() {
        let cols: &[(&str, DataType)] = &[
            ("O.object_id", DataType::Id),
            (SRC_COL, DataType::Id),
            ("T.__rank", DataType::Id),
        ];
        // Input tuple 0 matched rows rank 5 (shard1) and rank 2 (shard0);
        // input tuple 1 matched rank 4 (shard0) only.
        let shard0 = set(
            cols,
            vec![
                vec![Value::Id(10), Value::Id(0), Value::Id(2)],
                vec![Value::Id(11), Value::Id(1), Value::Id(4)],
            ],
        );
        let shard1 = set(cols, vec![vec![Value::Id(10), Value::Id(0), Value::Id(5)]]);
        let st = StepStats {
            tuples_in: 2,
            candidates_probed: 3,
            ..StepStats::default()
        };
        let (merged, stats) = merge_match(&[(shard0, st), (shard1, st)], "T").unwrap();
        assert_eq!(merged.columns.len(), 1);
        let ids: Vec<_> = merged.tuples.iter().map(|t| t.values[0].clone()).collect();
        assert_eq!(ids, vec![Value::Id(10), Value::Id(10), Value::Id(11)]);
        // (src 0, rank 2) sorts before (src 0, rank 5).
        assert_eq!(merged.tuples[0].state, state(0.0));
        assert_eq!(merged.tuples[1].state, state(0.0));
        assert_eq!(stats.tuples_in, 2);
        assert_eq!(stats.candidates_probed, 6);
        assert_eq!(stats.tuples_out, 3);
    }

    #[test]
    fn dropout_merge_intersects_survivors() {
        let cols: &[(&str, DataType)] = &[("O.object_id", DataType::Id), (SRC_COL, DataType::Id)];
        // 4 inputs. Shard0 found counterparts for src 1; shard1 for src 2.
        // Survivors of the merged drop-out: src 0 and 3.
        let shard0 = set(
            cols,
            vec![
                vec![Value::Id(10), Value::Id(0)],
                vec![Value::Id(12), Value::Id(2)],
                vec![Value::Id(13), Value::Id(3)],
            ],
        );
        let shard1 = set(
            cols,
            vec![
                vec![Value::Id(10), Value::Id(0)],
                vec![Value::Id(11), Value::Id(1)],
                vec![Value::Id(13), Value::Id(3)],
            ],
        );
        let st = |found: usize| StepStats {
            tuples_in: 4,
            chi2_accepted: found,
            tuples_out: 3,
            ..StepStats::default()
        };
        let (merged, stats) = merge_dropout(&[(shard0, st(1)), (shard1, st(1))]).unwrap();
        assert_eq!(merged.columns.len(), 1);
        let ids: Vec<_> = merged.tuples.iter().map(|t| t.values[0].clone()).collect();
        assert_eq!(ids, vec![Value::Id(10), Value::Id(13)]);
        assert_eq!(stats.tuples_in, 4);
        assert_eq!(stats.tuples_out, 2);
        // No degenerate inputs: everything not surviving had a counterpart.
        assert_eq!(stats.chi2_accepted, 2);
    }

    #[test]
    fn dropout_merge_accounts_for_degenerate_inputs() {
        let cols: &[(&str, DataType)] = &[(SRC_COL, DataType::Id)];
        // 5 inputs, 1 degenerate (dropped on every shard without a
        // counterpart); shard0 found 1 counterpart, shard1 found none.
        let shard0 = set(
            cols,
            vec![vec![Value::Id(0)], vec![Value::Id(2)], vec![Value::Id(3)]],
        );
        let shard1 = set(
            cols,
            vec![
                vec![Value::Id(0)],
                vec![Value::Id(1)],
                vec![Value::Id(2)],
                vec![Value::Id(3)],
            ],
        );
        let st = |found: usize, out: usize| StepStats {
            tuples_in: 5,
            chi2_accepted: found,
            tuples_out: out,
            ..StepStats::default()
        };
        let (merged, stats) = merge_dropout(&[(shard0, st(1, 3)), (shard1, st(0, 4))]).unwrap();
        assert_eq!(merged.tuples.len(), 3);
        assert_eq!(stats.chi2_accepted, 1);
        assert_eq!(stats.tuples_out, 3);
    }

    #[test]
    fn merges_reject_inconsistent_parts() {
        assert!(merge_dropout(&[]).is_err());
        let a = set(&[(SRC_COL, DataType::Id)], vec![vec![Value::Id(0)]]);
        let b = set(&[("other", DataType::Id)], vec![vec![Value::Id(0)]]);
        let st = StepStats {
            tuples_in: 1,
            tuples_out: 1,
            ..StepStats::default()
        };
        assert!(merge_dropout(&[(a.clone(), st), (b, st)]).is_err());
        // A non-Id merge key is a protocol error, not a panic.
        let bad = set(&[(SRC_COL, DataType::Id)], vec![vec![Value::Float(1.0)]]);
        assert!(merge_dropout(&[(bad, st)]).is_err());
        // Missing the rank column.
        assert!(merge_seed(&[(a, st)], "S").is_err());
    }
}
