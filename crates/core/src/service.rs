//! Generic SOAPAction service-method registry.
//!
//! Both the SkyNode wrapper and the job service expose a table of SOAP
//! methods where a single registry entry supplies the method name, its
//! WSDL [`Operation`], and the handler dispatched for it. Keeping the
//! three together means a method cannot be served without being described
//! in the service's WSDL (or vice versa) — the §3.1 discipline that
//! "WSDL consists of two distinct parts" stays mechanically enforced.

use skyquery_net::SimNetwork;
use skyquery_soap::{Operation, RpcCall, RpcResponse, WsdlBuilder};

use crate::error::{FederationError, Result};

/// One entry in a SOAPAction dispatch table for a service of type `T`:
/// the method name, its WSDL operation, and its handler.
pub struct ServiceMethod<T: ?Sized> {
    /// The SOAPAction method name this entry answers.
    pub name: &'static str,
    /// Produces the WSDL operation describing the method.
    pub operation: fn() -> Operation,
    /// Invoked when a call names this method.
    pub handler: fn(&T, &SimNetwork, &RpcCall) -> Result<RpcResponse>,
}

/// Dispatches `call` through `services`, answering a protocol error for
/// a method the registry does not list.
pub fn dispatch<T: ?Sized>(
    services: &[ServiceMethod<T>],
    target: &T,
    net: &SimNetwork,
    call: &RpcCall,
) -> Result<RpcResponse> {
    match services.iter().find(|s| s.name == call.method) {
        Some(service) => (service.handler)(target, net, call),
        None => Err(FederationError::protocol(format!(
            "unknown service {}",
            call.method
        ))),
    }
}

/// Every method name in `services`, in registry (WSDL) order.
pub fn method_names<T: ?Sized>(services: &[ServiceMethod<T>]) -> Vec<&'static str> {
    services.iter().map(|s| s.name).collect()
}

/// Generates the WSDL document for `service` bound at `endpoint` from
/// the same registry that dispatches its calls.
pub fn wsdl<T: ?Sized>(services: &[ServiceMethod<T>], service: &str, endpoint: &str) -> String {
    let mut builder = WsdlBuilder::new(service, endpoint);
    for s in services {
        builder = builder.operation((s.operation)());
    }
    builder.to_xml()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyquery_soap::SoapValue;

    struct Echo;

    const METHODS: &[ServiceMethod<Echo>] = &[ServiceMethod {
        name: "Ping",
        operation: || Operation::new("Ping").output("pong", "boolean"),
        handler: |_echo, _net, _call| {
            Ok(RpcResponse::new("Ping").result("pong", SoapValue::Bool(true)))
        },
    }];

    #[test]
    fn dispatch_and_describe() {
        let net = SimNetwork::new();
        let ok = dispatch(METHODS, &Echo, &net, &RpcCall::new("Ping")).unwrap();
        assert_eq!(ok.method, "Ping");
        let err = dispatch(METHODS, &Echo, &net, &RpcCall::new("Nope")).unwrap_err();
        assert!(err.to_string().contains("unknown service"));
        assert_eq!(method_names(METHODS), vec!["Ping"]);
        let doc = wsdl(METHODS, "Echo", "http://echo.example.org/soap");
        assert!(doc.contains("Ping"));
        assert!(doc.contains("http://echo.example.org/soap"));
    }
}
