//! Single-archive query execution — the engine behind the Query service.
//!
//! The Query service is "a general-purpose database querying service"
//! (§5.1); in the deployed federation it primarily answers the Portal's
//! count-star performance queries. This module executes a parsed dialect
//! query whose FROM list names exactly one table of the local archive:
//! the AREA conjunct becomes an HTM range search, remaining conjuncts a
//! predicate filter, and the SELECT list either `count(*)` or a
//! projection.

use skyquery_sql::ast::{AggFunc, OrderKey, SortDirection};
use skyquery_sql::{Expr, Query, RegionSpec, RowBindings, SelectItem};
use skyquery_storage::{Database, ScanOptions, Value};

use crate::error::{FederationError, Result};
use crate::region::Region;
use crate::result::{ResultColumn, ResultSet};

/// The outcome of a local query: a bare count or a row set.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalQueryResult {
    /// A bare `count(*)` answer (the performance-query wire shape).
    Count(u64),
    /// A materialized row set.
    Rows(ResultSet),
}

/// Executes a single-archive query against the local database.
///
/// `archive_name` is this node's archive name; the query's FROM entry
/// must reference it (autonomy check: a node only answers for itself).
pub fn execute_local(
    db: &mut Database,
    archive_name: &str,
    query: &Query,
) -> Result<LocalQueryResult> {
    if query.from.len() != 1 {
        return Err(FederationError::protocol(
            "the Query service executes single-table queries only",
        ));
    }
    let table_ref = &query.from[0];
    if !table_ref.archive.eq_ignore_ascii_case(archive_name) {
        return Err(FederationError::protocol(format!(
            "query addresses archive {}, but this node is {archive_name}",
            table_ref.archive
        )));
    }
    let table = table_ref.table.clone();
    let alias = table_ref.alias.clone();

    // Split WHERE into the spatial conjunct and ordinary predicates.
    let mut region: Option<Region> = None;
    let mut predicates: Vec<Expr> = Vec::new();
    if let Some(w) = &query.where_clause {
        for c in w.conjuncts() {
            match c {
                Expr::Area(a) => {
                    let r = Region::from_spec(&RegionSpec::Circle(*a))?;
                    if region.replace(r).is_some() {
                        return Err(FederationError::protocol(
                            "more than one AREA/POLYGON clause",
                        ));
                    }
                }
                Expr::Polygon(p) => {
                    let r = Region::from_spec(&RegionSpec::Polygon(p.clone()))?;
                    if region.replace(r).is_some() {
                        return Err(FederationError::protocol(
                            "more than one AREA/POLYGON clause",
                        ));
                    }
                }
                Expr::XMatch(_) => {
                    return Err(FederationError::protocol(
                        "XMATCH cannot run at a single archive; submit it to the Portal",
                    ))
                }
                other => {
                    if other.contains_spatial() {
                        return Err(FederationError::protocol(
                            "AREA must be a top-level conjunct",
                        ));
                    }
                    predicates.push(other.clone());
                }
            }
        }
    }

    // Candidate rows: region search when a spatial clause is present;
    // else an equality-predicate B-tree probe when one is indexed; else a
    // full scan.
    let row_ids: Vec<usize> = match &region {
        Some(region) => {
            db.region_search(&table, &region.as_convex_region(), ScanOptions::default())?
        }
        None => match indexed_equality(db, &table, &alias, &predicates) {
            Some((column, value)) => {
                let mut ids = db.lookup_eq(&table, &column, &value, ScanOptions::default())?;
                ids.sort_unstable();
                ids
            }
            None => db.scan_filter(&table, ScanOptions::default(), |_, _| true)?,
        },
    };

    let schema = db.schema(&table)?.clone();
    let mut surviving: Vec<usize> = Vec::new();
    'rows: for rid in row_ids {
        let row = db.table(&table)?.row(rid).expect("row exists");
        for p in &predicates {
            let b = RowBindings {
                alias: &alias,
                schema: &schema,
                row,
            };
            if !p.eval_predicate(&b).map_err(FederationError::Sql)? {
                continue 'rows;
            }
        }
        surviving.push(rid);
    }

    // Aggregate mode when any select item aggregates or GROUP BY given.
    let has_aggregates = query
        .select
        .iter()
        .any(|s| matches!(s, SelectItem::CountStar | SelectItem::Aggregate { .. }));
    if has_aggregates || !query.group_by.is_empty() {
        // The pure count(*) fast path keeps the performance-query wire
        // shape (a bare integer, "de-serialization … not expensive").
        if query.select.len() == 1
            && query.select[0] == SelectItem::CountStar
            && query.group_by.is_empty()
            && query.order_by.is_empty()
            && query.limit.is_none()
        {
            return Ok(LocalQueryResult::Count(surviving.len() as u64));
        }
        let rs = aggregate_rows(db, &table, &alias, &schema, query, &surviving)?;
        return Ok(LocalQueryResult::Rows(rs));
    }

    // Plain projection: ORDER BY over source rows, then project, then
    // LIMIT.
    if !query.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Value>, usize)> = Vec::with_capacity(surviving.len());
        for rid in surviving {
            let row = db.table(&table)?.row(rid).expect("row exists").clone();
            let keys = eval_order_keys(&query.order_by, &alias, &schema, &row)?;
            keyed.push((keys, rid));
        }
        sort_by_keys(&mut keyed, &query.order_by);
        surviving = keyed.into_iter().map(|(_, rid)| rid).collect();
    }
    if let Some(n) = query.limit {
        surviving.truncate(n);
    }

    let mut columns: Vec<ResultColumn> = Vec::new();
    let items: Vec<(&Expr, String)> = query
        .select
        .iter()
        .map(|item| match item {
            SelectItem::Expr { expr, alias: out } => {
                let name = out.clone().unwrap_or_else(|| expr.to_string());
                (expr, name)
            }
            _ => unreachable!("aggregate mode handled above"),
        })
        .collect();
    for (expr, name) in &items {
        // Plain column references keep their declared type; computed
        // expressions are typed FLOAT (the dialect's arithmetic domain).
        let dtype = match expr {
            Expr::Column { column, .. } => {
                schema
                    .column(column)
                    .ok_or_else(|| {
                        FederationError::protocol(format!(
                            "unknown column {column} in table {table}"
                        ))
                    })?
                    .dtype
            }
            _ => skyquery_storage::DataType::Float,
        };
        columns.push(ResultColumn::new(name.clone(), dtype));
    }
    let mut rs = ResultSet::new(columns);
    for rid in surviving {
        let row = db.table(&table)?.row(rid).expect("row exists").clone();
        let mut out: Vec<Value> = Vec::with_capacity(items.len());
        for (expr, _) in &items {
            let b = RowBindings {
                alias: &alias,
                schema: &schema,
                row: &row,
            };
            out.push(expr.eval(&b).map_err(FederationError::Sql)?);
        }
        rs.push_row(out)?;
    }
    Ok(LocalQueryResult::Rows(rs))
}

/// Finds an `alias.column = literal` conjunct whose column carries a
/// B-tree index, for index-probe pushdown. The predicate itself is still
/// re-evaluated afterwards, so the probe only has to be sound.
fn indexed_equality(
    db: &Database,
    table: &str,
    alias: &str,
    predicates: &[Expr],
) -> Option<(String, Value)> {
    use skyquery_sql::{BinaryOp, Literal};
    let to_value = |l: &Literal| -> Option<Value> {
        Some(match l {
            Literal::Null => return None, // = NULL never matches
            Literal::Bool(b) => Value::Bool(*b),
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(x) => Value::Float(*x),
            Literal::Str(s) => Value::Text(s.clone()),
        })
    };
    for p in predicates {
        if let Expr::Binary {
            op: BinaryOp::Eq,
            lhs,
            rhs,
        } = p
        {
            let pair = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Column { alias: a, column }, Expr::Literal(l)) if a == alias => {
                    Some((column, l))
                }
                (Expr::Literal(l), Expr::Column { alias: a, column }) if a == alias => {
                    Some((column, l))
                }
                _ => None,
            };
            if let Some((column, literal)) = pair {
                if db.has_btree_index(table, column) {
                    if let Some(v) = to_value(literal) {
                        return Some((column.clone(), v));
                    }
                }
            }
        }
    }
    None
}

/// Evaluates ORDER BY key expressions against one source row.
fn eval_order_keys(
    order_by: &[OrderKey],
    alias: &str,
    schema: &skyquery_storage::TableSchema,
    row: &skyquery_storage::Row,
) -> Result<Vec<Value>> {
    order_by
        .iter()
        .map(|k| {
            let b = RowBindings { alias, schema, row };
            k.expr.eval(&b).map_err(FederationError::Sql)
        })
        .collect()
}

/// Sorts `(keys, payload)` pairs by the ORDER BY directions using the
/// total `key_cmp` ordering (NULLs first ascending, last descending).
pub(crate) fn sort_by_keys<T>(rows: &mut [(Vec<Value>, T)], order_by: &[OrderKey]) {
    rows.sort_by(|(a, _), (b, _)| {
        for (i, key) in order_by.iter().enumerate() {
            let ord = a[i].key_cmp(&b[i]);
            let ord = if key.direction == SortDirection::Desc {
                ord.reverse()
            } else {
                ord
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// GROUP BY / aggregate evaluation over the surviving rows.
fn aggregate_rows(
    db: &mut Database,
    table: &str,
    alias: &str,
    schema: &skyquery_storage::TableSchema,
    query: &Query,
    surviving: &[usize],
) -> Result<ResultSet> {
    // Validate select items: aggregates, or plain GROUP BY key columns.
    for item in &query.select {
        if let SelectItem::Expr { expr, .. } = item {
            if !query.group_by.contains(expr) {
                return Err(FederationError::protocol(format!(
                    "non-aggregate select item {expr} must appear in GROUP BY"
                )));
            }
        }
    }
    // ORDER BY in aggregate mode may only use GROUP BY keys.
    for key in &query.order_by {
        if !query.group_by.contains(&key.expr) {
            return Err(FederationError::protocol(
                "ORDER BY in an aggregate query must name GROUP BY columns",
            ));
        }
    }

    // Group rows by the evaluated GROUP BY keys (whole-table = one group).
    let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    for &rid in surviving {
        let row = db.table(table)?.row(rid).expect("row exists").clone();
        let keys: Vec<Value> = query
            .group_by
            .iter()
            .map(|g| {
                let b = RowBindings {
                    alias,
                    schema,
                    row: &row,
                };
                g.eval(&b).map_err(FederationError::Sql)
            })
            .collect::<Result<_>>()?;
        match groups.iter_mut().find(|(k, _)| {
            k.iter()
                .zip(&keys)
                .all(|(a, b)| a.key_cmp(b) == std::cmp::Ordering::Equal)
        }) {
            Some((_, rids)) => rids.push(rid),
            None => groups.push((keys, vec![rid])),
        }
    }
    if groups.is_empty() && query.group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    // Output columns.
    let mut columns: Vec<ResultColumn> = Vec::new();
    for item in &query.select {
        let (name, dtype) = match item {
            SelectItem::CountStar => ("count(*)".to_string(), skyquery_storage::DataType::Int),
            SelectItem::Aggregate {
                func,
                arg,
                alias: out,
            } => (
                out.clone()
                    .unwrap_or_else(|| format!("{}({arg})", func.name())),
                match func {
                    AggFunc::Count => skyquery_storage::DataType::Int,
                    AggFunc::Min | AggFunc::Max => match arg {
                        Expr::Column { column, .. } => schema
                            .column(column)
                            .map(|c| c.dtype)
                            .unwrap_or(skyquery_storage::DataType::Float),
                        _ => skyquery_storage::DataType::Float,
                    },
                    AggFunc::Sum | AggFunc::Avg => skyquery_storage::DataType::Float,
                },
            ),
            SelectItem::Expr { expr, alias: out } => (
                out.clone().unwrap_or_else(|| expr.to_string()),
                match expr {
                    Expr::Column { column, .. } => schema
                        .column(column)
                        .map(|c| c.dtype)
                        .unwrap_or(skyquery_storage::DataType::Float),
                    _ => skyquery_storage::DataType::Float,
                },
            ),
        };
        columns.push(ResultColumn::new(name, dtype));
    }

    // Evaluate each group.
    let mut out_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::new(); // (order keys, row)
    for (keys, rids) in &groups {
        let mut row_out: Vec<Value> = Vec::with_capacity(query.select.len());
        for item in &query.select {
            let v = match item {
                SelectItem::CountStar => Value::Int(rids.len() as i64),
                SelectItem::Expr { expr, .. } => {
                    let idx = query
                        .group_by
                        .iter()
                        .position(|g| g == expr)
                        .expect("validated above");
                    keys[idx].clone()
                }
                SelectItem::Aggregate { func, arg, .. } => {
                    eval_aggregate(db, table, alias, schema, *func, arg, rids)?
                }
            };
            row_out.push(v);
        }
        let order_keys: Vec<Value> = query
            .order_by
            .iter()
            .map(|k| {
                let idx = query
                    .group_by
                    .iter()
                    .position(|g| g == &k.expr)
                    .expect("validated above");
                keys[idx].clone()
            })
            .collect();
        out_rows.push((order_keys, row_out));
    }
    if !query.order_by.is_empty() {
        sort_by_keys(&mut out_rows, &query.order_by);
    }
    let mut rs = ResultSet::new(columns);
    let limit = query.limit.unwrap_or(usize::MAX);
    for (_, row) in out_rows.into_iter().take(limit) {
        rs.push_row(row)?;
    }
    Ok(rs)
}

/// One aggregate over one group's rows. NULL inputs are skipped per SQL;
/// empty inputs yield NULL (except COUNT, which yields 0).
fn eval_aggregate(
    db: &mut Database,
    table: &str,
    alias: &str,
    schema: &skyquery_storage::TableSchema,
    func: AggFunc,
    arg: &Expr,
    rids: &[usize],
) -> Result<Value> {
    let mut values: Vec<Value> = Vec::with_capacity(rids.len());
    for &rid in rids {
        let row = db.table(table)?.row(rid).expect("row exists").clone();
        let b = RowBindings {
            alias,
            schema,
            row: &row,
        };
        let v = arg.eval(&b).map_err(FederationError::Sql)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    Ok(match func {
        AggFunc::Count => Value::Int(values.len() as i64),
        AggFunc::Min => values
            .into_iter()
            .min_by(|a, b| a.key_cmp(b))
            .unwrap_or(Value::Null),
        AggFunc::Max => values
            .into_iter()
            .max_by(|a, b| a.key_cmp(b))
            .unwrap_or(Value::Null),
        AggFunc::Sum | AggFunc::Avg => {
            if values.is_empty() {
                Value::Null
            } else {
                let mut total = 0.0;
                for v in &values {
                    total += v.as_f64().ok_or_else(|| {
                        FederationError::protocol(format!(
                            "{} over non-numeric value {v}",
                            func.name()
                        ))
                    })?;
                }
                if func == AggFunc::Sum {
                    Value::Float(total)
                } else {
                    Value::Float(total / values.len() as f64)
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyquery_sql::parse_query;
    use skyquery_storage::{ColumnDef, DataType, PositionColumns, TableSchema};

    fn db() -> Database {
        let mut db = Database::new("SDSS");
        let schema = TableSchema::new(
            "Photo_Object",
            vec![
                ColumnDef::new("object_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
                ColumnDef::new("type", DataType::Text),
                ColumnDef::new("i_flux", DataType::Float),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 12))
        .unwrap();
        db.create_table(schema).unwrap();
        let rows = [
            (1u64, 185.0, -0.5, "GALAXY", 21.0),
            (2, 185.01, -0.49, "STAR", 19.0),
            (3, 185.02, -0.51, "GALAXY", 22.0),
            (4, 200.0, 10.0, "GALAXY", 18.0),
        ];
        for (id, ra, dec, ty, flux) in rows {
            db.insert(
                "Photo_Object",
                vec![
                    Value::Id(id),
                    Value::Float(ra),
                    Value::Float(dec),
                    Value::Text(ty.into()),
                    Value::Float(flux),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn count_star_with_area_and_predicate() {
        let mut db = db();
        // 4.5 arcmin around (185, -0.5) covers objects 1–3; GALAXY keeps 1,3.
        let q = parse_query(
            "SELECT count(*) FROM SDSS:Photo_Object O \
             WHERE AREA(185.0, -0.5, 4.5) AND O.type = GALAXY",
        )
        .unwrap();
        match execute_local(&mut db, "SDSS", &q).unwrap() {
            LocalQueryResult::Count(n) => assert_eq!(n, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn projection_returns_rows() {
        let mut db = db();
        let q = parse_query(
            "SELECT O.object_id, O.i_flux FROM SDSS:Photo_Object O WHERE O.i_flux > 20",
        )
        .unwrap();
        match execute_local(&mut db, "SDSS", &q).unwrap() {
            LocalQueryResult::Rows(rs) => {
                assert_eq!(rs.row_count(), 2);
                assert_eq!(rs.columns[0].name, "O.object_id");
                assert_eq!(rs.columns[0].dtype, DataType::Id);
                assert_eq!(rs.value(0, "O.object_id"), Some(&Value::Id(1)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn computed_select_items() {
        let mut db = db();
        let q =
            parse_query("SELECT O.i_flux - 1 AS f FROM SDSS:Photo_Object O WHERE O.object_id = 1")
                .unwrap();
        match execute_local(&mut db, "SDSS", &q).unwrap() {
            LocalQueryResult::Rows(rs) => {
                assert_eq!(rs.columns[0].name, "f");
                assert_eq!(rs.value(0, "f"), Some(&Value::Float(20.0)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_archive_refused() {
        let mut db = db();
        let q = parse_query("SELECT count(*) FROM TWOMASS:Photo_Object O").unwrap();
        assert!(execute_local(&mut db, "SDSS", &q).is_err());
    }

    #[test]
    fn multi_table_refused() {
        let mut db = db();
        let q = parse_query("SELECT O.a FROM SDSS:T1 O, SDSS:T2 U").unwrap();
        assert!(execute_local(&mut db, "SDSS", &q).is_err());
    }

    #[test]
    fn xmatch_refused_locally() {
        let mut db = db();
        let q = parse_query("SELECT O.object_id FROM SDSS:Photo_Object O WHERE XMATCH(O, T) < 3.5")
            .unwrap();
        assert!(execute_local(&mut db, "SDSS", &q).is_err());
    }

    #[test]
    fn area_without_position_index_errors() {
        let mut db = Database::new("X");
        db.create_table(TableSchema::new(
            "plain",
            vec![ColumnDef::new("a", DataType::Int)],
        ))
        .unwrap();
        let q = parse_query("SELECT count(*) FROM X:plain P WHERE AREA(1.0, 2.0, 3.0)").unwrap();
        assert!(execute_local(&mut db, "X", &q).is_err());
    }

    #[test]
    fn no_where_scans_everything() {
        let mut db = db();
        let q = parse_query("SELECT count(*) FROM SDSS:Photo_Object O").unwrap();
        assert_eq!(
            execute_local(&mut db, "SDSS", &q).unwrap(),
            LocalQueryResult::Count(4)
        );
    }
}
