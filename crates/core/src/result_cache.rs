//! Portal-side cross-match result cache with version-keyed incremental
//! maintenance.
//!
//! A federated cross-match is expensive — every chain step is a network
//! round trip plus a χ² probe over an archive — yet portal workloads are
//! heavily repetitive: the same few sky regions get re-queried while the
//! archives change slowly. This module caches the *committed partial
//! set of every chain step* (not just the final projection) keyed by
//!
//! 1. the plan's [`cache_signature`](crate::plan::ExecutionPlan::cache_signature)
//!    — the semantic fields that determine the matched set (χ²
//!    threshold, region cover, kernel, per-step σ/SQL/shards), and
//! 2. a **per-table version vector**: the monotonic modification
//!    version of every `(host, table)` the plan touches, captured at
//!    population time.
//!
//! Because storage tables are append-only with sequential row ids, the
//! version *is* the row count, and the rows inserted since version `v`
//! are exactly `[v, len)`. That gives the cache a third option beyond
//! hit/discard: when an archive has grown but not otherwise changed,
//! the Portal re-probes **only the delta rows** through the ordinary
//! match kernels (the node-side `DeltaStep` service) and merges them
//! into the cached partial sets — producing a byte-identical result to
//! a cold run at a fraction of the cost. See the repair logic in
//! `portal.rs` for the merge discipline and the identity argument.
//!
//! Entries are leased through [`LeaseTable`] — the same TTL mechanism
//! that governs checkpoints and staging tables — so a cold cache entry
//! ages out without a dedicated janitor, and an expired entry forces a
//! clean cold re-run rather than serving stale bytes past its lease.

use std::collections::HashMap;

use crate::lease::LeaseTable;
use crate::xmatch::{PartialSet, StepStats};

/// The modification version of one `(host, table)` pair at the moment a
/// cache entry was populated. A plan step maps to one of these per
/// shard (one total when unsharded).
#[derive(Debug, Clone, PartialEq)]
pub struct StepVersion {
    /// Host that holds the table.
    pub host: String,
    /// Table name on that host.
    pub table: String,
    /// [`TableStats::version`](skyquery_storage::TableStats) observed
    /// at population time. Append-only storage makes this the row
    /// count, so delta rows are `[version, len)`.
    pub version: u64,
}

/// One committed chain step's cached output: the partial set it
/// produced, the per-tuple provenance needed to repair it, and the
/// stats it reported.
#[derive(Debug, Clone)]
pub struct CachedStep {
    /// Step alias (the archive's letter in the query).
    pub alias: String,
    /// The partial set this step committed.
    pub set: PartialSet,
    /// Per-tuple provenance: `src[i]` is the row index *in the upstream
    /// step's cached set* that tuple `i` extends (the seed step stores
    /// its own row index). Repair uses this to remap surviving tuples
    /// and splice delta extensions into their match groups.
    pub src: Vec<u64>,
    /// The stats the step reported when populated. After an
    /// incremental repair the kernel-internal counters are approximate
    /// (they reflect delta probes, not a full re-probe); `tuples_in` /
    /// `tuples_out` stay exact.
    pub stats: StepStats,
}

/// A complete cached chain execution.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The plan's semantic signature.
    pub signature: String,
    /// Version vector: `versions[i]` holds one [`StepVersion`] per
    /// shard of plan step `i` (index-aligned with `steps`).
    pub versions: Vec<Vec<StepVersion>>,
    /// Per-step cached outputs in plan order; the last executed step's
    /// set is the final partial set.
    pub steps: Vec<CachedStep>,
}

/// Monotonic cache effectiveness counters, surfaced through
/// [`StepStats`], the `StatsChain` wire format, and the CLI's `\cache`
/// meta-command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Queries served entirely from cache (zero chain steps executed).
    pub hits: u64,
    /// Queries that ran the full chain (no entry, or entry invalid).
    pub misses: u64,
    /// Queries served by incremental repair (delta rows probed and
    /// merged instead of a full re-run).
    pub repairs: u64,
    /// Entries discarded — lease expiry, capacity pressure, or a
    /// version regression that invalidated the provenance.
    pub evictions: u64,
}

/// The cache proper: leased entries plus a signature index.
///
/// Capacity is owned by the caller (`FederationConfig`) and passed to
/// [`insert`](ResultCache::insert) so a `\cache <n>` reconfiguration
/// takes effect without touching live entries.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: LeaseTable<CacheEntry>,
    by_sig: HashMap<String, u64>,
    next_id: u64,
    counters: CacheCounters,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Snapshot of the effectiveness counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Mutable counter access for the Portal's hit/miss/repair
    /// bookkeeping.
    pub fn counters_mut(&mut self) -> &mut CacheCounters {
        &mut self.counters
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reclaims every entry whose lease expired at or before `now_s`,
    /// tallying them as evictions. Called at each lookup so expiry
    /// needs no background janitor.
    pub fn sweep(&mut self, now_s: f64) -> usize {
        let expired = self.entries.sweep(now_s);
        for (_, entry) in &expired {
            self.by_sig.remove(&entry.signature);
        }
        self.counters.evictions += expired.len() as u64;
        expired.len()
    }

    /// The entry id cached under `signature`, if any.
    pub fn lookup(&self, signature: &str) -> Option<u64> {
        self.by_sig.get(signature).copied()
    }

    /// Shared access to an entry.
    pub fn get(&self, id: u64) -> Option<&CacheEntry> {
        self.entries.get(id)
    }

    /// Mutable access to an entry (the repair path rewrites its steps
    /// and version vector in place).
    pub fn get_mut(&mut self, id: u64) -> Option<&mut CacheEntry> {
        self.entries.get_mut(id)
    }

    /// Extends an entry's lease to a full TTL from `now_s` — a hit
    /// keeps a hot entry alive.
    pub fn renew(&mut self, id: u64, now_s: f64) -> bool {
        self.entries.renew(id, now_s)
    }

    /// Discards one entry (version regression, repair failure, or any
    /// other invalidation) and tallies the eviction.
    pub fn evict(&mut self, id: u64) {
        if let Some(entry) = self.entries.remove(id) {
            self.by_sig.remove(&entry.signature);
            self.counters.evictions += 1;
        }
    }

    /// Inserts a freshly-populated entry under a `ttl_s` lease,
    /// replacing any previous entry with the same signature. When the
    /// cache is at `capacity` the entry whose lease expires soonest is
    /// evicted first; a zero capacity disables the cache entirely and
    /// returns `None`.
    pub fn insert(
        &mut self,
        entry: CacheEntry,
        now_s: f64,
        ttl_s: f64,
        capacity: usize,
    ) -> Option<u64> {
        if capacity == 0 {
            return None;
        }
        if let Some(prev) = self.by_sig.get(&entry.signature).copied() {
            self.evict(prev);
        }
        while self.entries.len() >= capacity {
            match self.entries.earliest_expiry() {
                Some(victim) => self.evict(victim),
                None => break,
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.by_sig.insert(entry.signature.clone(), id);
        self.entries.insert(id, entry, now_s, ttl_s);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(sig: &str) -> CacheEntry {
        CacheEntry {
            signature: sig.to_string(),
            versions: vec![vec![StepVersion {
                host: "a.example".into(),
                table: "T".into(),
                version: 1,
            }]],
            steps: Vec::new(),
        }
    }

    #[test]
    fn insert_lookup_and_signature_replacement() {
        let mut cache = ResultCache::new();
        let id = cache.insert(entry("sig-a"), 0.0, 60.0, 4).unwrap();
        assert_eq!(cache.lookup("sig-a"), Some(id));
        assert_eq!(cache.len(), 1);
        // Re-populating the same signature replaces (and tallies an
        // eviction for) the old entry.
        let id2 = cache.insert(entry("sig-a"), 1.0, 60.0, 4).unwrap();
        assert_ne!(id, id2);
        assert_eq!(cache.lookup("sig-a"), Some(id2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache = ResultCache::new();
        assert!(cache.insert(entry("sig"), 0.0, 60.0, 0).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_pressure_evicts_the_soonest_expiring_entry() {
        let mut cache = ResultCache::new();
        cache.insert(entry("short"), 0.0, 10.0, 2).unwrap();
        let keep = cache.insert(entry("long"), 0.0, 100.0, 2).unwrap();
        cache.insert(entry("new"), 0.0, 50.0, 2).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup("short"), None);
        assert_eq!(cache.lookup("long"), Some(keep));
        assert!(cache.lookup("new").is_some());
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn sweep_reclaims_expired_entries_and_their_signatures() {
        let mut cache = ResultCache::new();
        cache.insert(entry("a"), 0.0, 10.0, 4).unwrap();
        cache.insert(entry("b"), 0.0, 100.0, 4).unwrap();
        assert_eq!(cache.sweep(50.0), 1);
        assert_eq!(cache.lookup("a"), None);
        assert!(cache.lookup("b").is_some());
        assert_eq!(cache.counters().evictions, 1);
        // The freed signature slot is reusable.
        assert!(cache.insert(entry("a"), 50.0, 10.0, 4).is_some());
    }

    #[test]
    fn evict_is_idempotent() {
        let mut cache = ResultCache::new();
        let id = cache.insert(entry("x"), 0.0, 60.0, 4).unwrap();
        cache.evict(id);
        cache.evict(id);
        assert_eq!(cache.counters().evictions, 1);
        assert_eq!(cache.lookup("x"), None);
    }
}
