#![warn(missing_docs)]
//! # skyquery-core — the SkyQuery federation
//!
//! The paper's primary contribution (§5): a wrapper–mediator federation of
//! autonomous astronomy archives interoperating over SOAP Web services.
//!
//! * [`portal`] — the mediator: Registration and SkyQuery services, the
//!   metadata catalog, query decomposition, count-star performance
//!   queries, and plan construction (§5.1, §5.3);
//! * [`skynode`] — the wrapper: the Information, Meta-data, Query, and
//!   Cross match services around one archive database (§5.1);
//! * [`xmatch`] — the probabilistic cross-match algorithm and its
//!   distributed, pruning evaluation (§5.4);
//! * [`engine`] — pluggable cross-match execution engines (sequential
//!   here; the zone-partitioned parallel engine lives in
//!   `skyquery-zones`);
//! * [`plan`] — the federated execution plan that daisy-chains between
//!   SkyNodes (§5.3);
//! * [`baseline`] — the strategies the paper argues against, for the
//!   experiments: pull-everything-to-the-portal and alternative chain
//!   orderings;
//! * [`trace`] — execution traces reproducing Figure 3;
//! * [`client`] — a client-side facade speaking SOAP to the Portal.

pub mod baseline;
pub mod client;
pub mod engine;
pub mod error;
pub mod exchange;
pub mod lease;
pub mod meta;
pub mod plan;
pub mod portal;
pub mod query_exec;
pub mod region;
pub mod result;
pub mod result_cache;
pub mod retry;
pub mod service;
pub mod shard;
pub mod skynode;
pub mod trace;
pub mod transfer;
pub mod xmatch;

pub use client::Client;
pub use engine::{CrossMatchEngine, SequentialEngine};
pub use engine::{PartialIngest, StepKind};
pub use error::{FederationError, Result};
pub use exchange::TransferReport;
pub use lease::LeaseTable;
pub use meta::{ArchiveInfo, RegisteredNode, Registration, ZoneExtent};
pub use plan::{ExecutionPlan, PlanShard, PlanStep};
pub use portal::{
    ChainMode, CheckpointedWalk, Degradation, FederationConfig, HostHealth, HostState,
    OrderingStrategy, Portal,
};
pub use region::Region;
pub use result::{ResultColumn, ResultSet};
pub use retry::RetryPolicy;
pub use service::ServiceMethod;
pub use skynode::{SkyNode, SkyNodeBuilder};
pub use trace::{ExecutionTrace, TraceEvent};
pub use transfer::{
    open_chunk_stream, send_rpc, send_rpc_with, ChunkStream, IncomingPartial, TransferChunk,
};
pub use xmatch::{
    MatchKernel, PartialSet, PartialTuple, StepConfig, StepContext, StepStats, TupleState,
};
