//! Bounded retry with exponential backoff for federation RPCs.
//!
//! The paper's federation is built from autonomous archives that fail
//! independently, so every network call in the daisy chain can fail
//! transiently. A [`RetryPolicy`] bounds how hard a caller tries: a
//! maximum attempt count, exponential backoff between attempts, and a
//! per-call deadline on the total time spent waiting. Backoff is charged
//! to the *simulated* clock (via `SimNetwork::record_retry`) — nothing
//! sleeps — so retry behaviour is deterministic and observable in
//! `NetworkMetrics`.
//!
//! Which failures are worth retrying is the other half of the story:
//! [`FederationError::is_retryable`](crate::FederationError::is_retryable)
//! classifies transport-level failures (unreachable host, corrupt frame,
//! 5xx) as retryable and everything that a remote service *decided*
//! (SOAP faults, SQL errors, protocol violations) as fatal, so a
//! deterministic error is never hammered with useless re-sends.

/// Bounded-attempt retry policy for one federation RPC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries). Clamped to
    /// at least 1.
    pub max_attempts: u32,
    /// Simulated seconds waited before the first retry.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff after each further failure.
    pub backoff_factor: f64,
    /// Ceiling on the *total* simulated seconds a call may spend backing
    /// off; once the next wait would cross it, the call gives up early.
    pub deadline_s: f64,
}

impl Default for RetryPolicy {
    /// Three attempts, 50 ms base doubling each time, 30 s deadline —
    /// sized to the simulated 2002-era links.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 0.05,
            backoff_factor: 2.0,
            deadline_s: 30.0,
        }
    }
}

impl RetryPolicy {
    /// No retries: fail on the first error.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// A policy with `attempts` total attempts and the default backoff.
    pub fn with_attempts(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts,
            ..RetryPolicy::default()
        }
    }

    /// Total attempts, never less than one.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Simulated seconds to wait before attempt `attempt` (2-based: the
    /// wait before the first retry is `backoff_base_s`).
    pub fn backoff_before(&self, attempt: u32) -> f64 {
        debug_assert!(attempt >= 2, "attempt 1 has no backoff");
        let base = if self.backoff_base_s.is_finite() && self.backoff_base_s >= 0.0 {
            self.backoff_base_s
        } else {
            0.0
        };
        let factor = if self.backoff_factor.is_finite() && self.backoff_factor >= 1.0 {
            self.backoff_factor
        } else {
            1.0
        };
        base * factor.powi(attempt as i32 - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_none() {
        let p = RetryPolicy::default();
        assert_eq!(p.attempts(), 3);
        assert!((p.backoff_before(2) - 0.05).abs() < 1e-12);
        assert!((p.backoff_before(3) - 0.10).abs() < 1e-12);
        assert!((p.backoff_before(4) - 0.20).abs() < 1e-12);
        assert_eq!(RetryPolicy::none().attempts(), 1);
        assert_eq!(RetryPolicy::with_attempts(5).attempts(), 5);
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let p = RetryPolicy {
            max_attempts: 0,
            backoff_base_s: f64::NAN,
            backoff_factor: -3.0,
            deadline_s: 30.0,
        };
        assert_eq!(p.attempts(), 1);
        assert_eq!(p.backoff_before(2), 0.0);
        let p = RetryPolicy {
            backoff_factor: 0.5,
            ..RetryPolicy::default()
        };
        // Sub-unit factors would shrink the wait; clamp to constant.
        assert!((p.backoff_before(5) - p.backoff_base_s).abs() < 1e-12);
    }
}
