//! Bounded retry with exponential backoff for federation RPCs.
//!
//! The paper's federation is built from autonomous archives that fail
//! independently, so every network call in the daisy chain can fail
//! transiently. A [`RetryPolicy`] bounds how hard a caller tries: a
//! maximum attempt count, exponential backoff between attempts, and a
//! per-call deadline on the total time spent waiting. Backoff is charged
//! to the *simulated* clock (via `SimNetwork::record_retry`) — nothing
//! sleeps — so retry behaviour is deterministic and observable in
//! `NetworkMetrics`.
//!
//! Which failures are worth retrying is the other half of the story:
//! [`FederationError::is_retryable`](crate::FederationError::is_retryable)
//! classifies transport-level failures (unreachable host, corrupt frame,
//! 5xx) as retryable and everything that a remote service *decided*
//! (SOAP faults, SQL errors, protocol violations) as fatal, so a
//! deterministic error is never hammered with useless re-sends.

/// Bounded-attempt retry policy for one federation RPC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries). Clamped to
    /// at least 1.
    pub max_attempts: u32,
    /// Simulated seconds waited before the first retry.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff after each further failure.
    pub backoff_factor: f64,
    /// Ceiling on the *total* simulated seconds a call may spend backing
    /// off; once the next wait would cross it, the call gives up early.
    pub deadline_s: f64,
    /// Decorrelation half-width for the jittered backoff, as a fraction
    /// of the exponential wait (`0.0` = pure exponential backoff, `0.5`
    /// = each wait lands anywhere in ±50% of the nominal value). Jitter
    /// spreads simultaneous retriers so a recovering node is not hit by
    /// a synchronized burst; it is seeded deterministically from the
    /// attempt number and the link's host names, so runs stay
    /// reproducible. Clamped to `[0, 1)`.
    pub jitter: f64,
}

/// Default decorrelation half-width (±50% of the nominal wait).
pub const DEFAULT_RETRY_JITTER: f64 = 0.5;

impl Default for RetryPolicy {
    /// Three attempts, 50 ms base doubling each time, 30 s deadline,
    /// ±50% decorrelated jitter — sized to the simulated 2002-era links.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 0.05,
            backoff_factor: 2.0,
            deadline_s: 30.0,
            jitter: DEFAULT_RETRY_JITTER,
        }
    }
}

impl RetryPolicy {
    /// No retries: fail on the first error.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// A policy with `attempts` total attempts and the default backoff.
    pub fn with_attempts(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts,
            ..RetryPolicy::default()
        }
    }

    /// Total attempts, never less than one.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Simulated seconds to wait before attempt `attempt` (2-based: the
    /// wait before the first retry is `backoff_base_s`).
    pub fn backoff_before(&self, attempt: u32) -> f64 {
        debug_assert!(attempt >= 2, "attempt 1 has no backoff");
        let base = if self.backoff_base_s.is_finite() && self.backoff_base_s >= 0.0 {
            self.backoff_base_s
        } else {
            0.0
        };
        let factor = if self.backoff_factor.is_finite() && self.backoff_factor >= 1.0 {
            self.backoff_factor
        } else {
            1.0
        };
        base * factor.powi(attempt as i32 - 2)
    }

    /// The wait actually charged before attempt `attempt` of a call from
    /// `from_host` to `to_host`: the exponential [`backoff_before`] wait
    /// scaled by a deterministic decorrelation factor in
    /// `[1 − jitter, 1 + jitter)`. The factor is a pure function of the
    /// attempt and the directed link, so the schedule is reproducible,
    /// strictly positive whenever the nominal wait is, and different for
    /// every (link, attempt) pair — callers that failed together retry
    /// apart.
    ///
    /// [`backoff_before`]: RetryPolicy::backoff_before
    pub fn backoff_before_jittered(&self, attempt: u32, from_host: &str, to_host: &str) -> f64 {
        let nominal = self.backoff_before(attempt);
        let j = if self.jitter.is_finite() {
            self.jitter.clamp(0.0, 0.999)
        } else {
            0.0
        };
        if j == 0.0 || nominal == 0.0 {
            return nominal;
        }
        // FNV-1a over the link identity and attempt, whitened through
        // xorshift64*, mapped to a unit float.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in from_host
            .as_bytes()
            .iter()
            .chain([0u8].iter())
            .chain(to_host.as_bytes())
            .chain([0u8].iter())
            .chain(attempt.to_le_bytes().iter())
        {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h | 1;
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let whitened = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let unit = (whitened >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        nominal * (1.0 + j * (2.0 * unit - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_none() {
        let p = RetryPolicy::default();
        assert_eq!(p.attempts(), 3);
        assert!((p.backoff_before(2) - 0.05).abs() < 1e-12);
        assert!((p.backoff_before(3) - 0.10).abs() < 1e-12);
        assert!((p.backoff_before(4) - 0.20).abs() < 1e-12);
        assert_eq!(RetryPolicy::none().attempts(), 1);
        assert_eq!(RetryPolicy::with_attempts(5).attempts(), 5);
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let p = RetryPolicy {
            max_attempts: 0,
            backoff_base_s: f64::NAN,
            backoff_factor: -3.0,
            deadline_s: 30.0,
            jitter: f64::NAN,
        };
        assert_eq!(p.attempts(), 1);
        assert_eq!(p.backoff_before(2), 0.0);
        // NaN jitter degrades to the pure exponential wait.
        assert_eq!(p.backoff_before_jittered(2, "a", "b"), 0.0);
        let p = RetryPolicy {
            backoff_factor: 0.5,
            ..RetryPolicy::default()
        };
        // Sub-unit factors would shrink the wait; clamp to constant.
        assert!((p.backoff_before(5) - p.backoff_base_s).abs() < 1e-12);
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_decorrelated() {
        let p = RetryPolicy::default();
        let w = p.backoff_before_jittered(2, "portal", "sdss");
        // Deterministic: same (link, attempt) → same wait.
        assert_eq!(w, p.backoff_before_jittered(2, "portal", "sdss"));
        // Bounded by the ±jitter envelope and strictly positive.
        let nominal = p.backoff_before(2);
        assert!(w > 0.0);
        assert!(w >= nominal * (1.0 - p.jitter) - 1e-12);
        assert!(w < nominal * (1.0 + p.jitter));
        // Decorrelated: other links and attempts land elsewhere.
        assert_ne!(w, p.backoff_before_jittered(2, "portal", "twomass"));
        assert_ne!(w, p.backoff_before_jittered(2, "sdss", "twomass"));
        assert_ne!(w, p.backoff_before_jittered(3, "portal", "sdss"));
        // jitter = 0 restores the pure exponential schedule.
        let pure = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(pure.backoff_before_jittered(3, "a", "b"), nominal * 2.0);
    }
}
