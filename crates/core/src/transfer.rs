//! Typed client side of the chunked Cross match transfer (paper §6).
//!
//! The original workaround shipped oversized partial sets as an ad-hoc
//! `chunked`/`transfer_id`/`chunks` triple of SOAP results; this module
//! replaces that with the typed [`ChunkManifest`] from `skyquery-soap`
//! and exposes the transfer as a *stream*: [`open_cross_match`] returns
//! either an inline [`PartialSet`] or a [`ChunkStream`] whose chunks the
//! caller pulls one `FetchChunk` round-trip at a time. When the sender's
//! plan enables `zone_chunking`, chunks never straddle a declination-zone
//! boundary and each carries its zone range plus the original row indices
//! (the `__seq` column), so a receiving node can hand completed zones to
//! its cross-match engine while later chunks are still in flight.
//!
//! Byte-identity: every tuple carries its index in the sender's set, and
//! the receiver restores that order, so chunk sizing, zone grouping, and
//! arrival order are transport details that can never change the result.

use skyquery_net::{HttpRequest, NetError, SimNetwork, Url};
use skyquery_soap::{ChunkManifest, RpcCall, RpcResponse, SoapValue, ZoneRange};
use skyquery_xml::VoTable;

use crate::error::{FederationError, Result};
use crate::plan::{ExecutionPlan, DEFAULT_ZONE_HEIGHT_DEG};
use crate::retry::RetryPolicy;
use crate::trace::StatsChain;
use crate::xmatch::{PartialSet, PartialTuple};

/// The declination-zone label a sender stamps on outgoing tuples.
///
/// Replicates the zone formula of the `skyquery-zones` partitioner (fixed
/// bands of `height_deg` starting at dec −90°, non-finite or non-positive
/// heights falling back to the default, clamped to the band count) so the
/// wire format and the engine agree on zone boundaries without this crate
/// depending on the zones crate. Agreement is an *efficiency* property —
/// the receiver merges by tuple index, so a mislabeled zone could only
/// cost overlap, never correctness — but a cross-check test in
/// `skyquery-zones` keeps the two formulas identical.
pub fn zone_label(dec_deg: f64, height_deg: f64) -> u32 {
    let height = if height_deg.is_finite() && height_deg > 0.0 {
        height_deg.clamp(1e-4, 180.0)
    } else {
        DEFAULT_ZONE_HEIGHT_DEG
    };
    let count = (180.0 / height).ceil().max(1.0) as usize;
    let raw = ((dec_deg + 90.0) / height).floor();
    let zone = if raw.is_nan() || raw < 0.0 {
        0
    } else {
        raw as usize
    };
    zone.min(count - 1) as u32
}

/// One chunk pulled off a [`ChunkStream`].
#[derive(Debug, Clone)]
pub struct TransferChunk {
    /// Position in the transfer (`0..manifest.total_chunks()`).
    pub index: usize,
    /// Inclusive zone range covered, when the transfer is zone-aware.
    pub zones: Option<ZoneRange>,
    /// Original row index of each payload row in the sender's set, when
    /// the transfer is zone-aware (`None` for legacy byte-budget chunks,
    /// which arrive in row order).
    pub seqs: Option<Vec<u64>>,
    /// The payload rows (sequence column already stripped).
    pub table: VoTable,
}

/// An open chunked transfer: the manifest plus a cursor over `FetchChunk`
/// continuations. The sender frees the transfer when the last chunk is
/// served; a stream dropped *mid-transfer* sends a best-effort
/// `AbortTransfer` from its `Drop` impl (outcome recorded in the network
/// metrics as `transfer-abort` / `transfer-abort-failed`) so the
/// sender-side session is not leaked. Call [`ChunkStream::abort`] to do
/// the same explicitly and observe the result.
pub struct ChunkStream<'a> {
    net: &'a SimNetwork,
    from_host: String,
    url: Url,
    manifest: ChunkManifest,
    next: usize,
    retry: RetryPolicy,
    /// The sender-side session is known to be gone: fully drained,
    /// explicitly aborted, or abort already attempted from `Drop`.
    closed: bool,
}

impl ChunkStream<'_> {
    /// The transfer's manifest (chunk count, row counts, zone ranges).
    pub fn manifest(&self) -> &ChunkManifest {
        &self.manifest
    }

    /// Fetches the next chunk, or `None` when the transfer is complete.
    ///
    /// Validates the served chunk against the manifest (transfer id,
    /// index, total, row count) and records per-chunk wire metrics on the
    /// network.
    pub fn fetch_next(&mut self) -> Result<Option<TransferChunk>> {
        if self.next >= self.manifest.total_chunks() {
            return Ok(None);
        }
        let index = self.next;
        let call = RpcCall::new("FetchChunk")
            .param(
                "transfer_id",
                SoapValue::Int(self.manifest.transfer_id as i64),
            )
            .param("index", SoapValue::Int(index as i64));
        let resp = send_rpc_with(self.net, &self.from_host, &self.url, &call, self.retry)?;
        let served_index = require_usize(&resp, "index")?;
        let served_total = require_usize(&resp, "total")?;
        let served_id = require_usize(&resp, "transfer_id")? as u64;
        if served_id != self.manifest.transfer_id
            || served_index != index
            || served_total != self.manifest.total_chunks()
        {
            return Err(FederationError::protocol(format!(
                "FetchChunk served chunk {served_index}/{served_total} of transfer \
                 {served_id}, expected {index}/{} of {}",
                self.manifest.total_chunks(),
                self.manifest.transfer_id
            )));
        }
        let table = resp
            .require("chunk")?
            .as_table()
            .ok_or_else(|| FederationError::protocol("chunk must be a table"))?
            .clone();
        self.net.record_chunk(
            &self.url.host,
            &self.from_host,
            table.to_xml().len(),
            table.row_count(),
        );
        let info = &self.manifest.chunks[index];
        let (seqs, table) = if self.manifest.is_zoned() {
            let (seqs, payload) =
                skyquery_soap::chunk::take_seq_column(&table).map_err(FederationError::Soap)?;
            (Some(seqs), payload)
        } else {
            (None, table)
        };
        if table.row_count() != info.rows {
            return Err(FederationError::protocol(format!(
                "chunk {index} carries {} rows, manifest promised {}",
                table.row_count(),
                info.rows
            )));
        }
        self.next = index + 1;
        if self.next == self.manifest.total_chunks() {
            // The sender frees the transfer on serving the last chunk.
            self.closed = true;
        }
        Ok(Some(TransferChunk {
            index,
            zones: info.zones,
            seqs,
            table,
        }))
    }

    /// Tells the sender to free this transfer without serving the
    /// remaining chunks. Idempotent: a drained, already-aborted, or
    /// never-started stream is a no-op. The outcome is tallied in the
    /// network metrics (`transfer-abort` on success,
    /// `transfer-abort-failed` when the abort call itself failed).
    pub fn abort(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        self.closed = true;
        let call = RpcCall::new("AbortTransfer").param(
            "transfer_id",
            SoapValue::Int(self.manifest.transfer_id as i64),
        );
        match send_rpc_with(self.net, &self.from_host, &self.url, &call, self.retry) {
            Ok(_) => {
                self.net
                    .record_fault(&self.from_host, &self.url.host, "transfer-abort");
                Ok(())
            }
            Err(e) => {
                self.net
                    .record_fault(&self.from_host, &self.url.host, "transfer-abort-failed");
                Err(e)
            }
        }
    }

    /// Drains the stream and reassembles the sender's partial set in its
    /// original row order — the monolithic view for callers (such as the
    /// Portal) that have no incremental ingest path.
    pub fn collect_set(mut self) -> Result<PartialSet> {
        let mut columns = None;
        let mut tuples: Vec<(u64, PartialTuple)> = Vec::with_capacity(self.manifest.total_rows);
        let mut next_seq = 0u64;
        while let Some(chunk) = self.fetch_next()? {
            let set = PartialSet::from_votable(&chunk.table)?;
            columns.get_or_insert(set.columns);
            match chunk.seqs {
                Some(seqs) => tuples.extend(seqs.into_iter().zip(set.tuples)),
                None => {
                    for t in set.tuples {
                        tuples.push((next_seq, t));
                        next_seq += 1;
                    }
                }
            }
        }
        tuples.sort_by_key(|(seq, _)| *seq);
        for (expected, (seq, _)) in tuples.iter().enumerate() {
            if *seq != expected as u64 {
                return Err(FederationError::protocol(format!(
                    "reassembled transfer is not a permutation of 0..{}: saw \
                     sequence {seq} at position {expected}",
                    tuples.len()
                )));
            }
        }
        let columns = columns
            .ok_or_else(|| FederationError::protocol("chunked transfer with zero chunks"))?;
        Ok(PartialSet {
            columns,
            tuples: tuples.into_iter().map(|(_, t)| t).collect(),
        })
    }
}

impl Drop for ChunkStream<'_> {
    /// Best-effort cleanup for a stream abandoned mid-transfer (an error
    /// in `collect_set`, or a caller that bailed): tell the sender to
    /// free the session rather than leak it forever. One attempt, no
    /// retries — the outcome is recorded in the metrics either way.
    fn drop(&mut self) {
        if !self.closed {
            self.retry = RetryPolicy::none();
            let _ = self.abort();
        }
    }
}

/// Opens a client-side cursor over an already-announced chunked transfer:
/// the caller has a [`ChunkManifest`] from some service's reply and pulls
/// the chunks with `FetchChunk` continuations against `url`. This is how
/// the job service's `FetchResults` pagination reuses the zone-chunk
/// transfer machinery: the manifest rides back in the `FetchResults`
/// reply, and the job client drains the stream chunk by chunk.
pub fn open_chunk_stream<'a>(
    net: &'a SimNetwork,
    from_host: &str,
    url: &Url,
    manifest: ChunkManifest,
    retry: RetryPolicy,
) -> ChunkStream<'a> {
    ChunkStream {
        net,
        from_host: from_host.to_string(),
        url: url.clone(),
        manifest,
        next: 0,
        retry,
        closed: false,
    }
}

/// What a Cross match call handed back: the whole set inline, or an open
/// chunk stream to pull.
pub enum IncomingPartial<'a> {
    /// The response fit under the message limit.
    Inline(PartialSet),
    /// The response was chunked; pull chunks with [`ChunkStream::fetch_next`].
    Chunked(ChunkStream<'a>),
}

/// Calls the Cross match service for `step` and opens the reply without
/// draining it: inline sets decode immediately, chunked replies return a
/// [`ChunkStream`] so the caller can overlap processing with the
/// remaining `FetchChunk` round-trips.
pub fn open_cross_match<'a>(
    net: &'a SimNetwork,
    from_host: &str,
    url: &Url,
    plan: &ExecutionPlan,
    step: usize,
) -> Result<(IncomingPartial<'a>, StatsChain)> {
    let call = RpcCall::new("CrossMatch")
        .param("plan", SoapValue::Xml(plan.to_element()))
        .param("step", SoapValue::Int(step as i64));
    let resp = send_rpc_with(net, from_host, url, &call, plan.retry)?;
    let stats = StatsChain::from_element(
        resp.require("stats")?
            .as_xml()
            .ok_or_else(|| FederationError::protocol("stats must be xml"))?,
    )?;
    let incoming = decode_partial(net, from_host, url, plan, &resp)?;
    Ok((incoming, stats))
}

/// Decodes a manifest-or-inline partial-set response (the shared shape of
/// `CrossMatch` and `FetchCheckpoint` replies): a `manifest` result opens
/// a [`ChunkStream`], a `partial` result decodes inline.
fn decode_partial<'a>(
    net: &'a SimNetwork,
    from_host: &str,
    url: &Url,
    plan: &ExecutionPlan,
    resp: &RpcResponse,
) -> Result<IncomingPartial<'a>> {
    if let Some(value) = resp.get("manifest") {
        let manifest_el = value
            .as_xml()
            .ok_or_else(|| FederationError::protocol("manifest must be xml"))?;
        let manifest = ChunkManifest::from_element(manifest_el).map_err(FederationError::Soap)?;
        let stream = ChunkStream {
            net,
            from_host: from_host.to_string(),
            url: url.clone(),
            manifest,
            next: 0,
            retry: plan.retry,
            closed: false,
        };
        return Ok(IncomingPartial::Chunked(stream));
    }
    let table = resp
        .require("partial")?
        .as_table()
        .ok_or_else(|| FederationError::protocol("partial must be a table"))?;
    Ok(IncomingPartial::Inline(PartialSet::from_votable(table)?))
}

/// Calls the `FetchCheckpoint` service at `url` for a checkpointed
/// partial set and opens the reply without draining it. The holder
/// renews the checkpoint's lease as a side effect, so fetching is also
/// keeping-alive. The plan supplies the retry policy and the message
/// limits the holder chunks against.
pub fn open_checkpoint<'a>(
    net: &'a SimNetwork,
    from_host: &str,
    url: &Url,
    plan: &ExecutionPlan,
    checkpoint_id: u64,
) -> Result<IncomingPartial<'a>> {
    let call = RpcCall::new("FetchCheckpoint")
        .param("plan", SoapValue::Xml(plan.to_element()))
        .param("checkpoint_id", SoapValue::Int(checkpoint_id as i64));
    let resp = send_rpc_with(net, from_host, url, &call, plan.retry)?;
    decode_partial(net, from_host, url, plan, &resp)
}

/// Asks the node at `url` to extend the lease on one of its resources
/// (`kind` is `checkpoint`, `transfer`, or `txn`). Returns whether the
/// resource was still leased — `false` means it is gone for good and the
/// caller must redo the work that created it.
pub fn renew_lease(
    net: &SimNetwork,
    from_host: &str,
    url: &Url,
    kind: &str,
    id: u64,
    retry: RetryPolicy,
) -> Result<bool> {
    let call = RpcCall::new("RenewLease")
        .param("kind", SoapValue::Str(kind.to_string()))
        .param("id", SoapValue::Int(id as i64));
    let resp = send_rpc_with(net, from_host, url, &call, retry)?;
    resp.require("renewed")?
        .as_bool()
        .ok_or_else(|| FederationError::protocol("renewed must be a boolean"))
}

/// Asks the node at `url` to release a checkpointed partial set.
/// Idempotent at the node (an already-released id answers `false`), so
/// callers can fire it best-effort after every committed step.
pub fn release_checkpoint(
    net: &SimNetwork,
    from_host: &str,
    url: &Url,
    id: u64,
    retry: RetryPolicy,
) -> Result<bool> {
    let call = RpcCall::new("ReleaseCheckpoint").param("checkpoint_id", SoapValue::Int(id as i64));
    let resp = send_rpc_with(net, from_host, url, &call, retry)?;
    resp.require("released")?
        .as_bool()
        .ok_or_else(|| FederationError::protocol("released must be a boolean"))
}

/// Client side of the Cross match service: sends the call, drains any
/// chunked-transfer continuation, and decodes partial set plus stats.
/// The blocking convenience over [`open_cross_match`], shared by the
/// Portal and by tests; SkyNodes use the streaming form directly.
pub fn invoke_cross_match(
    net: &SimNetwork,
    from_host: &str,
    url: &Url,
    plan: &ExecutionPlan,
    step: usize,
) -> Result<(PartialSet, StatsChain)> {
    let (incoming, stats) = open_cross_match(net, from_host, url, plan, step)?;
    match incoming {
        IncomingPartial::Inline(set) => Ok((set, stats)),
        IncomingPartial::Chunked(stream) => Ok((stream.collect_set()?, stats)),
    }
}

/// Client side of the `ScatterStep` service: asks one shard to run plan
/// step `step` against its zone range, seeding when `input` is absent or
/// extending/filtering the supplied input set otherwise. Drains any
/// chunked continuation and returns the shard's partial set plus its
/// single-entry stats chain. Used by the Portal's scatter-gather
/// executor, which merges the per-shard replies deterministically
/// ([`crate::shard`]).
pub fn invoke_scatter_step(
    net: &SimNetwork,
    from_host: &str,
    url: &Url,
    plan: &ExecutionPlan,
    step: usize,
    input: Option<&VoTable>,
) -> Result<(PartialSet, StatsChain)> {
    let mut call = RpcCall::new("ScatterStep")
        .param("plan", SoapValue::Xml(plan.to_element()))
        .param("step", SoapValue::Int(step as i64));
    if let Some(table) = input {
        call = call.param("input", SoapValue::Table(table.clone()));
    }
    let resp = send_rpc_with(net, from_host, url, &call, plan.retry)?;
    let stats = StatsChain::from_element(
        resp.require("stats")?
            .as_xml()
            .ok_or_else(|| FederationError::protocol("stats must be xml"))?,
    )?;
    match decode_partial(net, from_host, url, plan, &resp)? {
        IncomingPartial::Inline(set) => Ok((set, stats)),
        IncomingPartial::Chunked(stream) => Ok((stream.collect_set()?, stats)),
    }
}

/// Client side of the `DeltaStep` service: asks a node to run plan step
/// `step` against only the rows inserted at or after `from_row` of its
/// step table (`from_row = 0` probes the whole table), seeding when
/// `input` is absent. Drains any chunked continuation and returns the
/// delta partial set, its single-entry stats chain, and the table
/// version the probe observed (the row count at probe time — what the
/// repaired cache entry must record as its new version). Used by the
/// Portal's result cache to repair a stale entry incrementally instead
/// of re-running the full chain.
pub fn invoke_delta_step(
    net: &SimNetwork,
    from_host: &str,
    url: &Url,
    plan: &ExecutionPlan,
    step: usize,
    from_row: u64,
    input: Option<&VoTable>,
) -> Result<(PartialSet, StatsChain, u64)> {
    let mut call = RpcCall::new("DeltaStep")
        .param("plan", SoapValue::Xml(plan.to_element()))
        .param("step", SoapValue::Int(step as i64))
        .param("from_row", SoapValue::Int(from_row as i64));
    if let Some(table) = input {
        call = call.param("input", SoapValue::Table(table.clone()));
    }
    let resp = send_rpc_with(net, from_host, url, &call, plan.retry)?;
    let stats = StatsChain::from_element(
        resp.require("stats")?
            .as_xml()
            .ok_or_else(|| FederationError::protocol("stats must be xml"))?,
    )?;
    let version =
        resp.require("version")?
            .as_i64()
            .ok_or_else(|| FederationError::protocol("version must be an integer"))? as u64;
    match decode_partial(net, from_host, url, plan, &resp)? {
        IncomingPartial::Inline(set) => Ok((set, stats, version)),
        IncomingPartial::Chunked(stream) => Ok((stream.collect_set()?, stats, version)),
    }
}

/// Sends one RPC with the default [`RetryPolicy`] and decodes the
/// response, surfacing faults as errors.
pub fn send_rpc(
    net: &SimNetwork,
    from_host: &str,
    url: &Url,
    call: &RpcCall,
) -> Result<RpcResponse> {
    send_rpc_with(net, from_host, url, call, RetryPolicy::default())
}

/// Sends one RPC under an explicit [`RetryPolicy`].
///
/// Retryable failures (see [`FederationError::is_retryable`]) are re-sent
/// up to the policy's attempt budget, waiting exponentially longer in
/// *simulated* time before each retry (recorded on the caller→callee link
/// via `SimNetwork::record_retry`; nothing sleeps) and stopping early if
/// the next wait would cross the policy's deadline. Each wait is spread
/// by the policy's deterministic decorrelated jitter
/// ([`RetryPolicy::backoff_before_jittered`]) so callers that failed
/// together do not hammer a recovering node in lockstep. Fatal errors pass
/// through unchanged on whichever attempt they occur. When the budget is
/// exhausted after actual retries, the last failure is wrapped in
/// [`FederationError::NodeUnhealthy`] so the caller can degrade
/// gracefully; with a one-attempt policy the error surfaces unwrapped.
pub fn send_rpc_with(
    net: &SimNetwork,
    from_host: &str,
    url: &Url,
    call: &RpcCall,
    policy: RetryPolicy,
) -> Result<RpcResponse> {
    let mut waited = 0.0f64;
    let mut attempts_made = 0u32;
    let mut last_err: Option<FederationError> = None;
    for attempt in 1..=policy.attempts() {
        if attempt > 1 {
            let backoff = policy.backoff_before_jittered(attempt, from_host, &url.host);
            if waited + backoff > policy.deadline_s {
                break;
            }
            waited += backoff;
            net.record_retry(from_host, &url.host, backoff);
        }
        attempts_made = attempt;
        match send_rpc_once(net, from_host, url, call) {
            Ok(resp) => return Ok(resp),
            Err(e) if e.is_retryable() => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    let cause = last_err.expect("retry loop makes at least one attempt");
    if attempts_made > 1 {
        Err(FederationError::NodeUnhealthy {
            host: url.host.clone(),
            attempts: attempts_made,
            cause: Box::new(cause),
        })
    } else {
        Err(cause)
    }
}

/// One attempt: send, check the HTTP status line, decode the body.
fn send_rpc_once(
    net: &SimNetwork,
    from_host: &str,
    url: &Url,
    call: &RpcCall,
) -> Result<RpcResponse> {
    let req = HttpRequest::soap_post(url.path.clone(), &call.soap_action(), call.to_xml());
    let resp = net
        .send(from_host, url, req)
        .map_err(FederationError::Net)?;
    // An undecodable body is transport damage, not a protocol decision —
    // BadFrame keeps it retryable.
    let body = std::str::from_utf8(&resp.body).map_err(|_| {
        FederationError::Net(NetError::BadFrame {
            detail: "response body is not UTF-8".into(),
        })
    })?;
    if !resp.status.is_success() {
        // SOAP faults ride HTTP 500 per the binding: a well-formed fault
        // body is the service's (deterministic) answer. Anything else —
        // including a body that claims success despite the status line —
        // is a broken server.
        if let Ok(Err(fault)) = RpcResponse::parse(body) {
            return Err(FederationError::Fault(fault));
        }
        return Err(FederationError::Http {
            status: resp.status.code(),
            host: url.host.clone(),
        });
    }
    match RpcResponse::parse(body).map_err(FederationError::Soap)? {
        Ok(r) => Ok(r),
        Err(fault) => Err(FederationError::Fault(fault)),
    }
}

fn require_usize(resp: &RpcResponse, name: &str) -> Result<usize> {
    resp.require(name)?
        .as_i64()
        .filter(|v| *v >= 0)
        .map(|v| v as usize)
        .ok_or_else(|| FederationError::protocol(format!("{name} must be a non-negative integer")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_label_follows_the_band_formula() {
        // Bands of 0.1° from −90: dec −90 → 0, dec 0 → 900, dec +90 →
        // clamped to the last band (1799).
        assert_eq!(zone_label(-90.0, 0.1), 0);
        assert_eq!(zone_label(0.0, 0.1), 900);
        assert_eq!(zone_label(90.0, 0.1), 1799);
        // Non-positive / non-finite heights fall back to the default.
        assert_eq!(
            zone_label(0.0, 0.0),
            zone_label(0.0, DEFAULT_ZONE_HEIGHT_DEG)
        );
        assert_eq!(
            zone_label(0.0, f64::NAN),
            zone_label(0.0, DEFAULT_ZONE_HEIGHT_DEG)
        );
        // NaN declination lands in zone 0, matching the partitioner.
        assert_eq!(zone_label(f64::NAN, 0.1), 0);
        // Tiny heights are clamped so the band count stays bounded.
        assert_eq!(zone_label(90.0, 1e-9), zone_label(90.0, 1e-4));
    }
}
