//! The cross-match algorithm (paper §5.4).
//!
//! Positions are unit vectors; archive `i` measures with circular Gaussian
//! error σᵢ. For a tuple R = (o₁,…,o_k) the algorithm accumulates
//!
//! ```text
//! a  = Σ 1/σᵢ²     aₓ = Σ xᵢ/σᵢ²     a_y = Σ yᵢ/σᵢ²     a_z = Σ zᵢ/σᵢ²
//! ```
//!
//! The maximum-likelihood true position lies along `(aₓ, a_y, a_z)` and
//! the minimized chi-square is `χ²_min = 2·(a − |â|)`. The clause
//! `XMATCH(…) < t` accepts tuples with `χ²_min ≤ t²`.
//!
//! Because each archive adds a non-negative term, `χ²_min` never
//! decreases as the tuple grows — the pruning invariant that lets each
//! SkyNode discard partial tuples early. The per-step candidate search
//! radius uses the Gaussian-combination bound: appending an observation at
//! chord distance `d` from the current best position raises χ² by at
//! least `d²/(σᵢ² + 1/a)`, so candidates beyond
//! `√((t² − χ²)·(σᵢ² + 1/a))` cannot survive.
//!
//! This module is the node-side "stored procedure encoding the cross
//! match algorithm" (§5.3): [`seed_step`] runs at the last SkyNode of the
//! plan list (the first to execute), [`match_step`] at every mandatory
//! SkyNode upstream, and [`dropout_step`] at `!`-marked archives.

use skyquery_htm::{SkyPoint, Vec3};
use skyquery_sql::{Bindings, Expr, RowBindings, SqlError};
use skyquery_storage::{
    BatchScratch, ColumnDef, DataType, Database, PositionColumns, ProbeScratch, RangeSearchHit,
    Row, ScanOptions, Table, TableSchema, Value,
};
use skyquery_xml::VoTable;

use crate::error::{FederationError, Result};
use crate::region::Region;
use crate::result::{ResultColumn, ResultSet};

/// Multiplicative safety margin on the candidate search radius. Two
/// effects make the bound inexact at f64: the spherical re-normalization
/// perturbs the flat-3D Gaussian merge at O(σ²) relative, and
/// `χ² = 2(a − |â|)` suffers catastrophic cancellation (`a ≈ 10¹²` for
/// sub-arcsecond σ, so χ² carries ~10⁻⁴ absolute noise). The margin plus
/// the absolute slack below keep the pruning strictly conservative; the
/// distributed-vs-centralized property tests guard this.
const RADIUS_SAFETY: f64 = 1.0 + 1e-6;

/// Absolute chord-distance slack added to every search radius
/// (≈ 20 micro-arcseconds).
const RADIUS_SLACK: f64 = 1e-10;

/// Cumulative likelihood state of a partial tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TupleState {
    /// Σ 1/σᵢ².
    pub a: f64,
    /// Σ xᵢ/σᵢ².
    pub ax: f64,
    /// Σ yᵢ/σᵢ².
    pub ay: f64,
    /// Σ zᵢ/σᵢ².
    pub az: f64,
}

impl TupleState {
    /// State of a 1-tuple: a single observation.
    pub fn single(pos: Vec3, sigma_rad: f64) -> TupleState {
        let w = 1.0 / (sigma_rad * sigma_rad);
        TupleState {
            a: w,
            ax: pos.x * w,
            ay: pos.y * w,
            az: pos.z * w,
        }
    }

    /// The state after appending an observation from an archive with
    /// error `sigma_rad`.
    pub fn extended(&self, pos: Vec3, sigma_rad: f64) -> TupleState {
        let w = 1.0 / (sigma_rad * sigma_rad);
        TupleState {
            a: self.a + w,
            ax: self.ax + pos.x * w,
            ay: self.ay + pos.y * w,
            az: self.az + pos.z * w,
        }
    }

    /// |â| = √(aₓ² + a_y² + a_z²).
    fn norm(&self) -> f64 {
        (self.ax * self.ax + self.ay * self.ay + self.az * self.az).sqrt()
    }

    /// The minimized chi-square `2·(a − |â|)` (clamped at 0 against
    /// floating-point cancellation).
    pub fn chi2_min(&self) -> f64 {
        (2.0 * (self.a - self.norm())).max(0.0)
    }

    /// The log-likelihood at the best position, `−a + |â|` (the paper's
    /// form; equals `−χ²_min/2`).
    pub fn log_likelihood(&self) -> f64 {
        -self.a + self.norm()
    }

    /// The maximum-likelihood position: the unit vector along
    /// `(aₓ, a_y, a_z)`.
    pub fn best_position(&self) -> Option<Vec3> {
        Vec3::new(self.ax, self.ay, self.az).normalized()
    }

    /// Conservative chord-distance radius for candidate retrieval at the
    /// next archive: beyond it, no candidate can keep χ² within `t²`.
    pub fn search_radius(&self, threshold: f64, next_sigma_rad: f64) -> f64 {
        let budget = (threshold * threshold - self.chi2_min() + 1e-3).max(0.0);
        (budget * (next_sigma_rad * next_sigma_rad + 1.0 / self.a)).sqrt() * RADIUS_SAFETY
            + RADIUS_SLACK
    }
}

/// A partial tuple: cumulative state plus the carried column values.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialTuple {
    /// Cumulative likelihood state.
    pub state: TupleState,
    /// Carried column values, matching the owning set's `columns`.
    pub values: Row,
}

/// A set of partial tuples with their (qualified) column schema — the
/// payload that daisy-chains between SkyNodes.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialSet {
    /// Qualified columns (`alias.column`) accumulated so far.
    pub columns: Vec<ResultColumn>,
    /// The surviving partial tuples.
    pub tuples: Vec<PartialTuple>,
}

/// Names of the synthetic state columns in the wire encoding.
const STATE_COLS: [&str; 4] = ["__a", "__ax", "__ay", "__az"];

impl PartialSet {
    /// An empty set with the given carried columns.
    pub fn new(columns: Vec<ResultColumn>) -> PartialSet {
        PartialSet {
            columns,
            tuples: Vec::new(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether no tuples survive.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Wire encoding: four state columns then the carried columns.
    pub fn to_votable(&self) -> VoTable {
        let mut rs = ResultSet::new(
            STATE_COLS
                .iter()
                .map(|n| ResultColumn::new(*n, DataType::Float))
                .chain(self.columns.iter().cloned())
                .collect(),
        );
        for t in &self.tuples {
            let mut row = vec![
                Value::Float(t.state.a),
                Value::Float(t.state.ax),
                Value::Float(t.state.ay),
                Value::Float(t.state.az),
            ];
            row.extend(t.values.iter().cloned());
            rs.push_row(row).expect("state+values match columns");
        }
        rs.to_votable("partial")
    }

    /// Decodes the wire encoding.
    pub fn from_votable(t: &VoTable) -> Result<PartialSet> {
        let rs = ResultSet::from_votable(t)?;
        if rs.columns.len() < 4
            || rs.columns[..4]
                .iter()
                .zip(STATE_COLS)
                .any(|(c, n)| c.name != n)
        {
            return Err(FederationError::protocol(
                "partial-result table missing __a/__ax/__ay/__az state columns",
            ));
        }
        let columns = rs.columns[4..].to_vec();
        let mut tuples = Vec::with_capacity(rs.rows.len());
        for row in rs.rows {
            let f = |v: &Value, name: &str| {
                v.as_f64().ok_or_else(|| {
                    FederationError::protocol(format!("state column {name} is not numeric"))
                })
            };
            let state = TupleState {
                a: f(&row[0], "__a")?,
                ax: f(&row[1], "__ax")?,
                ay: f(&row[2], "__ay")?,
                az: f(&row[3], "__az")?,
            };
            tuples.push(PartialTuple {
                state,
                values: row[4..].to_vec(),
            });
        }
        Ok(PartialSet { columns, tuples })
    }
}

/// Selects the candidate-probe implementation for the match and drop-out
/// steps. Both kernels are byte-identical on outputs (the parity suite
/// enforces this); the HTM path stays as the region-query engine and as
/// the oracle in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchKernel {
    /// Columnar structure-of-arrays zone kernel: declination-zone buckets
    /// with binary-searched RA windows over packed unit vectors, probed
    /// through a reusable scratch (the default).
    #[default]
    Columnar,
    /// HTM trixel cover plus candidate walk (the original path).
    Htm,
    /// Batch kernel over compressed zone tiles: probes grouped by zone and
    /// sorted by RA sweep delta-encoded, bit-packed tiles in fixed-width
    /// branch-free lanes, with exact f64 refinement on accept.
    Batch,
}

impl MatchKernel {
    /// Canonical lowercase name (`columnar` / `htm` / `batch`), used by
    /// the plan wire format and the CLI knob.
    pub fn as_str(&self) -> &'static str {
        match self {
            MatchKernel::Columnar => "columnar",
            MatchKernel::Htm => "htm",
            MatchKernel::Batch => "batch",
        }
    }

    /// Parses a kernel name; `None` for anything unrecognized.
    pub fn parse(s: &str) -> Option<MatchKernel> {
        match s {
            "columnar" => Some(MatchKernel::Columnar),
            "htm" => Some(MatchKernel::Htm),
            "batch" => Some(MatchKernel::Batch),
            _ => None,
        }
    }
}

impl std::fmt::Display for MatchKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-node configuration of one cross-match step, extracted from the
/// federated execution plan.
#[derive(Debug, Clone)]
pub struct StepConfig {
    /// The alias this archive carries in the user query.
    pub alias: String,
    /// The primary table to search at this node.
    pub table: String,
    /// This survey's positional error, radians.
    pub sigma_rad: f64,
    /// XMATCH threshold `t` (standard deviations).
    pub threshold: f64,
    /// The AREA/POLYGON clause, if any.
    pub region: Option<Region>,
    /// This archive's local (single-alias) predicate.
    pub local_predicate: Option<Expr>,
    /// Columns of this archive to append to surviving tuples.
    pub carried_columns: Vec<String>,
    /// Worker threads this node's cross-match engine may use for the step
    /// (1 = the sequential path).
    pub xmatch_workers: usize,
    /// Declination zone height in degrees for the parallel zone engine.
    pub zone_height_deg: f64,
    /// Candidate-probe kernel for the match/drop-out steps.
    pub kernel: MatchKernel,
}

/// Evaluation statistics for one step (feeds the Figure-3 trace and the
/// pruning experiment E7).
///
/// Equality is engine-invariant: it compares only the counters that are a
/// pure function of the step's inputs (`tuples_in`, `candidates_probed`,
/// `chi2_accepted`, `tuples_out`). `candidates_examined` depends on the
/// kernel and index granularity, `scratch_reuse` on worker scheduling,
/// the tile/pruning counters (`tile_builds`, `tile_decodes`,
/// `tile_hits`, `shards_pruned`) on kernel choice and shard layout, and
/// the result-cache counters (`cache_hits`, `cache_misses`,
/// `cache_repairs`, `cache_evictions`) on what earlier submissions left
/// cached, and the replica counters (`failovers`, `hedges`,
/// `hedge_wins`) on which replicas happened to be reachable, so — like
/// `ExecutionTrace` excluding its clock — they are deliberately outside
/// `==`; parity tests can therefore compare stats across kernels, worker
/// counts, cache states, and replica layouts.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepStats {
    /// Partial tuples received from the previous step.
    pub tuples_in: usize,
    /// Candidate extensions evaluated at this node (rows inside the probe
    /// ball, before the chi² filter).
    pub candidates_probed: usize,
    /// Rows whose exact separation was computed (the kernel's candidate
    /// window: HTM cover entries or columnar zone-window rows).
    pub candidates_examined: usize,
    /// Candidates that passed the chi² threshold (for drop-out steps: the
    /// number of tuples for which a counterpart was found).
    pub chi2_accepted: usize,
    /// Probes that completed without growing the kernel's scratch buffers
    /// — i.e. zero-allocation probes.
    pub scratch_reuse: usize,
    /// Partial tuples forwarded to the next step.
    pub tuples_out: usize,
    /// Zone-tile snapshots (re)built for this step (batch kernel only;
    /// zero once the lazy cache is warm).
    pub tile_builds: usize,
    /// Zone tiles decoded while sweeping batch probe segments (batch
    /// kernel only).
    pub tile_decodes: usize,
    /// Lane-prefilter survivors refined with the exact separation test
    /// (batch kernel only).
    pub tile_hits: usize,
    /// Scatter-target shards skipped because their declination extent
    /// cannot intersect the input set's probe span (scatter steps only).
    pub shards_pruned: usize,
    /// Result-cache entries that served this submission without
    /// re-executing its chain (Portal-side; at most 1 per submission).
    pub cache_hits: usize,
    /// Submissions that consulted the result cache and found no valid
    /// entry (Portal-side).
    pub cache_misses: usize,
    /// Stale cache entries repaired incrementally by probing only delta
    /// rows instead of being discarded (Portal-side).
    pub cache_repairs: usize,
    /// Cache entries evicted — lease expiry, capacity pressure, or a
    /// version regression that made repair impossible (Portal-side).
    pub cache_evictions: usize,
    /// Scatter probes re-issued to a sibling replica after the picked
    /// replica proved unhealthy (Portal-side; scatter steps only).
    pub failovers: usize,
    /// Hedged duplicate probes issued because the picked replica's reply
    /// exceeded the configured hedge delay (Portal-side).
    pub hedges: usize,
    /// Hedged probes whose sibling reply won the first-response race
    /// (Portal-side; the duplicate loser is reconciled away).
    pub hedge_wins: usize,
}

impl PartialEq for StepStats {
    fn eq(&self, other: &Self) -> bool {
        self.tuples_in == other.tuples_in
            && self.candidates_probed == other.candidates_probed
            && self.chi2_accepted == other.chi2_accepted
            && self.tuples_out == other.tuples_out
    }
}
impl Eq for StepStats {}

/// Precomputed per-step lookup state shared by the sequential step
/// functions and the parallel zone engine: the step table's schema, its
/// position column indexes, and the qualified columns the step appends.
/// Building it once lets the per-tuple kernels run against plain `&Table`
/// references, so zone workers never touch the database mutably.
#[derive(Debug, Clone)]
pub struct StepContext {
    /// The step table's schema (cloned out of the database).
    pub schema: TableSchema,
    /// Column index of the table's right-ascension column.
    pub ra_ci: usize,
    /// Column index of the table's declination column.
    pub dec_ci: usize,
    /// Qualified result columns (`alias.column`) this step appends.
    pub appended: Vec<ResultColumn>,
    /// Column indexes of the carried columns, precomputed so the match
    /// kernel appends values by index instead of by name lookup.
    pub carried_ci: Vec<usize>,
}

impl StepContext {
    /// Resolves the context for one step against the archive database.
    pub fn new(db: &Database, cfg: &StepConfig) -> Result<StepContext> {
        let (_, ra_ci, dec_ci) = position_columns(db, &cfg.table)?;
        let schema = db.schema(&cfg.table)?.clone();
        let appended = carried_result_columns(cfg, &schema)?;
        let carried_ci = cfg
            .carried_columns
            .iter()
            .map(|c| schema.column_index(c).expect("validated above"))
            .collect();
        Ok(StepContext {
            schema,
            ra_ci,
            dec_ci,
            appended,
            carried_ci,
        })
    }
}

/// The candidate search ball for extending one partial tuple: its
/// maximum-likelihood center and the conservative pruning radius. `None`
/// for a degenerate state with no defined best position — such tuples
/// cannot be extended and silently leave the chain (in both the match and
/// the drop-out step).
pub fn probe_ball(state: &TupleState, cfg: &StepConfig) -> Option<(SkyPoint, f64)> {
    let best = state.best_position()?;
    Some((
        SkyPoint::from_vec3(best),
        state.search_radius(cfg.threshold, cfg.sigma_rad),
    ))
}

fn position_columns(db: &Database, table: &str) -> Result<(PositionColumns, usize, usize)> {
    let schema = db.schema(table)?;
    let pos = schema.position.clone().ok_or_else(|| {
        FederationError::Storage(skyquery_storage::StorageError::NoPositionIndex {
            table: table.to_string(),
        })
    })?;
    let ra_ci = schema.column_index(&pos.ra).unwrap();
    let dec_ci = schema.column_index(&pos.dec).unwrap();
    Ok((pos, ra_ci, dec_ci))
}

fn row_passes(
    cfg: &StepConfig,
    schema: &TableSchema,
    row: &Row,
) -> std::result::Result<bool, SqlError> {
    match &cfg.local_predicate {
        None => Ok(true),
        Some(pred) => pred.eval_predicate(&RowBindings {
            alias: &cfg.alias,
            schema,
            row,
        }),
    }
}

fn carried_result_columns(cfg: &StepConfig, schema: &TableSchema) -> Result<Vec<ResultColumn>> {
    cfg.carried_columns
        .iter()
        .map(|c| {
            let def = schema.column(c).ok_or_else(|| {
                FederationError::protocol(format!(
                    "carried column {}.{c} does not exist in table {}",
                    cfg.alias, cfg.table
                ))
            })?;
            Ok(ResultColumn::new(format!("{}.{}", cfg.alias, c), def.dtype))
        })
        .collect()
}

fn carried_values(cfg: &StepConfig, schema: &TableSchema, row: &Row) -> Row {
    cfg.carried_columns
        .iter()
        .map(|c| row[schema.column_index(c).expect("validated")].clone())
        .collect()
}

/// The first executed step (at the *last* SkyNode of the plan list):
/// selects rows satisfying AREA and the local predicate, emitting
/// 1-tuples. "The first archive just needs to send 1-tuples comprising of
/// objects that satisfy the other clauses in the query" (§5.4).
pub fn seed_step(db: &mut Database, cfg: &StepConfig) -> Result<(PartialSet, StepStats)> {
    let (_, ra_ci, dec_ci) = position_columns(db, &cfg.table)?;
    let schema = db.schema(&cfg.table)?.clone();
    let columns = carried_result_columns(cfg, &schema)?;
    let mut out = PartialSet::new(columns);
    let mut stats = StepStats::default();

    let row_ids: Vec<usize> = match &cfg.region {
        Some(region) => db.region_search(
            &cfg.table,
            &region.as_convex_region(),
            ScanOptions::default(),
        )?,
        None => db.scan_filter(&cfg.table, ScanOptions::default(), |_, _| true)?,
    };
    stats.candidates_probed = row_ids.len();
    // The seed step has one kernel: every selected row is both examined
    // and probed, and the rows passing the local predicate are "accepted".
    stats.candidates_examined = row_ids.len();

    for rid in row_ids {
        let row = db.table(&cfg.table)?.row(rid).expect("row exists").clone();
        if !row_passes(cfg, &schema, &row).map_err(FederationError::Sql)? {
            continue;
        }
        let ra = row[ra_ci].as_f64().expect("position column");
        let dec = row[dec_ci].as_f64().expect("position column");
        let pos = SkyPoint::from_radec_deg(ra, dec).to_vec3();
        out.tuples.push(PartialTuple {
            state: TupleState::single(pos, cfg.sigma_rad),
            values: carried_values(cfg, &schema, &row),
        });
    }
    stats.chi2_accepted = out.len();
    stats.tuples_out = out.len();
    Ok((out, stats))
}

/// Filters one candidate row through the step's region and local
/// predicate, returning its observation position when it qualifies. The
/// order of checks (region, then predicate) is shared by the match and
/// drop-out kernels.
fn qualify_hit(cfg: &StepConfig, ctx: &StepContext, row: &Row) -> Result<Option<Vec3>> {
    let ra = row[ctx.ra_ci].as_f64().expect("position column");
    let dec = row[ctx.dec_ci].as_f64().expect("position column");
    // The spatial range applies to every archive's objects.
    if let Some(region) = &cfg.region {
        if !region.contains(SkyPoint::from_radec_deg(ra, dec)) {
            return Ok(None);
        }
    }
    if !row_passes(cfg, &ctx.schema, row).map_err(FederationError::Sql)? {
        return Ok(None);
    }
    Ok(Some(SkyPoint::from_radec_deg(ra, dec).to_vec3()))
}

/// Match kernel for one partial tuple: evaluates every candidate hit (in
/// the hits' row-id order) and appends the surviving extensions to `out`,
/// returning how many passed the chi² threshold. Runs against a read-only
/// table reference so zone workers can share the archive across threads.
pub fn extend_tuple(
    cfg: &StepConfig,
    ctx: &StepContext,
    table: &Table,
    state: &TupleState,
    carried: &[Value],
    hits: &[RangeSearchHit],
    out: &mut Vec<PartialTuple>,
) -> Result<usize> {
    let mut staging = Vec::new();
    extend_tuple_staged(cfg, ctx, table, state, carried, hits, &mut staging, out)
}

/// [`extend_tuple`] with an external carried-value staging buffer (the
/// columnar kernel's [`ProbeScratch`] supplies one), so a long probe loop
/// stages appended values without per-tuple allocation; the staged values
/// then *move* into the exact-capacity output row.
#[allow(clippy::too_many_arguments)] // extend_tuple plus the staging sink
pub fn extend_tuple_staged(
    cfg: &StepConfig,
    ctx: &StepContext,
    table: &Table,
    state: &TupleState,
    carried: &[Value],
    hits: &[RangeSearchHit],
    staging: &mut Vec<Value>,
    out: &mut Vec<PartialTuple>,
) -> Result<usize> {
    let mut accepted = 0usize;
    for hit in hits {
        let row = table.row(hit.row).expect("hit row exists");
        let Some(pos) = qualify_hit(cfg, ctx, row)? else {
            continue;
        };
        let new_state = state.extended(pos, cfg.sigma_rad);
        if new_state.chi2_min() <= cfg.threshold * cfg.threshold {
            staging.clear();
            for &ci in &ctx.carried_ci {
                staging.push(row[ci].clone());
            }
            let mut values = Vec::with_capacity(carried.len() + staging.len());
            values.extend_from_slice(carried);
            values.append(staging);
            out.push(PartialTuple {
                state: new_state,
                values,
            });
            accepted += 1;
        }
    }
    Ok(accepted)
}

/// Drop-out kernel for one partial tuple: whether any candidate hit would
/// keep the tuple within the threshold (in which case the drop-out step
/// discards it).
pub fn tuple_has_counterpart(
    cfg: &StepConfig,
    ctx: &StepContext,
    table: &Table,
    state: &TupleState,
    hits: &[RangeSearchHit],
) -> Result<bool> {
    for hit in hits {
        let row = table.row(hit.row).expect("hit row exists");
        let Some(pos) = qualify_hit(cfg, ctx, row)? else {
            continue;
        };
        if state.extended(pos, cfg.sigma_rad).chi2_min() <= cfg.threshold * cfg.threshold {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Materializes incoming tuples into a temp table (faithful to §5.3: the
/// Cross match service "insert\[s\] the values in the database object into a
/// temporary table"), then extends each against this archive's objects.
pub fn match_step(
    db: &mut Database,
    cfg: &StepConfig,
    incoming: &PartialSet,
) -> Result<(PartialSet, StepStats)> {
    let ctx = StepContext::new(db, cfg)?;
    let mut columns = incoming.columns.clone();
    columns.extend(ctx.appended.iter().cloned());

    let temp = materialize_temp(db, incoming)?;

    let mut out = PartialSet::new(columns);
    let mut stats = StepStats {
        tuples_in: incoming.len(),
        ..StepStats::default()
    };

    // Walk the temp table (charging the cache like a real join would),
    // recovering each tuple's state and carried values.
    let temp_rows = db.table(&temp)?.rows().to_vec();
    match cfg.kernel {
        MatchKernel::Htm => {
            for trow in &temp_rows {
                let (state, carried) = decode_materialized(trow);
                let Some((center, radius)) = probe_ball(&state, cfg) else {
                    continue;
                };
                let (hits, examined) =
                    db.range_search_counted(&cfg.table, center, radius, ScanOptions::default())?;
                stats.candidates_probed += hits.len();
                stats.candidates_examined += examined;
                stats.chi2_accepted += extend_tuple(
                    cfg,
                    &ctx,
                    db.table(&cfg.table)?,
                    &state,
                    carried,
                    &hits,
                    &mut out.tuples,
                )?;
            }
            db.drop_table(&temp)?;
        }
        MatchKernel::Columnar => {
            // Drop the temp before taking shared borrows; the rows are
            // already copied out.
            db.drop_table(&temp)?;
            db.ensure_columnar(&cfg.table, cfg.zone_height_deg)
                .map_err(FederationError::Storage)?;
            let table = db.table(&cfg.table)?;
            let cols = db
                .columnar_positions(&cfg.table)
                .expect("ensure_columnar above");
            let mut scratch = ProbeScratch::new();
            for trow in &temp_rows {
                let (state, carried) = decode_materialized(trow);
                let Some((center, radius)) = probe_ball(&state, cfg) else {
                    continue;
                };
                let probe = cols.probe(center, radius, &mut scratch);
                stats.candidates_examined += probe.examined;
                stats.scratch_reuse += usize::from(probe.reused);
                let (hits, staging) = scratch.parts();
                stats.candidates_probed += hits.len();
                stats.chi2_accepted += extend_tuple_staged(
                    cfg,
                    &ctx,
                    table,
                    &state,
                    carried,
                    hits,
                    staging,
                    &mut out.tuples,
                )?;
            }
        }
        MatchKernel::Batch => {
            db.drop_table(&temp)?;
            stats.tile_builds += usize::from(
                db.ensure_tiles(&cfg.table, cfg.zone_height_deg)
                    .map_err(FederationError::Storage)?,
            );
            let table = db.table(&cfg.table)?;
            let tiles = db.zone_tiles(&cfg.table).expect("ensure_tiles above");
            // Decode every tuple first so the whole chunk probes as one
            // batch; tuples without a probe ball never enter the kernel.
            let mut decoded = Vec::with_capacity(temp_rows.len());
            let mut probes: Vec<(SkyPoint, f64)> = Vec::with_capacity(temp_rows.len());
            for trow in &temp_rows {
                let (state, carried) = decode_materialized(trow);
                let Some(ball) = probe_ball(&state, cfg) else {
                    continue;
                };
                decoded.push((state, carried));
                probes.push(ball);
            }
            let mut batch = BatchScratch::new();
            let bstats = tiles.probe_batch(&probes, &mut batch);
            stats.candidates_examined += bstats.examined;
            stats.scratch_reuse += bstats.reused;
            stats.tile_decodes += bstats.tile_decodes;
            stats.tile_hits += bstats.tile_hits;
            let mut staging = Vec::new();
            for (i, (state, carried)) in decoded.iter().enumerate() {
                let hits = batch.group(i);
                stats.candidates_probed += hits.len();
                stats.chi2_accepted += extend_tuple_staged(
                    cfg,
                    &ctx,
                    table,
                    state,
                    carried,
                    hits,
                    &mut staging,
                    &mut out.tuples,
                )?;
            }
        }
    }
    stats.tuples_out = out.len();
    Ok((out, stats))
}

/// The drop-out ("exclusive outer join") step: a tuple survives only if
/// **no** object at this archive could keep it within the threshold.
/// Surviving tuples pass through with state and values unchanged.
pub fn dropout_step(
    db: &mut Database,
    cfg: &StepConfig,
    incoming: &PartialSet,
) -> Result<(PartialSet, StepStats)> {
    let ctx = StepContext::new(db, cfg)?;
    let mut out = PartialSet::new(incoming.columns.clone());
    let mut stats = StepStats {
        tuples_in: incoming.len(),
        ..StepStats::default()
    };
    match cfg.kernel {
        MatchKernel::Htm => {
            for tuple in &incoming.tuples {
                let Some((center, radius)) = probe_ball(&tuple.state, cfg) else {
                    continue;
                };
                let (hits, examined) =
                    db.range_search_counted(&cfg.table, center, radius, ScanOptions::default())?;
                stats.candidates_probed += hits.len();
                stats.candidates_examined += examined;
                let found =
                    tuple_has_counterpart(cfg, &ctx, db.table(&cfg.table)?, &tuple.state, &hits)?;
                stats.chi2_accepted += usize::from(found);
                if !found {
                    out.tuples.push(tuple.clone());
                }
            }
        }
        MatchKernel::Columnar => {
            db.ensure_columnar(&cfg.table, cfg.zone_height_deg)
                .map_err(FederationError::Storage)?;
            let table = db.table(&cfg.table)?;
            let cols = db
                .columnar_positions(&cfg.table)
                .expect("ensure_columnar above");
            let mut scratch = ProbeScratch::new();
            for tuple in &incoming.tuples {
                let Some((center, radius)) = probe_ball(&tuple.state, cfg) else {
                    continue;
                };
                let probe = cols.probe(center, radius, &mut scratch);
                stats.candidates_examined += probe.examined;
                stats.scratch_reuse += usize::from(probe.reused);
                stats.candidates_probed += scratch.hits().len();
                let found = tuple_has_counterpart(cfg, &ctx, table, &tuple.state, scratch.hits())?;
                stats.chi2_accepted += usize::from(found);
                if !found {
                    out.tuples.push(tuple.clone());
                }
            }
        }
        MatchKernel::Batch => {
            stats.tile_builds += usize::from(
                db.ensure_tiles(&cfg.table, cfg.zone_height_deg)
                    .map_err(FederationError::Storage)?,
            );
            let table = db.table(&cfg.table)?;
            let tiles = db.zone_tiles(&cfg.table).expect("ensure_tiles above");
            let mut tuples = Vec::with_capacity(incoming.tuples.len());
            let mut probes: Vec<(SkyPoint, f64)> = Vec::with_capacity(incoming.tuples.len());
            for tuple in &incoming.tuples {
                let Some(ball) = probe_ball(&tuple.state, cfg) else {
                    continue;
                };
                tuples.push(tuple);
                probes.push(ball);
            }
            let mut batch = BatchScratch::new();
            let bstats = tiles.probe_batch(&probes, &mut batch);
            stats.candidates_examined += bstats.examined;
            stats.scratch_reuse += bstats.reused;
            stats.tile_decodes += bstats.tile_decodes;
            stats.tile_hits += bstats.tile_hits;
            for (i, tuple) in tuples.iter().enumerate() {
                let hits = batch.group(i);
                stats.candidates_probed += hits.len();
                let found = tuple_has_counterpart(cfg, &ctx, table, &tuple.state, hits)?;
                stats.chi2_accepted += usize::from(found);
                if !found {
                    out.tuples.push((*tuple).clone());
                }
            }
        }
    }
    stats.tuples_out = out.len();
    Ok((out, stats))
}

/// Bindings over a partial tuple's qualified columns, used to evaluate
/// cross-archive residual clauses.
pub struct TupleBindings<'a> {
    /// The partial set's qualified columns.
    pub columns: &'a [ResultColumn],
    /// One tuple's values.
    pub values: &'a Row,
}

impl Bindings for TupleBindings<'_> {
    fn resolve(&self, alias: &str, column: &str) -> std::result::Result<Value, SqlError> {
        let q = format!("{alias}.{column}");
        match self.columns.iter().position(|c| c.name == q) {
            Some(i) => Ok(self.values[i].clone()),
            None => Err(SqlError::eval(format!("column {q} not carried in tuple"))),
        }
    }
}

/// Applies residual (multi-archive) conjuncts to a partial set, keeping
/// tuples where every residual is satisfied.
pub fn apply_residuals(set: PartialSet, residuals: &[Expr]) -> Result<PartialSet> {
    if residuals.is_empty() {
        return Ok(set);
    }
    let columns = set.columns;
    let mut kept = Vec::new();
    for tuple in set.tuples {
        let b = TupleBindings {
            columns: &columns,
            values: &tuple.values,
        };
        let mut ok = true;
        for r in residuals {
            if !r.eval_predicate(&b).map_err(FederationError::Sql)? {
                ok = false;
                break;
            }
        }
        if ok {
            kept.push(tuple);
        }
    }
    Ok(PartialSet {
        columns,
        tuples: kept,
    })
}

/// Inserts a partial set into a temp table (state + carried columns) and
/// returns the table's name. Public so the parallel zone engine can run
/// the same §5.3 materialization — both engines then read tuple values
/// back out of the temp rows, so schema conformance (e.g. numeric
/// coercion on insert) cannot make their outputs diverge.
pub fn materialize_temp(db: &mut Database, set: &PartialSet) -> Result<String> {
    let mut cols: Vec<ColumnDef> = STATE_COLS
        .iter()
        .map(|n| ColumnDef::new(*n, DataType::Float))
        .collect();
    for c in &set.columns {
        cols.push(ColumnDef::new(c.name.clone(), c.dtype).nullable());
    }
    let temp = db.create_temp_table(TableSchema::new("partial", cols))?;
    for t in &set.tuples {
        let mut row = vec![
            Value::Float(t.state.a),
            Value::Float(t.state.ax),
            Value::Float(t.state.ay),
            Value::Float(t.state.az),
        ];
        row.extend(t.values.iter().cloned());
        db.insert(&temp, row)?;
    }
    Ok(temp)
}

/// Splits a materialized temp-table row back into its tuple state and
/// carried values (the inverse of [`materialize_temp`]'s row layout).
pub fn decode_materialized(row: &Row) -> (TupleState, &[Value]) {
    (
        TupleState {
            a: row[0].as_f64().expect("state column"),
            ax: row[1].as_f64().expect("state column"),
            ay: row[2].as_f64().expect("state column"),
            az: row[3].as_f64().expect("state column"),
        },
        &row[4..],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyquery_sql::parse_expr;
    use skyquery_storage::BufferCache;

    const ARCSEC: f64 = 1.0 / 3600.0;

    fn sigma_rad(arcsec: f64) -> f64 {
        (arcsec * ARCSEC).to_radians()
    }

    /// Builds an archive database named `name` with objects at the given
    /// (ra, dec, flux) positions.
    fn archive(name: &str, objects: &[(f64, f64, f64)]) -> Database {
        let mut db = Database::with_cache(name, BufferCache::new(1024, 8));
        let schema = TableSchema::new(
            "objects",
            vec![
                ColumnDef::new("object_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
                ColumnDef::new("flux", DataType::Float),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 14))
        .unwrap();
        db.create_table(schema).unwrap();
        for (i, &(ra, dec, flux)) in objects.iter().enumerate() {
            db.insert(
                "objects",
                vec![
                    Value::Id(i as u64 + 1),
                    Value::Float(ra),
                    Value::Float(dec),
                    Value::Float(flux),
                ],
            )
            .unwrap();
        }
        db
    }

    fn cfg(alias: &str, sigma_arcsec: f64, threshold: f64) -> StepConfig {
        StepConfig {
            alias: alias.into(),
            table: "objects".into(),
            sigma_rad: sigma_rad(sigma_arcsec),
            threshold,
            region: None,
            local_predicate: None,
            carried_columns: vec!["object_id".into()],
            xmatch_workers: 1,
            zone_height_deg: crate::plan::DEFAULT_ZONE_HEIGHT_DEG,
            kernel: MatchKernel::default(),
        }
    }

    #[test]
    fn single_observation_chi2_is_zero() {
        let p = SkyPoint::from_radec_deg(185.0, -0.5).to_vec3();
        let s = TupleState::single(p, sigma_rad(0.1));
        assert!(s.chi2_min() < 1e-9);
        assert!((s.log_likelihood()).abs() < 1e-3);
        let best = s.best_position().unwrap();
        assert!(best.angle_to(p) < 1e-12);
    }

    #[test]
    fn coincident_observations_match_perfectly() {
        let p = SkyPoint::from_radec_deg(100.0, 20.0).to_vec3();
        let s = TupleState::single(p, sigma_rad(0.2)).extended(p, sigma_rad(0.3));
        assert!(s.chi2_min() < 1e-9);
    }

    #[test]
    fn separated_observations_raise_chi2() {
        // Two observations 1 arcsec apart with σ = 0.2 arcsec each:
        // χ² ≈ d²/(σ₁²+σ₂²) = 1/(0.08) = 12.5.
        let p1 = SkyPoint::from_radec_deg(100.0, 20.0).to_vec3();
        let p2 = SkyPoint::from_radec_deg(100.0, 20.0 + ARCSEC).to_vec3();
        let s = TupleState::single(p1, sigma_rad(0.2)).extended(p2, sigma_rad(0.2));
        let expected = 1.0 / 0.08;
        // χ² = 2(a − |â|) with a ≈ 10¹² loses ~5 significant digits to
        // cancellation; 10⁻³ relative is the attainable f64 accuracy here.
        let rel = (s.chi2_min() - expected).abs() / expected;
        assert!(rel < 1e-3, "chi2 {} vs expected {expected}", s.chi2_min());
    }

    #[test]
    fn chi2_is_monotone_in_tuple_length() {
        let p1 = SkyPoint::from_radec_deg(10.0, 10.0).to_vec3();
        let p2 = SkyPoint::from_radec_deg(10.0, 10.0 + 0.4 * ARCSEC).to_vec3();
        let p3 = SkyPoint::from_radec_deg(10.0 + 0.5 * ARCSEC, 10.0).to_vec3();
        let s1 = TupleState::single(p1, sigma_rad(0.3));
        let s2 = s1.extended(p2, sigma_rad(0.25));
        let s3 = s2.extended(p3, sigma_rad(0.5));
        assert!(s1.chi2_min() <= s2.chi2_min() + 1e-12);
        assert!(s2.chi2_min() <= s3.chi2_min() + 1e-12);
    }

    #[test]
    fn symmetric_in_order() {
        // §5.4: "This XMATCH scheme is fully symmetric; the particular
        // order of the archives considered doesn't matter."
        let pts = [
            (
                SkyPoint::from_radec_deg(42.0, -7.0).to_vec3(),
                sigma_rad(0.1),
            ),
            (
                SkyPoint::from_radec_deg(42.0 + 0.2 * ARCSEC, -7.0).to_vec3(),
                sigma_rad(0.35),
            ),
            (
                SkyPoint::from_radec_deg(42.0, -7.0 - 0.3 * ARCSEC).to_vec3(),
                sigma_rad(0.8),
            ),
        ];
        let forward = TupleState::single(pts[0].0, pts[0].1)
            .extended(pts[1].0, pts[1].1)
            .extended(pts[2].0, pts[2].1);
        let backward = TupleState::single(pts[2].0, pts[2].1)
            .extended(pts[1].0, pts[1].1)
            .extended(pts[0].0, pts[0].1);
        assert!((forward.chi2_min() - backward.chi2_min()).abs() < 1e-9);
    }

    #[test]
    fn seed_then_match_finds_pairs() {
        // Archive A: three objects; archive B: counterparts for two of
        // them (within ~0.3 arcsec) plus an unrelated object.
        let mut a = archive(
            "A",
            &[(120.0, 30.0, 5.0), (121.0, 30.0, 6.0), (122.0, 30.0, 7.0)],
        );
        let mut b = archive(
            "B",
            &[
                (120.0 + 0.2 * ARCSEC, 30.0, 1.0),
                (121.0, 30.0 - 0.25 * ARCSEC, 2.0),
                (150.0, -10.0, 3.0),
            ],
        );
        let (seed, st) = seed_step(&mut a, &cfg("A", 0.3, 3.5)).unwrap();
        assert_eq!(seed.len(), 3);
        assert_eq!(st.tuples_out, 3);
        let (matched, st2) = match_step(&mut b, &cfg("B", 0.3, 3.5), &seed).unwrap();
        assert_eq!(st2.tuples_in, 3);
        assert_eq!(matched.len(), 2, "two bodies have counterparts");
        // Carried columns are qualified.
        assert_eq!(
            matched
                .columns
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["A.object_id", "B.object_id"]
        );
    }

    #[test]
    fn tight_threshold_rejects_distant_pairs() {
        let mut a = archive("A", &[(120.0, 30.0, 5.0)]);
        // Counterpart 2 arcsec away, σ = 0.3: χ ≈ 2/0.42 ≈ 4.7σ.
        let mut b = archive("B", &[(120.0 + 2.0 * ARCSEC, 30.0, 1.0)]);
        let (seed, _) = seed_step(&mut a, &cfg("A", 0.3, 3.5)).unwrap();
        let (matched, _) = match_step(&mut b, &cfg("B", 0.3, 3.5), &seed).unwrap();
        assert!(matched.is_empty());
        // A looser threshold accepts it.
        let (seed, _) = seed_step(&mut a, &cfg("A", 0.3, 8.0)).unwrap();
        let (matched, _) = match_step(&mut b, &cfg("B", 0.3, 8.0), &seed).unwrap();
        assert_eq!(matched.len(), 1);
    }

    #[test]
    fn local_predicate_filters_at_node() {
        let mut a = archive("A", &[(10.0, 10.0, 5.0), (11.0, 10.0, 25.0)]);
        let mut c = cfg("A", 0.3, 3.5);
        c.local_predicate = Some(parse_expr("A.flux > 10").unwrap());
        let (seed, _) = seed_step(&mut a, &c).unwrap();
        assert_eq!(seed.len(), 1);
    }

    #[test]
    fn area_clause_limits_seed_and_match() {
        let mut a = archive("A", &[(10.0, 10.0, 1.0), (40.0, 10.0, 1.0)]);
        let mut b = archive("B", &[(10.0, 10.0, 1.0), (40.0, 10.0, 1.0)]);
        let area = Some(Region::Circle {
            center: SkyPoint::from_radec_deg(10.0, 10.0),
            radius_rad: 1.0_f64.to_radians(),
        });
        let mut ca = cfg("A", 0.3, 3.5);
        ca.region = area.clone();
        let mut cb = cfg("B", 0.3, 3.5);
        cb.region = area;
        let (seed, _) = seed_step(&mut a, &ca).unwrap();
        assert_eq!(seed.len(), 1, "only the in-area object seeds");
        let (matched, _) = match_step(&mut b, &cb, &seed).unwrap();
        assert_eq!(matched.len(), 1);
    }

    #[test]
    fn dropout_removes_tuples_with_counterparts() {
        let mut a = archive("A", &[(10.0, 10.0, 1.0), (11.0, 10.0, 1.0)]);
        // Drop-out archive has a counterpart only for the first object.
        let mut p = archive("P", &[(10.0 + 0.1 * ARCSEC, 10.0, 1.0)]);
        let (seed, _) = seed_step(&mut a, &cfg("A", 0.3, 3.5)).unwrap();
        let (survivors, st) = dropout_step(&mut p, &cfg("P", 0.3, 3.5), &seed).unwrap();
        assert_eq!(st.tuples_in, 2);
        assert_eq!(survivors.len(), 1, "tuple with a P counterpart is dropped");
        // The survivor is the object at ra=11.
        assert_eq!(survivors.tuples[0].values[0], Value::Id(2));
        // State unchanged (no extension by a drop-out).
        assert!((survivors.tuples[0].state.chi2_min()).abs() < 1e-12);
    }

    #[test]
    fn distributed_equals_centralized_bruteforce() {
        // Three archives with correlated objects; compare the chain
        // result against an exhaustive N³ evaluation of the same math.
        let bodies = [
            (200.0, -45.0),
            (200.001, -45.0),
            (200.0, -44.999),
            (200.002, -45.002),
        ];
        let jitter = [0.1 * ARCSEC, -0.15 * ARCSEC, 0.2 * ARCSEC, 0.05 * ARCSEC];
        let mk = |shift: f64| -> Vec<(f64, f64, f64)> {
            bodies
                .iter()
                .zip(jitter)
                .map(|(&(ra, dec), j)| (ra + j * shift, dec + j, 1.0))
                .collect()
        };
        let objs_a = mk(1.0);
        let objs_b = mk(-1.0);
        let objs_c = mk(0.5);
        let mut a = archive("A", &objs_a);
        let mut b = archive("B", &objs_b);
        let mut c = archive("C", &objs_c);
        let t = 3.0;
        let sig = [0.2, 0.3, 0.25];

        let (s1, _) = seed_step(&mut a, &cfg("A", sig[0], t)).unwrap();
        let (s2, _) = match_step(&mut b, &cfg("B", sig[1], t), &s1).unwrap();
        let (s3, _) = match_step(&mut c, &cfg("C", sig[2], t), &s2).unwrap();
        let mut distributed: Vec<(u64, u64, u64)> = s3
            .tuples
            .iter()
            .map(|tp| {
                (
                    tp.values[0].as_id().unwrap(),
                    tp.values[1].as_id().unwrap(),
                    tp.values[2].as_id().unwrap(),
                )
            })
            .collect();
        distributed.sort_unstable();

        // Brute force.
        let mut brute = Vec::new();
        for (i, &(ra1, dec1, _)) in objs_a.iter().enumerate() {
            for (j, &(ra2, dec2, _)) in objs_b.iter().enumerate() {
                for (k, &(ra3, dec3, _)) in objs_c.iter().enumerate() {
                    let s = TupleState::single(
                        SkyPoint::from_radec_deg(ra1, dec1).to_vec3(),
                        sigma_rad(sig[0]),
                    )
                    .extended(
                        SkyPoint::from_radec_deg(ra2, dec2).to_vec3(),
                        sigma_rad(sig[1]),
                    )
                    .extended(
                        SkyPoint::from_radec_deg(ra3, dec3).to_vec3(),
                        sigma_rad(sig[2]),
                    );
                    if s.chi2_min() <= t * t {
                        brute.push((i as u64 + 1, j as u64 + 1, k as u64 + 1));
                    }
                }
            }
        }
        brute.sort_unstable();
        assert_eq!(distributed, brute);
        assert!(!distributed.is_empty(), "test should exercise matches");
    }

    #[test]
    fn partial_set_votable_roundtrip() {
        let mut a = archive("A", &[(10.0, 10.0, 1.0), (11.0, 11.0, 2.0)]);
        let mut c = cfg("A", 0.3, 3.5);
        c.carried_columns = vec!["object_id".into(), "flux".into()];
        let (seed, _) = seed_step(&mut a, &c).unwrap();
        let t = seed.to_votable();
        let back = PartialSet::from_votable(&t).unwrap();
        assert_eq!(back.columns, seed.columns);
        assert_eq!(back.len(), seed.len());
        for (x, y) in back.tuples.iter().zip(&seed.tuples) {
            assert_eq!(x.values, y.values);
            assert!((x.state.a - y.state.a).abs() < 1e-15);
            assert!((x.state.ax - y.state.ax).abs() < 1e-15);
        }
    }

    #[test]
    fn from_votable_rejects_missing_state() {
        let mut rs = ResultSet::new(vec![ResultColumn::new("x", DataType::Float)]);
        rs.push_row(vec![Value::Float(1.0)]).unwrap();
        let t = rs.to_votable("partial");
        assert!(PartialSet::from_votable(&t).is_err());
    }

    #[test]
    fn residual_filtering() {
        let columns = vec![
            ResultColumn::new("O.i_flux", DataType::Float),
            ResultColumn::new("T.i_flux", DataType::Float),
        ];
        let p = SkyPoint::from_radec_deg(0.0, 0.0).to_vec3();
        let mk = |o: f64, t: f64| PartialTuple {
            state: TupleState::single(p, sigma_rad(0.2)),
            values: vec![Value::Float(o), Value::Float(t)],
        };
        let set = PartialSet {
            columns,
            tuples: vec![mk(10.0, 5.0), mk(5.0, 4.5), mk(9.0, 2.0)],
        };
        let residual = parse_expr("(O.i_flux - T.i_flux) > 2").unwrap();
        let out = apply_residuals(set, &[residual]).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn residual_referencing_uncarried_column_errors() {
        let set = PartialSet {
            columns: vec![ResultColumn::new("O.x", DataType::Float)],
            tuples: vec![PartialTuple {
                state: TupleState::single(
                    SkyPoint::from_radec_deg(0.0, 0.0).to_vec3(),
                    sigma_rad(0.2),
                ),
                values: vec![Value::Float(1.0)],
            }],
        };
        let residual = parse_expr("O.y > 2").unwrap();
        assert!(apply_residuals(set, &[residual]).is_err());
    }

    #[test]
    fn kernels_agree_on_match_and_dropout() {
        let objs: Vec<(f64, f64, f64)> = (0..40)
            .map(|i| {
                (
                    10.0 + (i as f64 * 0.37) % 2.0,
                    -5.0 + (i as f64 * 0.23) % 2.0,
                    i as f64,
                )
            })
            .collect();
        let shifted: Vec<(f64, f64, f64)> = objs
            .iter()
            .map(|&(ra, dec, f)| (ra + 0.1 * ARCSEC, dec - 0.05 * ARCSEC, f))
            .collect();
        let mut a = archive("A", &objs);
        let (seed, _) = seed_step(&mut a, &cfg("A", 0.3, 3.5)).unwrap();

        let run = |kernel: MatchKernel| {
            let mut b = archive("B", &shifted);
            let mut c = cfg("B", 0.3, 3.5);
            c.kernel = kernel;
            let matched = match_step(&mut b, &c, &seed).unwrap();
            let dropped = dropout_step(&mut b, &c, &seed).unwrap();
            (matched, dropped)
        };
        let columnar = run(MatchKernel::Columnar);
        let htm = run(MatchKernel::Htm);
        assert_eq!(columnar.0, htm.0, "match step must be byte-identical");
        assert_eq!(columnar.1, htm.1, "drop-out step must be byte-identical");
        assert!(!columnar.0 .0.is_empty());
        // The columnar kernel reuses its scratch after the first probe.
        assert!(columnar.0 .1.scratch_reuse > 0);
    }

    #[test]
    fn match_kernel_names_round_trip() {
        for k in [MatchKernel::Columnar, MatchKernel::Htm] {
            assert_eq!(MatchKernel::parse(k.as_str()), Some(k));
            assert_eq!(format!("{k}"), k.as_str());
        }
        assert_eq!(MatchKernel::parse("quadtree"), None);
        assert_eq!(MatchKernel::default(), MatchKernel::Columnar);
    }

    #[test]
    fn search_radius_shrinks_with_spent_budget() {
        let p = SkyPoint::from_radec_deg(0.0, 0.0).to_vec3();
        let fresh = TupleState::single(p, sigma_rad(0.2));
        let q = SkyPoint::from_radec_deg(0.0, 0.5 * ARCSEC).to_vec3();
        let strained = fresh.extended(q, sigma_rad(0.2));
        let r1 = fresh.search_radius(3.5, sigma_rad(0.2));
        let r2 = strained.search_radius(3.5, sigma_rad(0.2));
        assert!(r2 < r1, "spent chi2 budget must shrink the search radius");
    }
}
