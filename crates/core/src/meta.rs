//! Archive metadata: the payloads of the Information and Meta-data
//! services, and the Portal's catalog of registered SkyNodes.

use skyquery_storage::{Catalog, ColumnDef, DataType, PositionColumns, TableSchema, TableStats};
use skyquery_xml::Element;

use crate::error::{FederationError, Result};

/// The astronomy-specific constants an archive publishes through its
/// Information service (§5.1: "object position estimation errors, the
/// name of primary table that stores the position of objects, etc.").
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveInfo {
    /// Archive (survey) name, e.g. `SDSS`.
    pub name: String,
    /// 1-σ positional measurement error of the survey, arcseconds.
    pub sigma_arcsec: f64,
    /// Name of the primary table holding object positions.
    pub primary_table: String,
    /// HTM mesh depth of the archive's position index.
    pub htm_depth: u8,
}

impl ArchiveInfo {
    /// σ in radians (the unit the cross-match math uses).
    pub fn sigma_rad(&self) -> f64 {
        (self.sigma_arcsec / 3600.0).to_radians()
    }

    /// Encodes as the Information service's wire payload.
    pub fn to_element(&self) -> Element {
        Element::new("ArchiveInfo")
            .with_attr("name", self.name.clone())
            .with_attr("sigma_arcsec", format!("{:?}", self.sigma_arcsec))
            .with_attr("primary_table", self.primary_table.clone())
            .with_attr("htm_depth", self.htm_depth.to_string())
    }

    /// Decodes the Information service's wire payload.
    pub fn from_element(e: &Element) -> Result<ArchiveInfo> {
        let attr = |name: &str| {
            e.attr(name).ok_or_else(|| {
                FederationError::protocol(format!("ArchiveInfo missing attribute {name}"))
            })
        };
        Ok(ArchiveInfo {
            name: attr("name")?.to_string(),
            sigma_arcsec: attr("sigma_arcsec")?
                .parse()
                .map_err(|_| FederationError::protocol("bad sigma_arcsec"))?,
            primary_table: attr("primary_table")?.to_string(),
            htm_depth: attr("htm_depth")?
                .parse()
                .map_err(|_| FederationError::protocol("bad htm_depth"))?,
        })
    }
}

/// Encodes a storage catalog as the Meta-data service's XML payload.
pub fn catalog_to_element(cat: &Catalog) -> Element {
    let mut root = Element::new("Catalog").with_attr("database", cat.database.clone());
    for t in &cat.tables {
        let mut te = Element::new("Table")
            .with_attr("name", t.schema.name.clone())
            .with_attr("rows", t.row_count.to_string())
            .with_attr("bytes", t.approx_bytes.to_string());
        for c in &t.schema.columns {
            te = te.with_child(
                Element::new("Column")
                    .with_attr("name", c.name.clone())
                    .with_attr("type", c.dtype.to_string())
                    .with_attr("nullable", c.nullable.to_string()),
            );
        }
        if let Some(p) = &t.schema.position {
            te = te.with_child(
                Element::new("Position")
                    .with_attr("ra", p.ra.clone())
                    .with_attr("dec", p.dec.clone())
                    .with_attr("htm_depth", p.htm_depth.to_string()),
            );
        }
        root = root.with_child(te);
    }
    root
}

/// Decodes the Meta-data payload back into a catalog snapshot.
pub fn catalog_from_element(e: &Element) -> Result<Catalog> {
    if e.name != "Catalog" {
        return Err(FederationError::protocol(format!(
            "expected Catalog element, found {}",
            e.name
        )));
    }
    let database = e
        .attr("database")
        .ok_or_else(|| FederationError::protocol("Catalog missing database attribute"))?
        .to_string();
    let mut tables = Vec::new();
    for te in e.children_named("Table") {
        let name = te
            .attr("name")
            .ok_or_else(|| FederationError::protocol("Table missing name"))?
            .to_string();
        let row_count: usize = te
            .attr("rows")
            .and_then(|r| r.parse().ok())
            .ok_or_else(|| FederationError::protocol("Table missing rows"))?;
        let approx_bytes: usize = te.attr("bytes").and_then(|r| r.parse().ok()).unwrap_or(0);
        let mut columns = Vec::new();
        for ce in te.children_named("Column") {
            let cname = ce
                .attr("name")
                .ok_or_else(|| FederationError::protocol("Column missing name"))?;
            let dtype = ce
                .attr("type")
                .and_then(DataType::parse)
                .ok_or_else(|| FederationError::protocol("Column missing/bad type"))?;
            let nullable = ce.attr("nullable") == Some("true");
            let mut def = ColumnDef::new(cname, dtype);
            if nullable {
                def = def.nullable();
            }
            columns.push(def);
        }
        let mut schema = TableSchema::new(name, columns);
        if let Some(pe) = te.children_named("Position").next() {
            let ra = pe
                .attr("ra")
                .ok_or_else(|| FederationError::protocol("Position missing ra"))?;
            let dec = pe
                .attr("dec")
                .ok_or_else(|| FederationError::protocol("Position missing dec"))?;
            let depth: u8 = pe
                .attr("htm_depth")
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| FederationError::protocol("Position missing htm_depth"))?;
            schema = schema
                .with_position(PositionColumns::new(ra, dec, depth))
                .map_err(FederationError::Storage)?;
        }
        tables.push(TableStats {
            schema,
            row_count,
            approx_bytes,
        });
    }
    Ok(Catalog { database, tables })
}

/// Everything the Portal catalogs about one registered SkyNode.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisteredNode {
    /// The archive's survey constants.
    pub info: ArchiveInfo,
    /// SOAP endpoint of the node's services.
    pub url: skyquery_net::Url,
    /// The archive's schema catalog (from its Meta-data service).
    pub catalog: Catalog,
}

impl RegisteredNode {
    /// The schema of one of this archive's tables.
    pub fn table_schema(&self, table: &str) -> Option<&TableSchema> {
        self.catalog.table(table).map(|t| &t.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> ArchiveInfo {
        ArchiveInfo {
            name: "SDSS".into(),
            sigma_arcsec: 0.1,
            primary_table: "Photo_Object".into(),
            htm_depth: 12,
        }
    }

    #[test]
    fn archive_info_roundtrip() {
        let i = info();
        let back = ArchiveInfo::from_element(&i.to_element()).unwrap();
        assert_eq!(back, i);
        assert!((i.sigma_rad() - (0.1 / 3600.0_f64).to_radians()).abs() < 1e-18);
    }

    #[test]
    fn archive_info_rejects_missing_fields() {
        let e = Element::new("ArchiveInfo").with_attr("name", "X");
        assert!(ArchiveInfo::from_element(&e).is_err());
    }

    #[test]
    fn catalog_roundtrip() {
        let schema = TableSchema::new(
            "Photo_Object",
            vec![
                ColumnDef::new("object_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
                ColumnDef::new("type", DataType::Text).nullable(),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 12))
        .unwrap();
        let cat = Catalog {
            database: "SDSS".into(),
            tables: vec![TableStats {
                schema,
                row_count: 123,
                approx_bytes: 4567,
            }],
        };
        let back = catalog_from_element(&catalog_to_element(&cat)).unwrap();
        assert_eq!(back, cat);
    }

    #[test]
    fn catalog_decode_rejects_malformed() {
        assert!(catalog_from_element(&Element::new("NotCatalog")).is_err());
        let missing_db = Element::new("Catalog");
        assert!(catalog_from_element(&missing_db).is_err());
        let bad_col = Element::new("Catalog")
            .with_attr("database", "X")
            .with_child(
                Element::new("Table")
                    .with_attr("name", "t")
                    .with_attr("rows", "1")
                    .with_child(
                        Element::new("Column")
                            .with_attr("name", "c")
                            .with_attr("type", "VARCHAR"),
                    ),
            );
        assert!(catalog_from_element(&bad_col).is_err());
    }
}
