//! Archive metadata: the payloads of the Information and Meta-data
//! services, and the Portal's catalog of registered SkyNodes.

use skyquery_storage::{Catalog, ColumnDef, DataType, PositionColumns, TableSchema, TableStats};
use skyquery_xml::Element;

use crate::error::{FederationError, Result};

/// A declination-zone range — the first-class addressing unit for shards
/// of one logical archive. An archive split across several SkyNodes
/// publishes, per shard, the contiguous range of declination it owns, on
/// the same fixed zone grid the partitioner and the columnar store pin
/// (`floor((dec + 90) / height)` bands from dec −90°).
///
/// The range is half-open at the top (`dec_lo ≤ dec < dec_hi`) except
/// that a range ending at +90° also owns the pole itself, so a shard
/// group whose extents tile `[−90°, +90°]` covers every object exactly
/// once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneExtent {
    /// Inclusive lower declination bound, degrees.
    pub dec_lo_deg: f64,
    /// Exclusive upper declination bound, degrees (inclusive at +90°).
    pub dec_hi_deg: f64,
}

impl ZoneExtent {
    /// A validated extent: bounds must be finite and non-empty.
    pub fn new(dec_lo_deg: f64, dec_hi_deg: f64) -> Result<ZoneExtent> {
        if !dec_lo_deg.is_finite() || !dec_hi_deg.is_finite() || dec_lo_deg >= dec_hi_deg {
            return Err(FederationError::protocol(format!(
                "ZoneExtent [{dec_lo_deg}, {dec_hi_deg}) is not a finite non-empty range"
            )));
        }
        Ok(ZoneExtent {
            dec_lo_deg,
            dec_hi_deg,
        })
    }

    /// The whole sky — what an unsharded archive owns, and what a peer
    /// that predates zone-range addressing is assumed to own.
    pub fn full_sky() -> ZoneExtent {
        ZoneExtent {
            dec_lo_deg: -90.0,
            dec_hi_deg: 90.0,
        }
    }

    /// Whether this extent covers the whole sky.
    pub fn is_full_sky(&self) -> bool {
        self.dec_lo_deg <= -90.0 && self.dec_hi_deg >= 90.0
    }

    /// Whether a declination falls inside this extent (half-open at the
    /// top, except at the +90° pole).
    pub fn contains_dec(&self, dec_deg: f64) -> bool {
        dec_deg >= self.dec_lo_deg
            && (dec_deg < self.dec_hi_deg || (dec_deg == 90.0 && self.dec_hi_deg >= 90.0))
    }

    /// Encodes as the optional `ZoneExtent` wire element carried inside
    /// Information payloads.
    pub fn to_element(&self) -> Element {
        Element::new("ZoneExtent")
            .with_attr("dec_lo", format!("{:?}", self.dec_lo_deg))
            .with_attr("dec_hi", format!("{:?}", self.dec_hi_deg))
    }

    /// Decodes the wire element, rejecting non-finite or empty ranges.
    pub fn from_element(e: &Element) -> Result<ZoneExtent> {
        if e.name != "ZoneExtent" {
            return Err(FederationError::protocol(format!(
                "expected ZoneExtent element, found {}",
                e.name
            )));
        }
        let attr = |name: &str| -> Result<f64> {
            e.attr(name)
                .ok_or_else(|| {
                    FederationError::protocol(format!("ZoneExtent missing attribute {name}"))
                })?
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or_else(|| FederationError::protocol(format!("ZoneExtent bad {name}")))
        };
        let extent = ZoneExtent {
            dec_lo_deg: attr("dec_lo")?,
            dec_hi_deg: attr("dec_hi")?,
        };
        if extent.dec_lo_deg >= extent.dec_hi_deg {
            return Err(FederationError::protocol(format!(
                "ZoneExtent is empty: dec_lo {} >= dec_hi {}",
                extent.dec_lo_deg, extent.dec_hi_deg
            )));
        }
        Ok(extent)
    }
}

/// The astronomy-specific constants an archive publishes through its
/// Information service (§5.1: "object position estimation errors, the
/// name of primary table that stores the position of objects, etc.").
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveInfo {
    /// Archive (survey) name, e.g. `SDSS`.
    pub name: String,
    /// 1-σ positional measurement error of the survey, arcseconds.
    pub sigma_arcsec: f64,
    /// Name of the primary table holding object positions.
    pub primary_table: String,
    /// HTM mesh depth of the archive's position index.
    pub htm_depth: u8,
    /// The declination-zone range this node owns when it is one shard of
    /// a sharded archive. `None` (the wire default, and what nodes
    /// predating zone-range addressing send) means the whole sky.
    pub extent: Option<ZoneExtent>,
}

impl ArchiveInfo {
    /// σ in radians (the unit the cross-match math uses).
    pub fn sigma_rad(&self) -> f64 {
        (self.sigma_arcsec / 3600.0).to_radians()
    }

    /// The zone range this node owns: its published extent, or the whole
    /// sky for an unsharded (or pre-sharding) node.
    pub fn owned_extent(&self) -> ZoneExtent {
        self.extent.unwrap_or_else(ZoneExtent::full_sky)
    }

    /// Encodes as the Information service's wire payload. The optional
    /// `ZoneExtent` child versions the payload: absent means full sky,
    /// so peers predating zone-range addressing interoperate unchanged.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("ArchiveInfo")
            .with_attr("name", self.name.clone())
            .with_attr("sigma_arcsec", format!("{:?}", self.sigma_arcsec))
            .with_attr("primary_table", self.primary_table.clone())
            .with_attr("htm_depth", self.htm_depth.to_string());
        if let Some(extent) = &self.extent {
            el = el.with_child(extent.to_element());
        }
        el
    }

    /// Decodes the Information service's wire payload. A missing
    /// `ZoneExtent` child means the node owns the whole sky (the
    /// pre-sharding wire format); a present-but-malformed one is an
    /// error, not a silent full-sky fallback.
    pub fn from_element(e: &Element) -> Result<ArchiveInfo> {
        let attr = |name: &str| {
            e.attr(name).ok_or_else(|| {
                FederationError::protocol(format!("ArchiveInfo missing attribute {name}"))
            })
        };
        let extent = match e.children_named("ZoneExtent").next() {
            Some(ze) => Some(ZoneExtent::from_element(ze)?),
            None => None,
        };
        Ok(ArchiveInfo {
            name: attr("name")?.to_string(),
            sigma_arcsec: attr("sigma_arcsec")?
                .parse()
                .map_err(|_| FederationError::protocol("bad sigma_arcsec"))?,
            primary_table: attr("primary_table")?.to_string(),
            htm_depth: attr("htm_depth")?
                .parse()
                .map_err(|_| FederationError::protocol("bad htm_depth"))?,
            extent,
        })
    }
}

/// What [`Portal::register_node`](crate::Portal::register_node) hands
/// back: a summary of the registration, not the raw Information payload.
/// With sharded archives a registration is one shard joining a group, so
/// the interesting facts are the group-level ones — which logical archive
/// it joined, what zone range it owns, and how large the group now is.
#[derive(Debug, Clone, PartialEq)]
pub struct Registration {
    /// The logical archive the node registered under.
    pub archive: String,
    /// The zone range the registering node owns (full sky if it did not
    /// publish one).
    pub extent: ZoneExtent,
    /// How many physical shards the archive's group now has, including
    /// the one just registered.
    pub shard_count: usize,
    /// How many of those nodes own the *same* zone range as the
    /// registering node — its replica group, itself included. `1` means
    /// the node is the sole owner of its extent.
    pub replica_count: usize,
    /// Tables in the registering node's catalog.
    pub table_count: usize,
}

/// Encodes a storage catalog as the Meta-data service's XML payload.
pub fn catalog_to_element(cat: &Catalog) -> Element {
    let mut root = Element::new("Catalog").with_attr("database", cat.database.clone());
    for t in &cat.tables {
        let mut te = Element::new("Table")
            .with_attr("name", t.schema.name.clone())
            .with_attr("rows", t.row_count.to_string())
            .with_attr("bytes", t.approx_bytes.to_string())
            .with_attr("version", t.version.to_string());
        for c in &t.schema.columns {
            te = te.with_child(
                Element::new("Column")
                    .with_attr("name", c.name.clone())
                    .with_attr("type", c.dtype.to_string())
                    .with_attr("nullable", c.nullable.to_string()),
            );
        }
        if let Some(p) = &t.schema.position {
            te = te.with_child(
                Element::new("Position")
                    .with_attr("ra", p.ra.clone())
                    .with_attr("dec", p.dec.clone())
                    .with_attr("htm_depth", p.htm_depth.to_string()),
            );
        }
        root = root.with_child(te);
    }
    root
}

/// Decodes the Meta-data payload back into a catalog snapshot.
pub fn catalog_from_element(e: &Element) -> Result<Catalog> {
    if e.name != "Catalog" {
        return Err(FederationError::protocol(format!(
            "expected Catalog element, found {}",
            e.name
        )));
    }
    let database = e
        .attr("database")
        .ok_or_else(|| FederationError::protocol("Catalog missing database attribute"))?
        .to_string();
    let mut tables = Vec::new();
    for te in e.children_named("Table") {
        let name = te
            .attr("name")
            .ok_or_else(|| FederationError::protocol("Table missing name"))?
            .to_string();
        let row_count: usize = te
            .attr("rows")
            .and_then(|r| r.parse().ok())
            .ok_or_else(|| FederationError::protocol("Table missing rows"))?;
        // Absent is back-compat (peers predating size estimates), but a
        // present-yet-unparseable value is corruption — defaulting it to
        // 0 would silently skew the planner's size estimates.
        let approx_bytes: usize = match te.attr("bytes") {
            None => 0,
            Some(raw) => raw.parse().map_err(|_| {
                FederationError::protocol(format!("Table {name} has malformed bytes {raw:?}"))
            })?,
        };
        // Same discipline for the modification version: absent is
        // back-compat (peers predating the result cache), but a garbled
        // value is corruption — defaulting it to 0 would validate stale
        // cache entries against a table that has actually changed.
        let version: u64 = match te.attr("version") {
            None => 0,
            Some(raw) => raw.parse().map_err(|_| {
                FederationError::protocol(format!("Table {name} has malformed version {raw:?}"))
            })?,
        };
        let mut columns = Vec::new();
        for ce in te.children_named("Column") {
            let cname = ce
                .attr("name")
                .ok_or_else(|| FederationError::protocol("Column missing name"))?;
            let dtype = ce
                .attr("type")
                .and_then(DataType::parse)
                .ok_or_else(|| FederationError::protocol("Column missing/bad type"))?;
            let nullable = ce.attr("nullable") == Some("true");
            let mut def = ColumnDef::new(cname, dtype);
            if nullable {
                def = def.nullable();
            }
            columns.push(def);
        }
        let mut schema = TableSchema::new(name, columns);
        if let Some(pe) = te.children_named("Position").next() {
            let ra = pe
                .attr("ra")
                .ok_or_else(|| FederationError::protocol("Position missing ra"))?;
            let dec = pe
                .attr("dec")
                .ok_or_else(|| FederationError::protocol("Position missing dec"))?;
            let depth: u8 = pe
                .attr("htm_depth")
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| FederationError::protocol("Position missing htm_depth"))?;
            schema = schema
                .with_position(PositionColumns::new(ra, dec, depth))
                .map_err(FederationError::Storage)?;
        }
        tables.push(TableStats {
            schema,
            row_count,
            approx_bytes,
            version,
        });
    }
    Ok(Catalog { database, tables })
}

/// Everything the Portal catalogs about one registered SkyNode.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisteredNode {
    /// The archive's survey constants.
    pub info: ArchiveInfo,
    /// SOAP endpoint of the node's services.
    pub url: skyquery_net::Url,
    /// The archive's schema catalog (from its Meta-data service).
    pub catalog: Catalog,
}

impl RegisteredNode {
    /// The schema of one of this archive's tables.
    pub fn table_schema(&self, table: &str) -> Option<&TableSchema> {
        self.catalog.table(table).map(|t| &t.schema)
    }

    /// The zone range this physical node owns (full sky when unsharded).
    pub fn extent(&self) -> ZoneExtent {
        self.info.owned_extent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> ArchiveInfo {
        ArchiveInfo {
            name: "SDSS".into(),
            sigma_arcsec: 0.1,
            primary_table: "Photo_Object".into(),
            htm_depth: 12,
            extent: None,
        }
    }

    #[test]
    fn archive_info_roundtrip() {
        let i = info();
        let back = ArchiveInfo::from_element(&i.to_element()).unwrap();
        assert_eq!(back, i);
        assert!((i.sigma_rad() - (0.1 / 3600.0_f64).to_radians()).abs() < 1e-18);
    }

    #[test]
    fn archive_info_rejects_missing_fields() {
        let e = Element::new("ArchiveInfo").with_attr("name", "X");
        assert!(ArchiveInfo::from_element(&e).is_err());
    }

    #[test]
    fn archive_info_extent_roundtrip() {
        // A sharded node's Information payload carries its zone range.
        let mut i = info();
        i.extent = Some(ZoneExtent {
            dec_lo_deg: -90.0,
            dec_hi_deg: 0.3,
        });
        let back = ArchiveInfo::from_element(&i.to_element()).unwrap();
        assert_eq!(back, i);
        assert_eq!(
            back.owned_extent(),
            ZoneExtent {
                dec_lo_deg: -90.0,
                dec_hi_deg: 0.3,
            }
        );
    }

    #[test]
    fn archive_info_without_extent_means_full_sky() {
        // The pre-sharding wire format: no ZoneExtent child. Old nodes
        // interoperate and are treated as owning the whole sky.
        let back = ArchiveInfo::from_element(&info().to_element()).unwrap();
        assert_eq!(back.extent, None);
        assert!(back.owned_extent().is_full_sky());
    }

    #[test]
    fn archive_info_rejects_malformed_extent() {
        // A present-but-garbled extent is an error, never a silent
        // full-sky fallback — that would double-count a shard's rows.
        for child in [
            Element::new("ZoneExtent").with_attr("dec_lo", "0.0"),
            Element::new("ZoneExtent")
                .with_attr("dec_lo", "NaN")
                .with_attr("dec_hi", "1.0"),
            Element::new("ZoneExtent")
                .with_attr("dec_lo", "0.0")
                .with_attr("dec_hi", "garbage"),
            Element::new("ZoneExtent")
                .with_attr("dec_lo", "5.0")
                .with_attr("dec_hi", "5.0"),
        ] {
            let el = info().to_element().with_child(child);
            assert!(ArchiveInfo::from_element(&el).is_err());
        }
    }

    #[test]
    fn zone_extent_semantics() {
        let full = ZoneExtent::full_sky();
        assert!(full.is_full_sky());
        assert!(full.contains_dec(-90.0));
        assert!(full.contains_dec(90.0));
        let band = ZoneExtent {
            dec_lo_deg: 0.0,
            dec_hi_deg: 45.0,
        };
        assert!(!band.is_full_sky());
        assert!(band.contains_dec(0.0));
        assert!(band.contains_dec(44.999));
        assert!(!band.contains_dec(45.0), "half-open at the top");
        assert!(!band.contains_dec(-0.001));
        // The topmost band of a tiling owns the pole itself.
        let top = ZoneExtent {
            dec_lo_deg: 45.0,
            dec_hi_deg: 90.0,
        };
        assert!(top.contains_dec(90.0));
        // Round-trip.
        assert_eq!(ZoneExtent::from_element(&band.to_element()).unwrap(), band);
        assert!(ZoneExtent::from_element(&Element::new("NotExtent")).is_err());
    }

    #[test]
    fn catalog_roundtrip() {
        let schema = TableSchema::new(
            "Photo_Object",
            vec![
                ColumnDef::new("object_id", DataType::Id),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
                ColumnDef::new("type", DataType::Text).nullable(),
            ],
        )
        .with_position(PositionColumns::new("ra", "dec", 12))
        .unwrap();
        let cat = Catalog {
            database: "SDSS".into(),
            tables: vec![TableStats {
                schema,
                row_count: 123,
                approx_bytes: 4567,
                version: 123,
            }],
        };
        let back = catalog_from_element(&catalog_to_element(&cat)).unwrap();
        assert_eq!(back, cat);
    }

    #[test]
    fn catalog_bytes_attribute_absent_is_zero_but_garbled_is_rejected() {
        let table = |bytes: Option<&str>| {
            let mut te = Element::new("Table")
                .with_attr("name", "t")
                .with_attr("rows", "1");
            if let Some(b) = bytes {
                te = te.with_attr("bytes", b);
            }
            Element::new("Catalog")
                .with_attr("database", "X")
                .with_child(te)
        };
        // Absent: back-compat with peers predating size estimates.
        let cat = catalog_from_element(&table(None)).unwrap();
        assert_eq!(cat.tables[0].approx_bytes, 0);
        // Present and well-formed.
        let cat = catalog_from_element(&table(Some("4567"))).unwrap();
        assert_eq!(cat.tables[0].approx_bytes, 4567);
        // Present but garbled: rejected, not silently zeroed (a zero
        // would skew the planner's size estimates).
        assert!(catalog_from_element(&table(Some("not-a-number"))).is_err());
        assert!(catalog_from_element(&table(Some("-3"))).is_err());
    }

    #[test]
    fn catalog_version_attribute_absent_is_zero_but_garbled_is_rejected() {
        let table = |version: Option<&str>| {
            let mut te = Element::new("Table")
                .with_attr("name", "t")
                .with_attr("rows", "1");
            if let Some(v) = version {
                te = te.with_attr("version", v);
            }
            Element::new("Catalog")
                .with_attr("database", "X")
                .with_child(te)
        };
        // Absent: back-compat with peers predating the result cache.
        let cat = catalog_from_element(&table(None)).unwrap();
        assert_eq!(cat.tables[0].version, 0);
        // Present and well-formed.
        let cat = catalog_from_element(&table(Some("42"))).unwrap();
        assert_eq!(cat.tables[0].version, 42);
        // Present but garbled: rejected, not silently zeroed (a zero
        // would validate stale cache entries against changed tables).
        assert!(catalog_from_element(&table(Some("not-a-number"))).is_err());
        assert!(catalog_from_element(&table(Some("-3"))).is_err());
    }

    #[test]
    fn catalog_decode_rejects_malformed() {
        assert!(catalog_from_element(&Element::new("NotCatalog")).is_err());
        let missing_db = Element::new("Catalog");
        assert!(catalog_from_element(&missing_db).is_err());
        let bad_col = Element::new("Catalog")
            .with_attr("database", "X")
            .with_child(
                Element::new("Table")
                    .with_attr("name", "t")
                    .with_attr("rows", "1")
                    .with_child(
                        Element::new("Column")
                            .with_attr("name", "c")
                            .with_attr("type", "VARCHAR"),
                    ),
            );
        assert!(catalog_from_element(&bad_col).is_err());
    }
}
